// Lockstep sequential reference for parameter-server SGD under BSP.
// The real trainer runs workers as goroutines with a staleness-0 clock
// barrier; within one round, pushes and pulls still interleave (worker
// A's push may land before worker B's pull of the same round), so the
// trained weights are not bit-reproducible. The reference removes all
// interleaving: each round, every worker computes its gradient from the
// same round-start weights (reusing the trainer's exact per-worker RNG
// streams and sharding), then the gradients apply sequentially. The two
// runs are different executions of the same stochastic process, so they
// are compared on aggregate quality — final loss and accuracy within a
// tolerance — not on weights.
package check

import (
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/workload"
)

// ReferenceSGD trains logistic regression with a strict lockstep
// schedule equivalent to an idealized BSP round structure. Mirrors
// ml.Train's defaults, sharding (round-robin), per-worker RNG seeding
// (Seed + me*7919) and gradient math.
func ReferenceSGD(data workload.LogisticData, cfg ml.Config) ml.Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 100
	}
	dim := len(data.TrueWeights)
	w := make([]float64, dim)

	shards := make([][]int, cfg.Workers)
	for i := range data.X {
		shards[i%cfg.Workers] = append(shards[i%cfg.Workers], i)
	}
	rngs := make([]*rng.RNG, cfg.Workers)
	for me := range rngs {
		rngs[me] = rng.New(cfg.Seed + uint64(me)*7919)
	}

	grads := make([][]float64, cfg.Workers)
	for me := range grads {
		grads[me] = make([]float64, dim)
	}
	for step := 0; step < cfg.Steps; step++ {
		snapshot := append([]float64(nil), w...)
		for me := 0; me < cfg.Workers; me++ {
			grad := grads[me]
			for j := range grad {
				grad[j] = 0
			}
			shard := shards[me]
			r := rngs[me]
			for b := 0; b < cfg.BatchSize; b++ {
				idx := shard[r.Intn(len(shard))]
				x, y := data.X[idx], data.Y[idx]
				err := sigmoidRef(dotRef(x, snapshot)) - y
				for j := range grad {
					grad[j] += err * x[j]
				}
			}
			inv := 1 / float64(cfg.BatchSize)
			for j := range grad {
				grad[j] *= inv
			}
		}
		for me := 0; me < cfg.Workers; me++ {
			for j := range w {
				w[j] -= cfg.LearningRate * grads[me][j]
			}
		}
	}
	return ml.Result{
		Weights:   w,
		FinalLoss: ml.Loss(data, w),
		Accuracy:  ml.Accuracy(data, w),
	}
}

// DiffSGD compares a BSP training run's quality against the lockstep
// reference: |loss - refLoss| <= lossTol and |acc - refAcc| <= accTol.
// This is a statistical oracle — it catches broken gradients, sharding
// or divergence, not scheduling nondeterminism.
func DiffSGD(name string, got ml.Result, data workload.LogisticData, cfg ml.Config, lossTol, accTol float64) Diff {
	ref := ReferenceSGD(data, cfg)
	d := Diff{Name: name, OK: true, Compared: 2}
	if dl := abs(got.FinalLoss - ref.FinalLoss); dl > lossTol {
		d.OK = false
		d.Details = append(d.Details,
			fmt.Sprintf("final loss %g vs reference %g (|diff| %g > %g)", got.FinalLoss, ref.FinalLoss, dl, lossTol))
	}
	if da := abs(got.Accuracy - ref.Accuracy); da > accTol {
		d.OK = false
		d.Details = append(d.Details,
			fmt.Sprintf("accuracy %g vs reference %g (|diff| %g > %g)", got.Accuracy, ref.Accuracy, da, accTol))
	}
	return d
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func sigmoidRef(z float64) float64 {
	// Mirrors ml.sigmoid; duplicated because the oracle must not share
	// the trainer's code path.
	return 1 / (1 + math.Exp(-z))
}

func dotRef(x, w []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * w[i]
	}
	return s
}
