package check

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// seq builds a sequential (non-overlapping) history from op templates,
// assigning increasing invoke/return stamps.
func seq(ops ...Op) []Op {
	t := int64(0)
	out := make([]Op, len(ops))
	for i, op := range ops {
		t++
		op.Invoke = t
		t++
		op.Return = t
		out[i] = op
	}
	return out
}

func TestSequentialLinearizable(t *testing.T) {
	ops := seq(
		Op{Kind: OpWrite, Key: "k", Value: "v1"},
		Op{Kind: OpRead, Key: "k", Value: "v1", Found: true},
		Op{Kind: OpWrite, Key: "k", Value: "v2"},
		Op{Kind: OpRead, Key: "k", Value: "v2", Found: true},
		Op{Kind: OpDelete, Key: "k"},
		Op{Kind: OpRead, Key: "k", Found: false},
	)
	out := CheckOps(ops)
	if !out.OK {
		t.Fatalf("sequential history rejected: %s", out)
	}
	if out.Ops != 6 || out.Keys != 1 {
		t.Fatalf("Ops=%d Keys=%d", out.Ops, out.Keys)
	}
	if !strings.Contains(out.String(), "linearizable") {
		t.Fatalf("String() = %q", out.String())
	}
}

func TestStaleReadRejected(t *testing.T) {
	// The shape the kvstore stale-read self-test produces: both writes
	// completed before the read began, yet the read observed the older
	// value. No sequential witness exists.
	ops := seq(
		Op{Kind: OpWrite, Key: "k", Value: "v1"},
		Op{Kind: OpWrite, Key: "k", Value: "v2"},
		Op{Kind: OpRead, Key: "k", Value: "v1", Found: true},
	)
	out := CheckOps(ops)
	if out.OK {
		t.Fatal("stale read accepted")
	}
	if out.BadKey != "k" || out.Detail == "" {
		t.Fatalf("BadKey=%q Detail=%q", out.BadKey, out.Detail)
	}
	if !strings.Contains(out.String(), "NOT linearizable") {
		t.Fatalf("String() = %q", out.String())
	}
}

func TestReadAbsentBeforeAnyWrite(t *testing.T) {
	ops := seq(
		Op{Kind: OpRead, Key: "k", Found: false},
		Op{Kind: OpWrite, Key: "k", Value: "v"},
		Op{Kind: OpRead, Key: "k", Value: "v", Found: true},
	)
	if out := CheckOps(ops); !out.OK {
		t.Fatalf("initial absent read rejected: %s", out)
	}
	// An absent read after a completed write is a violation.
	bad := seq(
		Op{Kind: OpWrite, Key: "k", Value: "v"},
		Op{Kind: OpRead, Key: "k", Found: false},
	)
	if out := CheckOps(bad); out.OK {
		t.Fatal("lost write accepted")
	}
}

func TestConcurrentWritesEitherOrder(t *testing.T) {
	// Two overlapping writes; a later read may observe either one.
	for _, observed := range []string{"a", "b"} {
		ops := []Op{
			{Client: 0, Kind: OpWrite, Key: "k", Value: "a", Invoke: 1, Return: 4},
			{Client: 1, Kind: OpWrite, Key: "k", Value: "b", Invoke: 2, Return: 3},
			{Client: 2, Kind: OpRead, Key: "k", Value: observed, Found: true, Invoke: 5, Return: 6},
		}
		if out := CheckOps(ops); !out.OK {
			t.Fatalf("read of %q after concurrent writes rejected: %s", observed, out)
		}
	}
	// But it cannot observe a value nobody wrote.
	ops := []Op{
		{Kind: OpWrite, Key: "k", Value: "a", Invoke: 1, Return: 4},
		{Kind: OpWrite, Key: "k", Value: "b", Invoke: 2, Return: 3},
		{Kind: OpRead, Key: "k", Value: "c", Found: true, Invoke: 5, Return: 6},
	}
	if out := CheckOps(ops); out.OK {
		t.Fatal("phantom value accepted")
	}
}

func TestReadReadInversionRejected(t *testing.T) {
	// A write concurrent with both reads; the first read sees the new
	// value, the second (strictly after the first) sees the old one.
	ops := []Op{
		{Kind: OpWrite, Key: "k", Value: "old", Invoke: 1, Return: 2},
		{Kind: OpWrite, Key: "k", Value: "new", Invoke: 3, Return: 10},
		{Kind: OpRead, Key: "k", Value: "new", Found: true, Invoke: 4, Return: 5},
		{Kind: OpRead, Key: "k", Value: "old", Found: true, Invoke: 6, Return: 7},
	}
	if out := CheckOps(ops); out.OK {
		t.Fatal("read-read inversion accepted")
	}
}

func TestPendingWriteMayBeOmitted(t *testing.T) {
	// A failed write (pending forever) whose effect was never observed.
	ops := []Op{
		{Kind: OpWrite, Key: "k", Value: "v1", Invoke: 1, Return: 2},
		{Kind: OpWrite, Key: "k", Value: "lost", Invoke: 3, Return: InfTime},
		{Kind: OpRead, Key: "k", Value: "v1", Found: true, Invoke: 4, Return: 5},
	}
	if out := CheckOps(ops); !out.OK {
		t.Fatalf("unobserved pending write rejected: %s", out)
	}
}

func TestPendingWriteMayTakeEffect(t *testing.T) {
	// A failed write whose effect WAS observed: legal, it may have
	// partially applied.
	ops := []Op{
		{Kind: OpWrite, Key: "k", Value: "v1", Invoke: 1, Return: 2},
		{Kind: OpWrite, Key: "k", Value: "maybe", Invoke: 3, Return: InfTime},
		{Kind: OpRead, Key: "k", Value: "maybe", Found: true, Invoke: 4, Return: 5},
	}
	if out := CheckOps(ops); !out.OK {
		t.Fatalf("observed pending write rejected: %s", out)
	}
	// The pending write is still not a license for arbitrary values.
	ops[2].Value = "other"
	if out := CheckOps(ops); out.OK {
		t.Fatal("phantom value accepted alongside pending write")
	}
}

func TestDeleteSemantics(t *testing.T) {
	ops := seq(
		Op{Kind: OpWrite, Key: "k", Value: "v"},
		Op{Kind: OpDelete, Key: "k"},
		Op{Kind: OpRead, Key: "k", Found: false},
	)
	if out := CheckOps(ops); !out.OK {
		t.Fatalf("delete then absent read rejected: %s", out)
	}
	bad := seq(
		Op{Kind: OpWrite, Key: "k", Value: "v"},
		Op{Kind: OpDelete, Key: "k"},
		Op{Kind: OpRead, Key: "k", Value: "v", Found: true},
	)
	if out := CheckOps(bad); out.OK {
		t.Fatal("read of deleted value accepted")
	}
}

func TestKeysAreIndependent(t *testing.T) {
	ops := append(
		seq(
			Op{Kind: OpWrite, Key: "a", Value: "1"},
			Op{Kind: OpRead, Key: "a", Value: "1", Found: true},
		),
		seq(
			Op{Kind: OpWrite, Key: "b", Value: "2"},
			Op{Kind: OpRead, Key: "b", Value: "2", Found: true},
		)...,
	)
	out := CheckOps(ops)
	if !out.OK || out.Keys != 2 {
		t.Fatalf("independent keys: %s", out)
	}
	// Violation on b only; BadKey must name it.
	ops = append(ops, seq(Op{Kind: OpRead, Key: "b", Value: "stale", Found: true})...)
	// Fix up stamps: seq restarts at 1, so re-stamp after the existing ops.
	ops[len(ops)-1].Invoke = 100
	ops[len(ops)-1].Return = 101
	out = CheckOps(ops)
	if out.OK || out.BadKey != "b" {
		t.Fatalf("OK=%v BadKey=%q", out.OK, out.BadKey)
	}
}

func TestEmptyHistory(t *testing.T) {
	if out := CheckOps(nil); !out.OK || out.Ops != 0 || out.Keys != 0 {
		t.Fatalf("empty history: %+v", out)
	}
}

func TestManyOpsOneKey(t *testing.T) {
	// More than 64 ops on one key exercises the multi-word bitmask.
	var ops []Op
	tstamp := int64(0)
	for i := 0; i < 40; i++ {
		v := fmt.Sprintf("v%d", i)
		tstamp++
		w := Op{Kind: OpWrite, Key: "k", Value: v, Invoke: tstamp}
		tstamp++
		w.Return = tstamp
		tstamp++
		r := Op{Kind: OpRead, Key: "k", Value: v, Found: true, Invoke: tstamp}
		tstamp++
		r.Return = tstamp
		ops = append(ops, w, r)
	}
	if out := CheckOps(ops); !out.OK {
		t.Fatalf("80-op sequential history rejected: %s", out)
	}
}

func TestConcurrentWavesLinearizable(t *testing.T) {
	// A synthetic wave-structured history: within a wave ops overlap
	// arbitrarily, but only one client writes per wave and reads in the
	// NEXT wave observe that write. This mirrors what CaptureHistory
	// records against a correct store.
	var ops []Op
	tstamp := int64(0)
	last := ""
	for wave := 0; wave < 20; wave++ {
		inv := make([]int64, 4)
		for c := 0; c < 4; c++ {
			tstamp++
			inv[c] = tstamp
		}
		v := fmt.Sprintf("w%d", wave)
		for c := 0; c < 4; c++ {
			tstamp++
			if c == 0 {
				ops = append(ops, Op{Client: c, Kind: OpWrite, Key: "k", Value: v, Invoke: inv[c], Return: tstamp})
			} else if wave > 0 {
				ops = append(ops, Op{Client: c, Kind: OpRead, Key: "k", Value: last, Found: true, Invoke: inv[c], Return: tstamp})
			}
		}
		last = v
	}
	if out := CheckOps(ops); !out.OK {
		t.Fatalf("wave history rejected: %s", out)
	}
}

func TestHistoryStampAppend(t *testing.T) {
	h := NewHistory()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				inv := h.Stamp()
				ret := h.Stamp()
				h.Append(Op{Client: c, Kind: OpWrite, Key: "k", Invoke: inv, Return: ret})
			}
		}(c)
	}
	wg.Wait()
	ops := h.Ops()
	if len(ops) != 400 {
		t.Fatalf("len(ops) = %d", len(ops))
	}
	seen := map[int64]bool{}
	for _, op := range ops {
		if op.Invoke >= op.Return {
			t.Fatalf("stamps not increasing: %+v", op)
		}
		if seen[op.Invoke] || seen[op.Return] {
			t.Fatalf("duplicate stamp: %+v", op)
		}
		seen[op.Invoke], seen[op.Return] = true, true
	}
	if out := Linearizable(h); !out.OK {
		t.Fatalf("write-only history rejected: %s", out)
	}
}

func TestOpKindAndOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Client: 1, Kind: OpRead, Key: "k", Value: "v", Found: true, Invoke: 1, Return: 2}, `read(k)="v"`},
		{Op{Client: 1, Kind: OpRead, Key: "k", Invoke: 1, Return: 2}, "read(k)=absent"},
		{Op{Client: 2, Kind: OpWrite, Key: "k", Value: "v", Invoke: 3, Return: 4}, `write(k,"v")`},
		{Op{Client: 3, Kind: OpDelete, Key: "k", Invoke: 5, Return: 6}, "delete(k)"},
	}
	for _, c := range cases {
		if !strings.Contains(c.op.String(), c.want) {
			t.Errorf("%+v.String() = %q, want contains %q", c.op, c.op.String(), c.want)
		}
	}
	for k, want := range map[OpKind]string{OpRead: "read", OpWrite: "write", OpDelete: "delete"} {
		if k.String() != want {
			t.Errorf("OpKind(%d).String() = %q", k, k.String())
		}
	}
}

func TestFailureDetailSamplesOps(t *testing.T) {
	var ops []Op
	tstamp := int64(0)
	for i := 0; i < 6; i++ {
		tstamp++
		op := Op{Kind: OpRead, Key: "k", Value: "ghost", Found: true, Invoke: tstamp}
		tstamp++
		op.Return = tstamp
		ops = append(ops, op)
	}
	out := CheckOps(ops)
	if out.OK {
		t.Fatal("ghost reads accepted")
	}
	if !strings.Contains(out.Detail, "...") || !strings.Contains(out.Detail, "ghost") {
		t.Fatalf("Detail = %q", out.Detail)
	}
}
