// Package check is the correctness backbone of the repo: sequential
// single-node reference oracles for every distributed engine (dataflow,
// shuffle, streaming windows and sessions, PageRank, parameter-server
// SGD) and a porcupine-style linearizability checker for the quorum KV
// store. Chaos sweeps and experiments end with an oracle diff recorded
// in a Harness, so "the run survived faults" always means "the run
// survived faults AND produced provably correct output". See DESIGN.md
// "Correctness checking".
package check

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// floatString and intString render numbers for encode functions with no
// formatting ambiguity (shortest round-trippable float form).
func floatString(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
func intString(n int64) string     { return strconv.FormatInt(n, 10) }

// Diff is the outcome of one oracle comparison.
type Diff struct {
	// Name identifies the comparison ("eft/crash/seed-7", "e5-linearizable").
	Name string
	// OK reports whether observed output matched the reference.
	OK bool
	// Compared counts the elements compared.
	Compared int
	// Details holds a bounded sample of mismatches (empty when OK).
	Details []string
}

// String renders a one-line verdict.
func (d Diff) String() string {
	if d.OK {
		return fmt.Sprintf("%s: ok (%d compared)", d.Name, d.Compared)
	}
	return fmt.Sprintf("%s: MISMATCH (%d compared): %s", d.Name, d.Compared, strings.Join(d.Details, "; "))
}

// maxDetails bounds how many mismatches a Diff records.
const maxDetails = 8

// DiffMultiset compares got against want as multisets under encode: the
// same elements with the same multiplicities, in any order. This is the
// right comparison for unsorted shuffle output, where the engine's
// record order depends on block fetch order.
func DiffMultiset[T any](name string, got, want []T, encode func(T) string) Diff {
	d := Diff{Name: name, OK: true, Compared: len(got)}
	counts := make(map[string]int, len(want))
	for _, w := range want {
		counts[encode(w)]++
	}
	for _, g := range got {
		counts[encode(g)]--
	}
	var bad []string
	for k, c := range counts {
		if c != 0 {
			bad = append(bad, fmt.Sprintf("%q: got %+d vs reference", k, -c))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		if len(got) != len(want) {
			bad = append([]string{fmt.Sprintf("length %d vs %d", len(got), len(want))}, bad...)
		}
		if len(bad) > maxDetails {
			bad = append(bad[:maxDetails], fmt.Sprintf("... %d more", len(bad)-maxDetails))
		}
		d.OK = false
		d.Details = bad
	}
	return d
}

// DiffOrdered compares got against want element by element under encode
// — for outputs with a guaranteed deterministic order (sorted shuffle
// partitions, stream pane lists).
func DiffOrdered[T any](name string, got, want []T, encode func(T) string) Diff {
	d := Diff{Name: name, OK: true, Compared: len(got)}
	if len(got) != len(want) {
		d.OK = false
		d.Details = append(d.Details, fmt.Sprintf("length %d vs %d", len(got), len(want)))
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		g, w := encode(got[i]), encode(want[i])
		if g != w {
			d.OK = false
			d.Details = append(d.Details, fmt.Sprintf("[%d]: %q vs %q", i, g, w))
			if len(d.Details) >= maxDetails {
				d.Details = append(d.Details, "...")
				break
			}
		}
	}
	return d
}

// DiffFloats compares two float vectors within a relative tolerance
// (plus the same value as an absolute floor near zero) — for oracles
// whose reference accumulates floating point in a different order than
// the parallel engine (PageRank, SGD).
func DiffFloats(name string, got, want []float64, tol float64) Diff {
	d := Diff{Name: name, OK: true, Compared: len(got)}
	if len(got) != len(want) {
		d.OK = false
		d.Details = append(d.Details, fmt.Sprintf("length %d vs %d", len(got), len(want)))
		return d
	}
	for i := range got {
		diff := got[i] - want[i]
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if w := want[i]; w > 1 || w < -1 {
			if w < 0 {
				w = -w
			}
			scale = w
		}
		if diff > tol*scale {
			d.OK = false
			d.Details = append(d.Details, fmt.Sprintf("[%d]: %g vs %g", i, got[i], want[i]))
			if len(d.Details) >= maxDetails {
				d.Details = append(d.Details, "...")
				break
			}
		}
	}
	return d
}

// Harness accumulates oracle verdicts across a sweep. Safe for
// concurrent use; chaos runs record into one shared harness and the
// driver fails the sweep if any comparison mismatched.
type Harness struct {
	mu    sync.Mutex
	diffs []Diff
}

// NewHarness returns an empty harness.
func NewHarness() *Harness { return &Harness{} }

// Record adds one verdict and returns it unchanged (for chaining).
func (h *Harness) Record(d Diff) Diff {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.diffs = append(h.diffs, d)
	return d
}

// Len returns how many verdicts have been recorded.
func (h *Harness) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.diffs)
}

// OK reports whether every recorded comparison matched.
func (h *Harness) OK() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range h.diffs {
		if !d.OK {
			return false
		}
	}
	return true
}

// Failures returns the mismatched verdicts.
func (h *Harness) Failures() []Diff {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Diff
	for _, d := range h.diffs {
		if !d.OK {
			out = append(out, d)
		}
	}
	return out
}

// Summary renders a multi-line report: one line per failure, or a
// single all-clear line.
func (h *Harness) Summary() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	failed := 0
	var b strings.Builder
	for _, d := range h.diffs {
		if !d.OK {
			failed++
			fmt.Fprintf(&b, "%s\n", d)
		}
	}
	if failed == 0 {
		return fmt.Sprintf("check: %d oracle comparisons, all ok", len(h.diffs))
	}
	return fmt.Sprintf("check: %d/%d oracle comparisons FAILED\n%s", failed, len(h.diffs), b.String())
}
