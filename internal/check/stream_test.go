package check

import (
	"errors"
	"testing"
	"time"

	"repro/internal/stream"
)

func TestDrainSourceDeterministic(t *testing.T) {
	src := stream.NewGeneratorSource(7, 500, 16, time.Millisecond, 4*time.Millisecond)
	// Consume part of the source first: DrainSource must rewind.
	for i := 0; i < 100; i++ {
		src.Next()
	}
	evs, err := DrainSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 500 {
		t.Fatalf("len = %d, want 500", len(evs))
	}
	again, err := DrainSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		if evs[i] != again[i] {
			t.Fatalf("drain not deterministic at %d: %+v vs %+v", i, evs[i], again[i])
		}
	}
}

type badSource struct{ stream.Source }

func (badSource) SeekTo(int64) error { return errors.New("no rewind") }

func TestDrainSourceSeekError(t *testing.T) {
	if _, err := DrainSource(badSource{}); err == nil {
		t.Fatal("SeekTo error not propagated")
	}
}

// runPipeline feeds events through a real Pipeline with a final
// watermark that fires everything.
func runPipeline(t *testing.T, cfg stream.Config, evs []stream.Event) []stream.Result {
	t.Helper()
	p := stream.New(cfg)
	for _, ev := range evs {
		if err := p.Send(ev); err != nil {
			t.Fatal(err)
		}
	}
	return p.Close()
}

func TestReferenceWindowsTumbling(t *testing.T) {
	evs := []stream.Event{
		{Key: "a", Value: 1, EventTime: 10 * time.Millisecond},
		{Key: "a", Value: 2, EventTime: 90 * time.Millisecond},
		{Key: "b", Value: 3, EventTime: 110 * time.Millisecond},
		{Key: "a", Value: 4, EventTime: 150 * time.Millisecond},
	}
	got := runPipeline(t, stream.Config{Workers: 3, Window: 100 * time.Millisecond}, evs)
	d := DiffWindows("tumbling", got, evs, 100*time.Millisecond, 0)
	if !d.OK {
		t.Fatalf("engine vs oracle: %s", d)
	}
	// Spot-check the oracle itself: pane [0,100ms) for "a" sums 1+2.
	ref := ReferenceWindows(evs, 100*time.Millisecond, 0)
	if ref[0].Key != "a" || ref[0].Sum != 3 || ref[0].Count != 2 {
		t.Fatalf("ref[0] = %+v", ref[0])
	}
}

func TestReferenceWindowsSliding(t *testing.T) {
	src := stream.NewGeneratorSource(11, 800, 8, time.Millisecond, 3*time.Millisecond)
	evs, err := DrainSource(src)
	if err != nil {
		t.Fatal(err)
	}
	window, slide := 100*time.Millisecond, 25*time.Millisecond
	got := runPipeline(t, stream.Config{Workers: 4, Window: window, Slide: slide}, evs)
	if d := DiffWindows("sliding", got, evs, window, slide); !d.OK {
		t.Fatalf("engine vs oracle: %s", d)
	}
	// Every event covered by exactly window/slide panes (away from t=0).
	starts := paneStarts(200*time.Millisecond, window, slide)
	if len(starts) != 4 {
		t.Fatalf("paneStarts(200ms) = %v", starts)
	}
	// Clamped near the epoch: no negative pane starts.
	for _, s := range paneStarts(10*time.Millisecond, window, slide) {
		if s < 0 {
			t.Fatalf("negative pane start %v", s)
		}
	}
}

func TestReferenceWindowsAgainstGeneratedRun(t *testing.T) {
	src := stream.NewGeneratorSource(42, 2000, 32, time.Millisecond, 4*time.Millisecond)
	evs, err := DrainSource(src)
	if err != nil {
		t.Fatal(err)
	}
	got := runPipeline(t, stream.Config{Workers: 4, Window: 250 * time.Millisecond}, evs)
	if d := DiffWindows("generated", got, evs, 250*time.Millisecond, 0); !d.OK {
		t.Fatalf("engine vs oracle: %s", d)
	}
}

func TestReferenceWindowsCatchesTampering(t *testing.T) {
	evs := []stream.Event{
		{Key: "a", Value: 1, EventTime: 10 * time.Millisecond},
		{Key: "a", Value: 2, EventTime: 20 * time.Millisecond},
	}
	got := runPipeline(t, stream.Config{Workers: 2, Window: 100 * time.Millisecond}, evs)
	got[0].Sum += 1 // corrupt one pane
	if d := DiffWindows("tampered", got, evs, 100*time.Millisecond, 0); d.OK {
		t.Fatal("tampered pane not detected")
	}
}

func TestReferenceSessions(t *testing.T) {
	gap := 30 * time.Millisecond
	evs := []stream.Event{
		// Key a: two bursts separated by > gap.
		{Key: "a", Value: 1, EventTime: 10 * time.Millisecond},
		{Key: "a", Value: 2, EventTime: 25 * time.Millisecond},
		{Key: "a", Value: 3, EventTime: 100 * time.Millisecond},
		// Key b: one session bridged by an out-of-order arrival below.
		{Key: "b", Value: 5, EventTime: 80 * time.Millisecond},
		{Key: "b", Value: 4, EventTime: 50 * time.Millisecond},
	}
	ref := ReferenceSessions(evs, gap)
	if len(ref) != 3 {
		t.Fatalf("sessions = %+v", ref)
	}
	if ref[0].Key != "a" || ref[0].Start != 10*time.Millisecond || ref[0].End != 25*time.Millisecond || ref[0].Count != 2 {
		t.Fatalf("ref[0] = %+v", ref[0])
	}
	if ref[2].Key != "b" || ref[2].Start != 50*time.Millisecond || ref[2].End != 80*time.Millisecond || ref[2].Sum != 9 {
		t.Fatalf("ref[2] = %+v", ref[2])
	}

	s := stream.NewSessionizer(stream.SessionConfig{Gap: gap, Workers: 3})
	for _, ev := range evs {
		if err := s.Send(ev); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Close()
	if d := DiffSessions("sessions", got, evs, gap); !d.OK {
		t.Fatalf("engine vs oracle: %s", d)
	}
}

func TestReferenceSessionsAgainstGeneratedRun(t *testing.T) {
	src := stream.NewGeneratorSource(13, 1500, 12, time.Millisecond, 4*time.Millisecond)
	evs, err := DrainSource(src)
	if err != nil {
		t.Fatal(err)
	}
	gap := 20 * time.Millisecond
	s := stream.NewSessionizer(stream.SessionConfig{Gap: gap, Workers: 4})
	for _, ev := range evs {
		if err := s.Send(ev); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Close()
	if d := DiffSessions("gen-sessions", got, evs, gap); !d.OK {
		t.Fatalf("engine vs oracle: %s", d)
	}
}
