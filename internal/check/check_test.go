package check

import (
	"strings"
	"sync"
	"testing"
)

func TestDiffMultisetOK(t *testing.T) {
	d := DiffMultiset("m", []int64{3, 1, 2}, []int64{1, 2, 3}, intString)
	if !d.OK {
		t.Fatalf("order must not matter: %s", d)
	}
	if d.Compared != 3 {
		t.Fatalf("Compared = %d, want 3", d.Compared)
	}
	if !strings.Contains(d.String(), "ok (3 compared)") {
		t.Fatalf("String() = %q", d.String())
	}
}

func TestDiffMultisetMismatch(t *testing.T) {
	d := DiffMultiset("m", []int64{1, 1, 2}, []int64{1, 2, 2}, intString)
	if d.OK {
		t.Fatal("multiplicity mismatch not detected")
	}
	if len(d.Details) == 0 || !strings.Contains(d.String(), "MISMATCH") {
		t.Fatalf("details missing: %s", d)
	}
}

func TestDiffMultisetLength(t *testing.T) {
	d := DiffMultiset("m", []int64{1}, []int64{1, 2}, intString)
	if d.OK {
		t.Fatal("length mismatch not detected")
	}
	if !strings.Contains(d.Details[0], "length 1 vs 2") {
		t.Fatalf("expected length detail first, got %v", d.Details)
	}
}

func TestDiffMultisetDetailCap(t *testing.T) {
	var got, want []int64
	for i := int64(0); i < 50; i++ {
		got = append(got, i)
		want = append(want, i+100)
	}
	d := DiffMultiset("m", got, want, intString)
	if d.OK {
		t.Fatal("expected mismatch")
	}
	if len(d.Details) > maxDetails+1 {
		t.Fatalf("details unbounded: %d entries", len(d.Details))
	}
	if !strings.Contains(d.Details[len(d.Details)-1], "more") {
		t.Fatalf("expected truncation marker, got %v", d.Details)
	}
}

func TestDiffOrdered(t *testing.T) {
	enc := func(s string) string { return s }
	if d := DiffOrdered("o", []string{"a", "b"}, []string{"a", "b"}, enc); !d.OK {
		t.Fatalf("equal slices: %s", d)
	}
	if d := DiffOrdered("o", []string{"b", "a"}, []string{"a", "b"}, enc); d.OK {
		t.Fatal("order must matter")
	}
	if d := DiffOrdered("o", []string{"a"}, []string{"a", "b"}, enc); d.OK {
		t.Fatal("length mismatch not detected")
	}
}

func TestDiffOrderedDetailCap(t *testing.T) {
	var got, want []int64
	for i := int64(0); i < 50; i++ {
		got = append(got, i)
		want = append(want, i+1)
	}
	d := DiffOrdered("o", got, want, intString)
	if d.OK || len(d.Details) > maxDetails+1 {
		t.Fatalf("OK=%v details=%d", d.OK, len(d.Details))
	}
}

func TestDiffFloats(t *testing.T) {
	if d := DiffFloats("f", []float64{1.0, 2.0}, []float64{1.0 + 1e-12, 2.0}, 1e-9); !d.OK {
		t.Fatalf("within tolerance: %s", d)
	}
	// Relative scaling: 1000 vs 1000.5 is within 1e-3 relative.
	if d := DiffFloats("f", []float64{1000.5}, []float64{1000}, 1e-3); !d.OK {
		t.Fatalf("relative tolerance not applied: %s", d)
	}
	if d := DiffFloats("f", []float64{1.1}, []float64{1.0}, 1e-3); d.OK {
		t.Fatal("out-of-tolerance diff not detected")
	}
	if d := DiffFloats("f", []float64{1}, []float64{1, 2}, 1e-3); d.OK {
		t.Fatal("length mismatch not detected")
	}
	var got, want []float64
	for i := 0; i < 50; i++ {
		got = append(got, float64(i))
		want = append(want, float64(i)+10)
	}
	if d := DiffFloats("f", got, want, 1e-6); d.OK || len(d.Details) > maxDetails+1 {
		t.Fatal("detail cap not applied")
	}
}

func TestHarness(t *testing.T) {
	h := NewHarness()
	if !h.OK() || h.Len() != 0 {
		t.Fatal("empty harness must be OK")
	}
	if !strings.Contains(h.Summary(), "all ok") {
		t.Fatalf("Summary() = %q", h.Summary())
	}
	h.Record(Diff{Name: "a", OK: true, Compared: 3})
	d := h.Record(Diff{Name: "b", OK: false, Details: []string{"boom"}})
	if d.Name != "b" {
		t.Fatal("Record must return its argument")
	}
	if h.OK() || h.Len() != 2 {
		t.Fatalf("OK=%v Len=%d", h.OK(), h.Len())
	}
	fails := h.Failures()
	if len(fails) != 1 || fails[0].Name != "b" {
		t.Fatalf("Failures() = %v", fails)
	}
	if s := h.Summary(); !strings.Contains(s, "1/2") || !strings.Contains(s, "boom") {
		t.Fatalf("Summary() = %q", s)
	}
}

func TestHarnessConcurrent(t *testing.T) {
	h := NewHarness()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Record(Diff{Name: "x", OK: true})
			}
		}()
	}
	wg.Wait()
	if h.Len() != 1600 || !h.OK() {
		t.Fatalf("Len=%d OK=%v", h.Len(), h.OK())
	}
}
