// Stable-sort-and-concat reference for the shuffle subsystem. The real
// writers buffer, combine, spill, compress and merge; the reference
// routes each input record to its partition in input order and, for
// sorted shuffles, stable-sorts each partition by key. Sorted output
// must match record for record; unsorted output must match as a
// multiset (block fetch order and map-side combining legitimately
// permute it).
package check

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/shuffle"
)

// ReferenceShuffle computes the expected reduce-side partitions for the
// given per-map-task inputs. partitioner may be nil for the default
// hash partitioner.
func ReferenceShuffle(inputs [][]shuffle.Record, partitions int, partitioner func([]byte) int, sorted bool) [][]shuffle.Record {
	if partitioner == nil {
		partitioner = func(key []byte) int { return shuffle.Partition(key, partitions) }
	}
	out := make([][]shuffle.Record, partitions)
	for _, task := range inputs {
		for _, rec := range task {
			p := partitioner(rec.Key)
			out[p] = append(out[p], rec)
		}
	}
	if sorted {
		for i := range out {
			recs := out[i]
			sort.SliceStable(recs, func(a, b int) bool {
				return bytes.Compare(recs[a].Key, recs[b].Key) < 0
			})
		}
	}
	return out
}

// DiffShuffle compares the records actually read per reduce partition
// against the reference. Sorted shuffles compare in order; unsorted
// compare as multisets.
func DiffShuffle(name string, got [][]shuffle.Record, inputs [][]shuffle.Record, partitions int, partitioner func([]byte) int, sorted bool) Diff {
	want := ReferenceShuffle(inputs, partitions, partitioner, sorted)
	total := Diff{Name: name, OK: true}
	if len(got) != len(want) {
		total.OK = false
		total.Details = append(total.Details, fmt.Sprintf("partition count %d vs %d", len(got), len(want)))
		return total
	}
	enc := func(r shuffle.Record) string { return fmt.Sprintf("%q=%q", r.Key, r.Value) }
	for p := range got {
		var d Diff
		sub := fmt.Sprintf("%s[p%d]", name, p)
		if sorted {
			d = DiffOrdered(sub, got[p], want[p], enc)
		} else {
			d = DiffMultiset(sub, got[p], want[p], enc)
		}
		total.Compared += d.Compared
		if !d.OK {
			total.OK = false
			total.Details = append(total.Details, d.Details...)
			if len(total.Details) > maxDetails {
				total.Details = total.Details[:maxDetails]
				return total
			}
		}
	}
	return total
}
