// Reference oracles for the streaming engine: direct pane and session
// computation from the replayable source. The real engine routes events
// through hash-partitioned workers, fires on watermarks, and (under
// chaos) checkpoints, crashes, rolls back and replays; the oracle just
// folds every event into its panes in one pass. The two must agree
// exactly whenever the run drops no events — which the engine
// guarantees when the watermark lag is at least the source's
// out-of-orderness bound (RunConfig.WatermarkLag docs); callers should
// assert the run's late_dropped counter is zero before trusting an
// exact comparison.
package check

import (
	"sort"
	"time"

	"repro/internal/stream"
)

// DrainSource materializes a replayable source from offset zero. The
// cursor is rewound first and left at the end, so draining a source the
// engine already consumed yields the same events the engine saw.
func DrainSource(src stream.Source) ([]stream.Event, error) {
	if err := src.SeekTo(0); err != nil {
		return nil, err
	}
	var out []stream.Event
	for {
		ev, ok := src.Next()
		if !ok {
			return out, nil
		}
		out = append(out, ev)
	}
}

// ReferenceWindows computes every (window, key) pane directly: each
// event lands in its tumbling pane (slide <= 0 or >= window) or in each
// sliding pane covering its event time, and results are ordered by
// (WindowStart, Key) — the same order Pipeline.Close reports.
func ReferenceWindows(events []stream.Event, window, slide time.Duration) []stream.Result {
	type pane struct {
		start time.Duration
		key   string
	}
	aggs := map[pane]*stream.Result{}
	for _, ev := range events {
		for _, start := range paneStarts(ev.EventTime, window, slide) {
			pk := pane{start: start, key: ev.Key}
			agg, ok := aggs[pk]
			if !ok {
				agg = &stream.Result{WindowStart: start, WindowEnd: start + window, Key: ev.Key}
				aggs[pk] = agg
			}
			agg.Sum += ev.Value
			agg.Count++
		}
	}
	out := make([]stream.Result, 0, len(aggs))
	for _, agg := range aggs {
		out = append(out, *agg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WindowStart != out[j].WindowStart {
			return out[i].WindowStart < out[j].WindowStart
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// paneStarts lists the window starts covering event time t.
func paneStarts(t, window, slide time.Duration) []time.Duration {
	if slide <= 0 || slide >= window {
		return []time.Duration{(t / window) * window}
	}
	var starts []time.Duration
	for start := (t / slide) * slide; start >= 0 && start+window > t; start -= slide {
		starts = append(starts, start)
	}
	return starts
}

// ReferenceSessions computes gap-merged sessions per key directly: sort
// each key's events by time, then a linear scan closes a session
// whenever the next event is more than gap after the current end. The
// engine merges in arrival order instead, but gap-merging is
// order-independent (sessions are the connected components of the
// "within gap" relation), so the results coincide. Ordered by
// (Key, Start), matching Sessionizer.Close.
func ReferenceSessions(events []stream.Event, gap time.Duration) []stream.SessionResult {
	byKey := map[string][]stream.Event{}
	for _, ev := range events {
		byKey[ev.Key] = append(byKey[ev.Key], ev)
	}
	var out []stream.SessionResult
	for key, evs := range byKey {
		sort.Slice(evs, func(i, j int) bool { return evs[i].EventTime < evs[j].EventTime })
		var cur *stream.SessionResult
		for _, ev := range evs {
			if cur != nil && ev.EventTime-cur.End <= gap {
				cur.End = ev.EventTime
				cur.Sum += ev.Value
				cur.Count++
				continue
			}
			if cur != nil {
				out = append(out, *cur)
			}
			cur = &stream.SessionResult{
				Key: key, Start: ev.EventTime, End: ev.EventTime, Sum: ev.Value, Count: 1,
			}
		}
		if cur != nil {
			out = append(out, *cur)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// DiffWindows compares a pipeline run's panes against the reference.
func DiffWindows(name string, got []stream.Result, events []stream.Event, window, slide time.Duration) Diff {
	want := ReferenceWindows(events, window, slide)
	return DiffOrdered(name, got, want, func(r stream.Result) string {
		return resultString(r)
	})
}

// DiffSessions compares a sessionizer run against the reference.
func DiffSessions(name string, got []stream.SessionResult, events []stream.Event, gap time.Duration) Diff {
	want := ReferenceSessions(events, gap)
	return DiffOrdered(name, got, want, func(r stream.SessionResult) string {
		return sessionString(r)
	})
}

func resultString(r stream.Result) string {
	return r.WindowStart.String() + "/" + r.WindowEnd.String() + "/" + r.Key + "/" +
		floatString(r.Sum) + "/" + intString(r.Count)
}

func sessionString(r stream.SessionResult) string {
	return r.Key + "/" + r.Start.String() + "/" + r.End.String() + "/" +
		floatString(r.Sum) + "/" + intString(r.Count)
}
