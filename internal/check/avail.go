// Availability accounting for gray-failure runs. A probe is one
// commit-confirmed proposal attempt at a known virtual time, paired with
// whether the fault pattern still admitted a functioning quorum at that
// instant. Unavailability that coincides with a lost quorum is excusable
// (no protocol can commit without one); failing WHILE a connected
// majority exists is a liveness failure — the thing PreVote and
// CheckQuorum exist to bound. E-GRAY and the avail perf family turn
// probe series into windows with Availability and gate the defended
// configuration with DiffAvailability.
package check

import (
	"fmt"
	"sort"
)

// AvailPoint is one availability probe.
type AvailPoint struct {
	// T is the virtual time of the probe.
	T int64
	// OK reports whether the probe (a commit-confirmed proposal) succeeded.
	OK bool
	// MajorityConnected reports whether some live node had bidirectional
	// links to a quorum when the probe ran.
	MajorityConnected bool
}

// AvailReport summarizes the unavailability windows of a probe series.
type AvailReport struct {
	// Probes counts all probes; Failed counts probes that failed while a
	// connected majority existed (the charged failures); ExcusedFails
	// counts failures with no connected majority (not charged).
	Probes       int
	Failed       int
	ExcusedFails int
	// Windows counts maximal runs of consecutive charged failures.
	Windows int
	// Longest is the virtual-time span of the longest window; Total sums
	// all window spans. A window spanning probes at T=a..b has span
	// b-a+1, so a single failed probe costs 1.
	Longest int64
	Total   int64
}

// String renders a one-line summary.
func (r AvailReport) String() string {
	return fmt.Sprintf("%d/%d probes failed with quorum connected; %d windows, longest %d, total %d unavailable ticks",
		r.Failed, r.Probes, r.Windows, r.Longest, r.Total)
}

// Availability computes unavailability windows from a probe series.
// Points are sorted by T (stably, so equal-time probes keep their order);
// a window is a maximal run of consecutive points that failed while a
// connected majority existed. Failures without a connected majority end
// any open window — they are a different (excusable) condition, not part
// of a liveness gap.
func Availability(points []AvailPoint) AvailReport {
	pts := append([]AvailPoint(nil), points...)
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].T < pts[j].T })

	r := AvailReport{Probes: len(pts)}
	var start, end int64
	open := false
	close := func() {
		if !open {
			return
		}
		span := end - start + 1
		r.Windows++
		r.Total += span
		if span > r.Longest {
			r.Longest = span
		}
		open = false
	}
	for _, p := range pts {
		switch {
		case p.OK:
			close()
		case !p.MajorityConnected:
			r.ExcusedFails++
			close()
		default:
			r.Failed++
			if !open {
				open = true
				start = p.T
			}
			end = p.T
		}
	}
	close()
	return r
}

// DiffAvailability turns a report into an oracle verdict: OK when the
// longest window and the total unavailable time both sit within bounds.
// A negative bound skips that limit.
func DiffAvailability(name string, r AvailReport, maxLongest, maxTotal int64) Diff {
	d := Diff{Name: name, OK: true, Compared: r.Probes}
	if maxLongest >= 0 && r.Longest > maxLongest {
		d.OK = false
		d.Details = append(d.Details, fmt.Sprintf("longest window %d > bound %d", r.Longest, maxLongest))
	}
	if maxTotal >= 0 && r.Total > maxTotal {
		d.OK = false
		d.Details = append(d.Details, fmt.Sprintf("total unavailable %d > bound %d", r.Total, maxTotal))
	}
	return d
}
