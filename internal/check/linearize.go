// Porcupine-style linearizability checking for the quorum KV store.
// Concurrent clients record invoke/return-stamped operations into a
// History; the checker partitions the history by key (keys of a KV map
// are independent registers) and searches each key's operations for a
// valid sequential witness under the register model, using the
// Wing & Gong algorithm with the (linearized-set, register-state)
// memoization of Lowe/porcupine.
package check

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// OpKind distinguishes history operations.
type OpKind int

// Operation kinds over the register model.
const (
	// OpRead observed (Value, Found) for Key.
	OpRead OpKind = iota
	// OpWrite set Key to Value.
	OpWrite
	// OpDelete removed Key (a read after it observes Found=false).
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "delete"
	}
}

// InfTime is the Return stamp of an operation that never completed
// (e.g. a write that failed its quorum but may have partially applied).
// Such an operation is never real-time-ordered before anything, and the
// checker may either linearize it (its effect was observed) or omit it
// (it never took effect) — both are legal for a pending operation.
const InfTime = int64(math.MaxInt64)

// Op is one recorded client operation.
type Op struct {
	// Client identifies the issuing client (diagnostic only).
	Client int
	// Kind is the operation type.
	Kind OpKind
	// Key is the register the operation touched.
	Key string
	// Value is the written value (OpWrite) or observed value (OpRead).
	Value string
	// Found reports, for OpRead, whether a value was observed.
	Found bool
	// Invoke and Return are logical timestamps from History.Stamp.
	// A is real-time-before B iff A.Return < B.Invoke.
	Invoke, Return int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpRead:
		if !o.Found {
			return fmt.Sprintf("c%d read(%s)=absent [%d,%d]", o.Client, o.Key, o.Invoke, o.Return)
		}
		return fmt.Sprintf("c%d read(%s)=%q [%d,%d]", o.Client, o.Key, o.Value, o.Invoke, o.Return)
	case OpWrite:
		return fmt.Sprintf("c%d write(%s,%q) [%d,%d]", o.Client, o.Key, o.Value, o.Invoke, o.Return)
	default:
		return fmt.Sprintf("c%d delete(%s) [%d,%d]", o.Client, o.Key, o.Invoke, o.Return)
	}
}

// History is a concurrent-safe operation log with a shared logical
// clock. Clients call Stamp around each operation and Append the result.
type History struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []Op
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Stamp returns the next logical timestamp. Stamps are totally ordered
// and strictly increasing across all clients.
func (h *History) Stamp() int64 { return h.clock.Add(1) }

// Append records one completed (or pending, Return=InfTime) operation.
func (h *History) Append(op Op) {
	h.mu.Lock()
	h.ops = append(h.ops, op)
	h.mu.Unlock()
}

// Ops returns a snapshot of the recorded operations.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Op(nil), h.ops...)
}

// Outcome is a linearizability verdict.
type Outcome struct {
	// OK reports whether a sequential witness exists for every key.
	OK bool
	// Ops and Keys count what was checked.
	Ops, Keys int
	// BadKey names the first key with no witness (empty when OK).
	BadKey string
	// Detail explains the failure (empty when OK).
	Detail string
}

// String renders the verdict.
func (o Outcome) String() string {
	if o.OK {
		return fmt.Sprintf("linearizable (%d ops over %d keys)", o.Ops, o.Keys)
	}
	return fmt.Sprintf("NOT linearizable: key %q: %s", o.BadKey, o.Detail)
}

// Linearizable checks h against the per-key register model.
func Linearizable(h *History) Outcome { return CheckOps(h.Ops()) }

// CheckOps checks a raw operation list against the per-key register
// model: for every key there must exist a total order of its operations
// that (a) respects real time (A before B whenever A.Return < B.Invoke),
// (b) starts from an absent register, and (c) gives every read exactly
// the value of the latest preceding write (or absent after none or a
// delete). Operations with Return=InfTime are pending and may be
// omitted from the witness.
func CheckOps(ops []Op) Outcome {
	out := Outcome{OK: true, Ops: len(ops)}
	byKey := map[string][]Op{}
	for _, op := range ops {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	out.Keys = len(byKey)
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic BadKey across runs
	for _, k := range keys {
		if detail, ok := checkKey(byKey[k]); !ok {
			return Outcome{OK: false, Ops: len(ops), Keys: len(byKey), BadKey: k, Detail: detail}
		}
	}
	return out
}

// regState is the sequential register value during the witness search.
type regState struct {
	value string
	found bool
}

// checkKey searches one key's operations for a sequential witness.
func checkKey(ops []Op) (string, bool) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
	n := len(ops)
	// preds[i] lists operations that must precede i in any witness.
	preds := make([][]int, n)
	required := 0
	for i := range ops {
		if ops[i].Return != InfTime {
			required++
		}
		for j := range ops {
			if j != i && ops[j].Return < ops[i].Invoke {
				preds[i] = append(preds[i], j)
			}
		}
	}

	words := (n + 63) / 64
	chosen := make([]uint64, words)
	has := func(i int) bool { return chosen[i/64]&(1<<(i%64)) != 0 }
	set := func(i int) { chosen[i/64] |= 1 << (i % 64) }
	unset := func(i int) { chosen[i/64] &^= 1 << (i % 64) }

	visited := map[string]struct{}{}
	memoKey := func(st regState) string {
		b := make([]byte, 0, words*8+len(st.value)+2)
		for _, w := range chosen {
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(w>>s))
			}
		}
		if st.found {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		return string(append(b, st.value...))
	}

	bestDepth := 0
	var dfs func(st regState, done int) bool
	dfs = func(st regState, done int) bool {
		if done > bestDepth {
			bestDepth = done
		}
		if done == required {
			return true
		}
		mk := memoKey(st)
		if _, seen := visited[mk]; seen {
			return false
		}
		visited[mk] = struct{}{}
		for i := 0; i < n; i++ {
			if has(i) {
				continue
			}
			eligible := true
			for _, j := range preds[i] {
				if !has(j) {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			next := st
			switch ops[i].Kind {
			case OpWrite:
				next = regState{value: ops[i].Value, found: true}
			case OpDelete:
				next = regState{}
			case OpRead:
				if ops[i].Found != st.found || (st.found && ops[i].Value != st.value) {
					continue // this read cannot fire in the current state
				}
			}
			nd := done
			if ops[i].Return != InfTime {
				nd++
			}
			set(i)
			if dfs(next, nd) {
				return true
			}
			unset(i)
		}
		return false
	}
	if dfs(regState{}, 0) {
		return "", true
	}
	return fmt.Sprintf("no sequential witness over %d ops (longest valid prefix: %d ops); first ops: %s",
		n, bestDepth, sampleOps(ops)), false
}

// sampleOps renders up to four operations for failure diagnostics.
func sampleOps(ops []Op) string {
	s := ""
	for i, op := range ops {
		if i == 4 {
			s += ", ..."
			break
		}
		if i > 0 {
			s += ", "
		}
		s += op.String()
	}
	return s
}
