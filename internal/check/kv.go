// Concurrent history capture for the quorum KV store. CaptureHistory
// drives concurrent clients against a store in synchronized waves —
// every client issues one operation, all operations complete, then the
// BetweenWaves hook runs (wire chaos ticks there). Failure transitions
// therefore never race an in-flight operation, which keeps the capture
// itself deterministic enough to check while still exercising true
// client concurrency within each wave.
package check

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/topology"
)

// QuorumKV is the store surface the capture harness drives
// (implemented by *kvstore.Store).
type QuorumKV interface {
	Put(coordinator topology.NodeID, key string, value []byte) (time.Duration, error)
	Get(coordinator topology.NodeID, key string) ([]byte, time.Duration, error)
	Delete(coordinator topology.NodeID, key string) (time.Duration, error)
}

// CaptureConfig parameterizes CaptureHistory.
type CaptureConfig struct {
	// Clients is the concurrent client count. Default 4.
	Clients int
	// Waves is how many operations each client issues. Default 25.
	Waves int
	// Keys is the keyspace size — keep it small so clients actually
	// contend. Default 8.
	Keys int
	// Nodes spreads client coordinators over [0, Nodes). Default 1.
	Nodes int
	// ReadFraction of operations are reads; DeleteFraction are deletes;
	// the rest are writes of unique values. Defaults 0.5 and 0.
	ReadFraction   float64
	DeleteFraction float64
	// Seed drives every client's operation choices.
	Seed uint64
	// IsNotFound classifies a Get error as "read observed an absent
	// key" rather than a failed operation; required.
	IsNotFound func(error) bool
	// BetweenWaves, if set, runs after each wave with no operation in
	// flight — the place to tick a chaos controller.
	BetweenWaves func(wave int)
}

// CaptureHistory runs the concurrent workload and returns the recorded
// history. Failed reads are omitted (they observed nothing); failed
// writes and deletes are recorded as pending (Return=InfTime) because a
// quorum failure may still have partially applied.
func CaptureHistory(kv QuorumKV, cfg CaptureConfig) *History {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 25
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 8
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ReadFraction == 0 && cfg.DeleteFraction == 0 {
		cfg.ReadFraction = 0.5
	}
	if cfg.IsNotFound == nil {
		panic("check: CaptureConfig.IsNotFound is required")
	}

	h := NewHistory()
	rngs := make([]*rng.RNG, cfg.Clients)
	for c := range rngs {
		rngs[c] = rng.New(cfg.Seed + uint64(c)*0x9e3779b97f4a7c15)
	}
	for wave := 0; wave < cfg.Waves; wave++ {
		var wg sync.WaitGroup
		for c := 0; c < cfg.Clients; c++ {
			r := rngs[c]
			key := fmt.Sprintf("k%02d", r.Intn(cfg.Keys))
			coord := topology.NodeID(r.Intn(cfg.Nodes))
			roll := r.Float64()
			wg.Add(1)
			go func(c, wave int) {
				defer wg.Done()
				switch {
				case roll < cfg.ReadFraction:
					inv := h.Stamp()
					val, _, err := kv.Get(coord, key)
					ret := h.Stamp()
					if err != nil && !cfg.IsNotFound(err) {
						return // failed read: observed nothing
					}
					h.Append(Op{
						Client: c, Kind: OpRead, Key: key,
						Value: string(val), Found: err == nil,
						Invoke: inv, Return: ret,
					})
				case roll < cfg.ReadFraction+cfg.DeleteFraction:
					inv := h.Stamp()
					_, err := kv.Delete(coord, key)
					ret := h.Stamp()
					if err != nil {
						ret = InfTime // ambiguous: may have partially applied
					}
					h.Append(Op{Client: c, Kind: OpDelete, Key: key, Invoke: inv, Return: ret})
				default:
					value := fmt.Sprintf("c%d.w%d", c, wave)
					inv := h.Stamp()
					_, err := kv.Put(coord, key, []byte(value))
					ret := h.Stamp()
					if err != nil {
						ret = InfTime
					}
					h.Append(Op{Client: c, Kind: OpWrite, Key: key, Value: value, Invoke: inv, Return: ret})
				}
			}(c, wave)
		}
		wg.Wait()
		if cfg.BetweenWaves != nil {
			cfg.BetweenWaves(wave)
		}
	}
	return h
}
