package check

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/workload"
)

func TestReferenceSGDAgainstBSPTrainer(t *testing.T) {
	data := workload.Logistic(800, 8, 5)
	cfg := ml.Config{Workers: 4, Mode: ml.BSP, Steps: 60, Seed: 9}
	got := ml.Train(data, cfg)
	// BSP and the lockstep reference are different executions of the
	// same stochastic process: compare on aggregate quality.
	d := DiffSGD("bsp", got, data, cfg, 0.05, 0.05)
	if !d.OK {
		t.Fatalf("trainer vs reference: %s", d)
	}
}

func TestReferenceSGDLearns(t *testing.T) {
	data := workload.Logistic(600, 6, 3)
	res := ReferenceSGD(data, ml.Config{Seed: 1})
	if res.Accuracy < 0.8 {
		t.Fatalf("reference failed to learn: accuracy %g", res.Accuracy)
	}
	if len(res.Weights) != 6 {
		t.Fatalf("len(Weights) = %d", len(res.Weights))
	}
	// Deterministic: same data + config, same weights.
	again := ReferenceSGD(data, ml.Config{Seed: 1})
	for i := range res.Weights {
		if res.Weights[i] != again.Weights[i] {
			t.Fatal("reference not deterministic")
		}
	}
}

func TestDiffSGDCatchesDivergence(t *testing.T) {
	data := workload.Logistic(400, 4, 7)
	cfg := ml.Config{Workers: 2, Steps: 40, Seed: 7}
	bogus := ml.Result{FinalLoss: 99, Accuracy: 0.5}
	d := DiffSGD("bogus", bogus, data, cfg, 0.05, 0.05)
	if d.OK {
		t.Fatal("divergent result not detected")
	}
	if len(d.Details) != 2 {
		t.Fatalf("expected loss and accuracy details, got %v", d.Details)
	}
}
