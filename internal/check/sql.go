package check

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/query"
	"repro/internal/table"
)

// QueryInput is one base table for the reference evaluator.
type QueryInput struct {
	Schema table.Schema
	Rows   []table.Row
}

// ReferenceQuery evaluates a logical query plan naively in a single
// process — nested maps and sorts over in-memory rows, no dataflow
// engine, no optimizer — and returns the output schema and rows. It is
// the ground truth the distributed planner is differentially checked
// against. Semantics deliberately mirror internal/table's: join and
// group keys compare floats by IEEE bits, integer sums wrap, sorts are
// total orders (primary column first, remaining columns as ascending
// tiebreaks, floats ordered by sign-flipped bits).
func ReferenceQuery(lp *query.Logical, tables map[string]QueryInput) (table.Schema, []table.Row, error) {
	base := func(name string) (table.Schema, error) {
		in, ok := tables[name]
		if !ok {
			return table.Schema{}, fmt.Errorf("check: unknown table %q", name)
		}
		return in.Schema, nil
	}
	schema, err := lp.OutSchema(base)
	if err != nil {
		return table.Schema{}, nil, err
	}
	rows, err := evalQuery(lp, tables)
	if err != nil {
		return table.Schema{}, nil, err
	}
	return schema, rows, nil
}

func evalQuery(lp *query.Logical, tables map[string]QueryInput) ([]table.Row, error) {
	base := func(name string) (table.Schema, error) {
		in, ok := tables[name]
		if !ok {
			return table.Schema{}, fmt.Errorf("check: unknown table %q", name)
		}
		return in.Schema, nil
	}
	switch lp.Op {
	case query.OpScan:
		in, ok := tables[lp.TableName]
		if !ok {
			return nil, fmt.Errorf("check: unknown table %q", lp.TableName)
		}
		return append([]table.Row(nil), in.Rows...), nil
	case query.OpFilter:
		rows, err := evalQuery(lp.Input, tables)
		if err != nil {
			return nil, err
		}
		schema, err := lp.Input.OutSchema(base)
		if err != nil {
			return nil, err
		}
		keep, err := lp.Pred.Bind(schema)
		if err != nil {
			return nil, err
		}
		var out []table.Row
		for _, r := range rows {
			if keep(r) {
				out = append(out, r)
			}
		}
		return out, nil
	case query.OpProject:
		rows, err := evalQuery(lp.Input, tables)
		if err != nil {
			return nil, err
		}
		schema, err := lp.Input.OutSchema(base)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(lp.Cols))
		for i, c := range lp.Cols {
			j, err := schema.MustIndex(c)
			if err != nil {
				return nil, err
			}
			idx[i] = j
		}
		out := make([]table.Row, len(rows))
		for i, r := range rows {
			proj := make(table.Row, len(idx))
			for k, j := range idx {
				proj[k] = r[j]
			}
			out[i] = proj
		}
		return out, nil
	case query.OpJoin:
		leftRows, err := evalQuery(lp.Input, tables)
		if err != nil {
			return nil, err
		}
		rightRows, err := evalQuery(lp.Right, tables)
		if err != nil {
			return nil, err
		}
		leftSchema, err := lp.Input.OutSchema(base)
		if err != nil {
			return nil, err
		}
		rightSchema, err := lp.Right.OutSchema(base)
		if err != nil {
			return nil, err
		}
		li, err := leftSchema.MustIndex(lp.LeftCol)
		if err != nil {
			return nil, err
		}
		ri, err := rightSchema.MustIndex(lp.RightCol)
		if err != nil {
			return nil, err
		}
		build := map[any][]table.Row{}
		for _, r := range rightRows {
			build[joinKey(r[ri])] = append(build[joinKey(r[ri])], r)
		}
		var out []table.Row
		for _, l := range leftRows {
			for _, r := range build[joinKey(l[li])] {
				joined := make(table.Row, 0, len(l)+len(r))
				joined = append(joined, l...)
				joined = append(joined, r...)
				out = append(out, joined)
			}
		}
		return out, nil
	case query.OpAgg:
		return evalAgg(lp, tables)
	case query.OpSort:
		rows, err := evalQuery(lp.Input, tables)
		if err != nil {
			return nil, err
		}
		schema, err := lp.Input.OutSchema(base)
		if err != nil {
			return nil, err
		}
		primary, err := schema.MustIndex(lp.SortCol)
		if err != nil {
			return nil, err
		}
		// Total order: primary column (desc-aware), then every remaining
		// column ascending — matching the engine's compiled sort.
		order := []int{primary}
		for i := range schema.Cols {
			if i != primary {
				order = append(order, i)
			}
		}
		out := append([]table.Row(nil), rows...)
		sort.SliceStable(out, func(a, b int) bool {
			for k, idx := range order {
				c := cmpSortable(out[a][idx], out[b][idx])
				if c == 0 {
					continue
				}
				if k == 0 && lp.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		return out, nil
	case query.OpLimit:
		rows, err := evalQuery(lp.Input, tables)
		if err != nil {
			return nil, err
		}
		if len(rows) > lp.N {
			rows = rows[:lp.N]
		}
		return rows, nil
	}
	return nil, fmt.Errorf("check: unknown operator %d", lp.Op)
}

// joinKey mirrors the engine's equality encoding: floats compare by
// IEEE bits (NaN == NaN, -0 != +0), other types by value.
func joinKey(v any) any {
	if f, ok := v.(float64); ok {
		return math.Float64bits(f)
	}
	return v
}

// cmpSortable mirrors internal/serde's sortable key order: ints and
// strings naturally, floats by IEEE total order (sign-flipped bits),
// so -NaN < -Inf < ... < -0 < +0 < ... < +Inf < +NaN.
func cmpSortable(a, b any) int {
	switch av := a.(type) {
	case int64:
		bv := b.(int64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case float64:
		ak, bk := floatOrd(av), floatOrd(b.(float64))
		switch {
		case ak < bk:
			return -1
		case ak > bk:
			return 1
		}
		return 0
	default:
		return strings.Compare(a.(string), b.(string))
	}
}

func floatOrd(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

type aggCell struct {
	sumI  int64
	sumF  float64
	count int64
	mmSet bool
	mm    any
}

func evalAgg(lp *query.Logical, tables map[string]QueryInput) ([]table.Row, error) {
	rows, err := evalQuery(lp.Input, tables)
	if err != nil {
		return nil, err
	}
	base := func(name string) (table.Schema, error) {
		in, ok := tables[name]
		if !ok {
			return table.Schema{}, fmt.Errorf("check: unknown table %q", name)
		}
		return in.Schema, nil
	}
	schema, err := lp.Input.OutSchema(base)
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(lp.Keys))
	for i, k := range lp.Keys {
		j, err := schema.MustIndex(k)
		if err != nil {
			return nil, err
		}
		keyIdx[i] = j
	}
	colIdx := make([]int, len(lp.Aggs))
	colTyp := make([]table.Type, len(lp.Aggs))
	for i, a := range lp.Aggs {
		colIdx[i] = -1
		if a.Op != table.Count {
			j, err := schema.MustIndex(a.Col)
			if err != nil {
				return nil, err
			}
			colIdx[i] = j
			colTyp[i] = schema.Cols[j].Type
		}
	}
	type group struct {
		key   []any
		cells []aggCell
	}
	groups := map[string]*group{}
	var order []string // first-seen group order (multiset compare ignores it)
	for _, r := range rows {
		var kb strings.Builder
		key := make([]any, len(keyIdx))
		for i, j := range keyIdx {
			key[i] = r[j]
			fmt.Fprintf(&kb, "%v|", joinKey(r[j]))
		}
		ks := kb.String()
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key, cells: make([]aggCell, len(lp.Aggs))}
			groups[ks] = g
			order = append(order, ks)
		}
		for i, a := range lp.Aggs {
			cell := &g.cells[i]
			switch a.Op {
			case table.Count:
				cell.count++
				continue
			}
			v := r[colIdx[i]]
			switch a.Op {
			case table.Sum:
				if colTyp[i] == table.Int64 {
					cell.sumI += v.(int64)
				} else {
					cell.sumF += v.(float64)
				}
			case table.Avg:
				if colTyp[i] == table.Int64 {
					cell.sumF += float64(v.(int64))
				} else {
					cell.sumF += v.(float64)
				}
				cell.count++
			case table.Min:
				if !cell.mmSet || cmpSortable(v, cell.mm) < 0 {
					cell.mmSet, cell.mm = true, v
				}
			case table.Max:
				if !cell.mmSet || cmpSortable(v, cell.mm) > 0 {
					cell.mmSet, cell.mm = true, v
				}
			}
		}
	}
	var out []table.Row
	for _, ks := range order {
		g := groups[ks]
		row := append([]any(nil), g.key...)
		for i, a := range lp.Aggs {
			cell := g.cells[i]
			switch a.Op {
			case table.Count:
				row = append(row, cell.count)
			case table.Sum:
				if colTyp[i] == table.Int64 {
					row = append(row, cell.sumI)
				} else {
					row = append(row, cell.sumF)
				}
			case table.Avg:
				row = append(row, cell.sumF/float64(cell.count))
			default:
				row = append(row, cell.mm)
			}
		}
		out = append(out, table.Row(row))
	}
	return out, nil
}

// FormatRow renders a row canonically for multiset comparison: floats
// via shortest round-trip formatting, so bit-identical values (and
// only those) collide.
func FormatRow(r table.Row) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('|')
		}
		switch x := v.(type) {
		case int64:
			b.WriteString(intString(x))
		case float64:
			b.WriteString(floatString(x))
		default:
			fmt.Fprintf(&b, "%q", x)
		}
	}
	return b.String()
}

// DiffQuery runs the reference evaluator over the original logical
// plan and compares the engine's rows against it: ordered comparison
// when the plan's output has a defined order (top-level ORDER BY),
// multiset comparison otherwise.
func DiffQuery(name string, got []table.Row, lp *query.Logical, tables map[string]QueryInput) Diff {
	_, want, err := ReferenceQuery(lp, tables)
	if err != nil {
		return Diff{Name: name, Details: []string{"reference evaluation: " + err.Error()}}
	}
	if lp.Ordered() {
		return DiffOrdered(name, got, want, FormatRow)
	}
	return DiffMultiset(name, got, want, FormatRow)
}

// DiffQueryEnv is DiffQuery against tables registered in a query.Env.
func DiffQueryEnv(name string, got []table.Row, lp *query.Logical, env *query.Env) Diff {
	tables := map[string]QueryInput{}
	for _, t := range env.Tables() {
		schema, err := env.Schema(t)
		if err != nil {
			return Diff{Name: name, Details: []string{err.Error()}}
		}
		rows, err := env.Rows(t)
		if err != nil {
			return Diff{Name: name, Details: []string{err.Error()}}
		}
		tables[t] = QueryInput{Schema: schema, Rows: rows}
	}
	return DiffQuery(name, got, lp, tables)
}
