package check

import (
	"errors"
	"testing"

	"repro/internal/kvstore"
)

func TestCheckTxnsSerialHistoryOK(t *testing.T) {
	ops := []TxnOp{
		{Client: 0, Writes: []TxnWrite{{Key: "a", Value: "1"}, {Key: "b", Value: "1"}}, Invoke: 1, Return: 2},
		{Client: 1, Reads: []TxnRead{{Key: "a", Value: "1", Found: true}, {Key: "b", Value: "1", Found: true}}, Invoke: 3, Return: 4},
		{Client: 0, Writes: []TxnWrite{{Key: "a", Del: true}}, Invoke: 5, Return: 6},
		{Client: 1, Reads: []TxnRead{{Key: "a", Found: false}}, Invoke: 7, Return: 8},
	}
	if out := CheckTxns(ops); !out.OK {
		t.Fatalf("serial history rejected: %s", out.Detail)
	}
}

func TestCheckTxnsFracturedReadRejected(t *testing.T) {
	// a and b are written atomically; a read seeing the new a with the
	// old b observes a state no serial order produces.
	ops := []TxnOp{
		{Client: 0, Writes: []TxnWrite{{Key: "a", Value: "old"}, {Key: "b", Value: "old"}}, Invoke: 1, Return: 2},
		{Client: 0, Writes: []TxnWrite{{Key: "a", Value: "new"}, {Key: "b", Value: "new"}}, Invoke: 3, Return: 4},
		{Client: 1, Reads: []TxnRead{{Key: "a", Value: "new", Found: true}, {Key: "b", Value: "old", Found: true}}, Invoke: 5, Return: 6},
	}
	if out := CheckTxns(ops); out.OK {
		t.Fatal("fractured read accepted as strictly serializable")
	}
}

func TestCheckTxnsLostUpdateRejected(t *testing.T) {
	// Two increments both read 0 and both commit — a lost update. The
	// overlap makes either order real-time legal, but no serial order
	// lets both reads see 0.
	ops := []TxnOp{
		{Client: 0, Writes: []TxnWrite{{Key: "x", Value: "0"}}, Invoke: 1, Return: 2},
		{Client: 1, Reads: []TxnRead{{Key: "x", Value: "0", Found: true}}, Writes: []TxnWrite{{Key: "x", Value: "1a"}}, Invoke: 3, Return: 6},
		{Client: 2, Reads: []TxnRead{{Key: "x", Value: "0", Found: true}}, Writes: []TxnWrite{{Key: "x", Value: "1b"}}, Invoke: 4, Return: 7},
	}
	if out := CheckTxns(ops); out.OK {
		t.Fatal("lost update accepted as strictly serializable")
	}
}

func TestCheckTxnsRealTimeOrderEnforced(t *testing.T) {
	// Strictness: a read that starts after a committed write returned
	// must observe it (plain serializability would allow reordering).
	ops := []TxnOp{
		{Client: 0, Writes: []TxnWrite{{Key: "x", Value: "1"}}, Invoke: 1, Return: 2},
		{Client: 1, Reads: []TxnRead{{Key: "x", Found: false}}, Invoke: 3, Return: 4},
	}
	if out := CheckTxns(ops); out.OK {
		t.Fatal("stale read after real-time-ordered write accepted")
	}
	// The same observation is fine when the operations overlap.
	ops[1].Invoke = 1
	ops[1].Return = 3
	ops[0].Invoke = 2
	ops[0].Return = 4
	if out := CheckTxns(ops); !out.OK {
		t.Fatalf("overlapping stale read rejected: %s", out.Detail)
	}
}

func TestCheckTxnsPendingMayCommitOrAbort(t *testing.T) {
	// A pending txn's write may be observed...
	ops := []TxnOp{
		{Client: 0, Writes: []TxnWrite{{Key: "x", Value: "maybe"}}, Invoke: 1, Return: InfTime},
		{Client: 1, Reads: []TxnRead{{Key: "x", Value: "maybe", Found: true}}, Invoke: 2, Return: 3},
	}
	if out := CheckTxns(ops); !out.OK {
		t.Fatalf("pending write observed but rejected: %s", out.Detail)
	}
	// ...or never take effect.
	ops[1].Reads[0] = TxnRead{Key: "x", Found: false}
	if out := CheckTxns(ops); !out.OK {
		t.Fatalf("pending write omitted but rejected: %s", out.Detail)
	}
}

// shardedNoEffect classifies the sharded plane's clean-abort errors.
func shardedNoEffect(err error) bool {
	return errors.Is(err, kvstore.ErrTxnConflict) ||
		errors.Is(err, kvstore.ErrTxnAborted) ||
		errors.Is(err, kvstore.ErrKeyLocked) ||
		errors.Is(err, kvstore.ErrDeadlineExceeded)
}

func TestCaptureTxnHistoryCleanRunIsStrictlySerializable(t *testing.T) {
	s := kvstore.NewSharded(kvstore.ShardedConfig{Seed: 21, Groups: 2, InitialSplits: []string{"k04"}})
	ops := CaptureTxnHistory(s, TxnCaptureConfig{
		Clients: 4, Waves: 12, Keys: 8, TxnKeys: 2, Seed: 21,
		NoEffect: shardedNoEffect,
	})
	if len(ops) == 0 {
		t.Fatal("empty history")
	}
	out := CheckTxns(ops)
	if !out.OK {
		t.Fatalf("clean sharded run not strictly serializable: %s", out.Detail)
	}
	if out.Ops != len(ops) || out.Keys == 0 {
		t.Fatalf("outcome counts wrong: %+v over %d ops", out, len(ops))
	}
}

func TestCaptureTxnHistoryDirtyReadsCaught(t *testing.T) {
	// Teeth: with dirty reads injected mid-run the verdict must flip.
	// Reads served from overwritten versions produce observations no
	// serial witness reproduces.
	s := kvstore.NewSharded(kvstore.ShardedConfig{Seed: 33, Groups: 2})
	caught := false
	for seed := uint64(33); seed < 37 && !caught; seed++ {
		ops := CaptureTxnHistory(s, TxnCaptureConfig{
			Clients: 4, Waves: 10, Keys: 4, TxnKeys: 2, Seed: seed,
			ReadFraction: 0.5, TxnFraction: 0.3,
			NoEffect:     shardedNoEffect,
			BetweenWaves: func(wave int) { s.SetDirtyReads(wave >= 2) },
		})
		caught = !CheckTxns(ops).OK
		s.SetDirtyReads(false)
	}
	if !caught {
		t.Fatal("dirty-read injection never produced a non-serializable history")
	}
}
