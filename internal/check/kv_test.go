package check

import (
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func newTestStore(t *testing.T, n, r, w int) *kvstore.Store {
	t.Helper()
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.TCP40G)
	store, err := kvstore.New(kvstore.Config{Fabric: fab, N: n, R: r, W: w})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func isNotFound(err error) bool { return errors.Is(err, kvstore.ErrNotFound) }

func TestCaptureHistoryLinearizable(t *testing.T) {
	store := newTestStore(t, 3, 2, 2)
	h := CaptureHistory(store, CaptureConfig{
		Clients: 4, Waves: 30, Keys: 6, Nodes: 8,
		ReadFraction: 0.4, DeleteFraction: 0.1,
		Seed: 1, IsNotFound: isNotFound,
	})
	ops := h.Ops()
	if len(ops) == 0 {
		t.Fatal("no operations captured")
	}
	kinds := map[OpKind]int{}
	for _, op := range ops {
		kinds[op.Kind]++
	}
	if kinds[OpRead] == 0 || kinds[OpWrite] == 0 || kinds[OpDelete] == 0 {
		t.Fatalf("workload mix missing a kind: %v", kinds)
	}
	if out := Linearizable(h); !out.OK {
		t.Fatalf("healthy store produced non-linearizable history: %s", out)
	}
}

func TestCaptureHistoryUnderChaos(t *testing.T) {
	store := newTestStore(t, 3, 2, 2)
	sched := chaos.Schedule{
		{At: 3, Kind: chaos.Crash, Node: 2},
		{At: 8, Kind: chaos.Revive, Node: 2},
		{At: 12, Kind: chaos.Crash, Node: 5},
		{At: 18, Kind: chaos.Revive, Node: 5},
	}
	ctl := chaos.New(sched, 1, chaos.Targets{Nodes: 8, KV: store}, store.Reg)
	h := CaptureHistory(store, CaptureConfig{
		Clients: 4, Waves: 25, Keys: 6, Nodes: 8,
		ReadFraction: 0.5, Seed: 2, IsNotFound: isNotFound,
		BetweenWaves: func(int) { ctl.Tick() },
	})
	if !ctl.Done() {
		t.Fatalf("chaos schedule incomplete: %d applied", ctl.Applied())
	}
	if out := Linearizable(h); !out.OK {
		t.Fatalf("crash/revive chaos broke linearizability: %s", out)
	}
}

func TestStaleReadsFailChecker(t *testing.T) {
	// The self-test that proves the checker has teeth: a sequential
	// put/put/get under the stale-read fault yields a history with no
	// sequential witness.
	store := newTestStore(t, 3, 2, 2)
	h := NewHistory()
	record := func(kind OpKind, key, value string, found bool, inv, ret int64) {
		h.Append(Op{Kind: kind, Key: key, Value: value, Found: found, Invoke: inv, Return: ret})
	}
	if _, err := store.Put(0, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	record(OpWrite, "k", "v1", false, h.Stamp(), h.Stamp())
	if _, err := store.Put(0, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	record(OpWrite, "k", "v2", false, h.Stamp(), h.Stamp())

	store.SetStaleReads(true)
	val, _, err := store.Get(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	record(OpRead, "k", string(val), true, h.Stamp(), h.Stamp())
	if string(val) != "v1" {
		t.Fatalf("stale read served %q, want the overwritten v1", val)
	}
	out := Linearizable(h)
	if out.OK {
		t.Fatal("checker accepted a stale read — it has no teeth")
	}

	// Clearing the fault restores linearizable reads.
	store.SetStaleReads(false)
	val, _, err = store.Get(0, "k")
	if err != nil || string(val) != "v2" {
		t.Fatalf("healthy read: %q, %v", val, err)
	}
}

func TestCaptureHistoryDefaultsAndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing IsNotFound must panic")
		}
	}()
	CaptureHistory(newTestStore(t, 3, 2, 2), CaptureConfig{})
}

func TestCaptureHistoryDefaultReadFraction(t *testing.T) {
	store := newTestStore(t, 3, 1, 1)
	h := CaptureHistory(store, CaptureConfig{
		Clients: 2, Waves: 10, Keys: 2, Seed: 3, IsNotFound: isNotFound,
	})
	kinds := map[OpKind]int{}
	for _, op := range h.Ops() {
		kinds[op.Kind]++
	}
	if kinds[OpRead] == 0 || kinds[OpWrite] == 0 {
		t.Fatalf("default 50/50 mix missing a kind: %v", kinds)
	}
	if out := Linearizable(h); !out.OK {
		t.Fatalf("R=W=1 store (writes reach all live replicas synchronously) must still check out: %s", out)
	}
}
