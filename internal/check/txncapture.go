// Concurrent transactional history capture for the sharded KV plane.
// Same wave discipline as CaptureHistory: every client issues one
// operation per wave, the wave drains, then the BetweenWaves hook runs —
// chaos transitions (crashes, partitions, splits) never race an
// in-flight operation, and the barriers bound concurrency so the
// whole-history witness search in CheckTxns stays tractable.
package check

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/rng"
)

// TxnKV is the transactional store surface the capture harness drives
// (implemented by *kvstore.Sharded).
type TxnKV interface {
	Get(ctx context.Context, key string) ([]byte, bool, error)
	Put(ctx context.Context, key string, value []byte) error
	Txn(ctx context.Context, reads []string, writes map[string][]byte) (map[string][]byte, error)
}

// TxnCaptureConfig parameterizes CaptureTxnHistory.
type TxnCaptureConfig struct {
	// Clients is the concurrent client count. Default 4.
	Clients int
	// Waves is how many operations each client issues. Default 25.
	Waves int
	// Keys is the keyspace size — keep it small so transactions actually
	// conflict. Default 8.
	Keys int
	// ReadFraction of operations are single-key gets; TxnFraction are
	// multi-key transactions; the rest are single-key puts of unique
	// values. Defaults 0.3 and 0.4.
	ReadFraction, TxnFraction float64
	// TxnKeys is how many distinct keys each transaction reads and
	// writes. Default 2.
	TxnKeys int
	// Seed drives every client's operation choices.
	Seed uint64
	// NoEffect classifies an error as "guaranteed no effect" (e.g. a
	// clean conflict abort): the operation is omitted from the history.
	// Any other error is ambiguous and recorded as pending; required.
	NoEffect func(error) bool
	// BetweenWaves, if set, runs after each wave with no operation in
	// flight — the place to tick chaos, crash coordinators, or split.
	BetweenWaves func(wave int)
}

// CaptureTxnHistory runs the concurrent transactional workload and
// returns the recorded operations. Failed gets are omitted (they
// observed nothing); failed puts and transactions are omitted when the
// error guarantees no effect, and otherwise recorded as pending
// (Return=InfTime) with their reads dropped — the client never saw them.
func CaptureTxnHistory(kv TxnKV, cfg TxnCaptureConfig) []TxnOp {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 25
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 8
	}
	if cfg.TxnKeys <= 0 {
		cfg.TxnKeys = 2
	}
	if cfg.ReadFraction == 0 && cfg.TxnFraction == 0 {
		cfg.ReadFraction, cfg.TxnFraction = 0.3, 0.4
	}
	if cfg.NoEffect == nil {
		panic("check: TxnCaptureConfig.NoEffect is required")
	}

	h := NewHistory() // used only for its logical clock
	var mu sync.Mutex
	var out []TxnOp
	record := func(op TxnOp) {
		mu.Lock()
		out = append(out, op)
		mu.Unlock()
	}

	rngs := make([]*rng.RNG, cfg.Clients)
	for c := range rngs {
		rngs[c] = rng.New(cfg.Seed + uint64(c)*0x9e3779b97f4a7c15)
	}
	ctx := context.Background()
	for wave := 0; wave < cfg.Waves; wave++ {
		var wg sync.WaitGroup
		for c := 0; c < cfg.Clients; c++ {
			r := rngs[c]
			roll := r.Float64()
			key := fmt.Sprintf("k%02d", r.Intn(cfg.Keys))
			// Pre-draw the transaction's key set so the rng stream stays
			// deterministic regardless of which branch runs.
			tkeys := make([]string, 0, cfg.TxnKeys)
			seen := map[string]bool{}
			for len(tkeys) < cfg.TxnKeys && len(seen) < cfg.Keys {
				k := fmt.Sprintf("k%02d", r.Intn(cfg.Keys))
				if !seen[k] {
					seen[k] = true
					tkeys = append(tkeys, k)
				}
			}
			wg.Add(1)
			go func(c, wave int) {
				defer wg.Done()
				switch {
				case roll < cfg.ReadFraction:
					inv := h.Stamp()
					val, found, err := kv.Get(ctx, key)
					ret := h.Stamp()
					if err != nil {
						return // failed read: observed nothing
					}
					record(TxnOp{
						Client: c,
						Reads:  []TxnRead{{Key: key, Value: string(val), Found: found}},
						Invoke: inv, Return: ret,
					})
				case roll < cfg.ReadFraction+cfg.TxnFraction:
					value := fmt.Sprintf("c%d.w%d", c, wave)
					writes := make(map[string][]byte, len(tkeys))
					for _, k := range tkeys {
						writes[k] = []byte(value)
					}
					inv := h.Stamp()
					got, err := kv.Txn(ctx, tkeys, writes)
					ret := h.Stamp()
					op := TxnOp{Client: c, Invoke: inv, Return: ret}
					for _, k := range tkeys {
						op.Writes = append(op.Writes, TxnWrite{Key: k, Value: value})
					}
					if err != nil {
						if cfg.NoEffect(err) {
							return
						}
						op.Return = InfTime // ambiguous: may have committed
						record(op)
						return
					}
					for _, k := range tkeys {
						v, found := got[k]
						op.Reads = append(op.Reads, TxnRead{Key: k, Value: string(v), Found: found})
					}
					record(op)
				default:
					value := fmt.Sprintf("c%d.w%d", c, wave)
					inv := h.Stamp()
					err := kv.Put(ctx, key, []byte(value))
					ret := h.Stamp()
					if err != nil && cfg.NoEffect(err) {
						return
					}
					if err != nil {
						ret = InfTime
					}
					record(TxnOp{
						Client: c,
						Writes: []TxnWrite{{Key: key, Value: value}},
						Invoke: inv, Return: ret,
					})
				}
			}(c, wave)
		}
		wg.Wait()
		if cfg.BetweenWaves != nil {
			cfg.BetweenWaves(wave)
		}
	}
	return out
}
