package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/topology"
)

func TestUnionLocalityPrefsRouteToChildren(t *testing.T) {
	e := testEngine(t, 4, Config{})
	var aNodes, bNodes atomic.Int64
	a := e.NewSource(2, func(ctx *TaskContext, part int) []Row {
		if ctx.Node != 1 {
			aNodes.Add(1)
		}
		return []Row{1}
	}, func(int) []topology.NodeID { return []topology.NodeID{1} })
	b := e.NewSource(2, func(ctx *TaskContext, part int) []Row {
		if ctx.Node != 3 {
			bNodes.Add(1)
		}
		return []Row{2}
	}, func(int) []topology.NodeID { return []topology.NodeID{3} })
	u := e.NewUnion(a, b)
	if _, err := e.Collect(u); err != nil {
		t.Fatal(err)
	}
	if aNodes.Load() != 0 || bNodes.Load() != 0 {
		t.Fatalf("union lost child locality prefs: %d, %d off-node tasks",
			aNodes.Load(), bNodes.Load())
	}
}

func TestShuffleOverUnionMixedParents(t *testing.T) {
	// Shuffle whose parent is a union of a source and a narrow chain.
	e := testEngine(t, 4, Config{})
	a := sliceSource(e, ints(20), 2)
	doubled := e.NewNarrow(sliceSource(e, ints(20), 3), func(_ *TaskContext, rows []Row) []Row {
		out := make([]Row, len(rows))
		for i, r := range rows {
			out[i] = r.(int) + 100
		}
		return out
	})
	u := e.NewUnion(a, doubled)
	counted := e.NewShuffled(u, ShuffleDep{
		Partitions: 2,
		KeyOf:      func(r Row) []byte { return serde.EncodeInt64(int64(r.(int) % 2)) },
		ValueOf:    func(r Row) []byte { return serde.EncodeInt64(int64(r.(int))) },
		Post: func(_ *TaskContext, recs []shuffle.Record) []Row {
			sum := int64(0)
			for _, rec := range recs {
				v, _ := serde.DecodeInt64(rec.Value)
				sum += v
			}
			return []Row{sum}
		},
	})
	rows, err := e.Collect(counted)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rows {
		total += r.(int64)
	}
	// ints(20) sums to 190; +100 each for 20 rows adds 2000+190.
	if total != 190+190+2000 {
		t.Fatalf("total = %d", total)
	}
}

func TestNoLiveNodesFailsCleanly(t *testing.T) {
	e := testEngine(t, 2, Config{})
	for i := 0; i < 2; i++ {
		_ = e.cfg.Cluster.Kill(topology.NodeID(i))
	}
	p := sliceSource(e, ints(4), 2)
	if _, err := e.Collect(p); !errors.Is(err, ErrNoLiveNodes) {
		t.Fatalf("err = %v, want ErrNoLiveNodes", err)
	}
}

func TestCheckpointWithoutDFSFails(t *testing.T) {
	// Engine built with no DFS must reject checkpoints, not panic.
	e := testEngine(t, 2, Config{})
	e.cfg.DFS = nil
	p := sliceSource(e, ints(4), 2)
	enc := func(r Row) []byte { return serde.EncodeInt64(int64(r.(int))) }
	dec := func(b []byte) Row { v, _ := serde.DecodeInt64(b); return int(v) }
	if err := e.Checkpoint(p, "/x", enc, dec); err == nil {
		t.Fatal("checkpoint without DFS accepted")
	}
}

func TestTaskMetricsPopulated(t *testing.T) {
	e := testEngine(t, 4, Config{})
	got := wordCounts(t, e, wordCountPlan(e, []string{"a b", "b"}, 2, 2))
	if got["b"] != 2 {
		t.Fatalf("counts = %v", got)
	}
	if e.Reg.Counter("tasks_launched").Value() == 0 {
		t.Fatal("tasks_launched not counted")
	}
	if e.Reg.Counter("stages_run").Value() < 2 {
		t.Fatalf("stages_run = %d, want >= 2", e.Reg.Counter("stages_run").Value())
	}
	if e.Reg.Histogram("task_duration_ns").Count() == 0 {
		t.Fatal("task durations not observed")
	}
}

func TestEmptyPartitionsFlowThroughShuffle(t *testing.T) {
	e := testEngine(t, 4, Config{})
	src := e.NewSource(4, func(_ *TaskContext, part int) []Row {
		if part != 0 {
			return nil // three empty partitions
		}
		return []Row{"only"}
	}, nil)
	shuffled := e.NewShuffled(src, ShuffleDep{
		Partitions: 3,
		KeyOf:      func(r Row) []byte { return []byte(r.(string)) },
		ValueOf:    func(Row) []byte { return nil },
		Post: func(_ *TaskContext, recs []shuffle.Record) []Row {
			out := make([]Row, len(recs))
			for i, rec := range recs {
				out[i] = string(rec.Key)
			}
			return out
		},
	})
	rows, err := e.Collect(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].(string) != "only" {
		t.Fatalf("rows = %v", rows)
	}
}
