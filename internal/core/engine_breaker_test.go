package core

import (
	"sort"
	"testing"

	"repro/internal/admission"
)

// TestBreakerComposesWithQuarantine runs a job against a node that fails
// every task, with a per-node circuit breaker wired in under the
// three-strike quarantine. The breaker (threshold 2) trips before the
// quarantine sentence lands, placement skips the node, and the job still
// completes correctly — the two layers observe the same outcome stream
// without fighting each other.
func TestBreakerComposesWithQuarantine(t *testing.T) {
	br := admission.NewBreakerSet(admission.BreakerConfig{Threshold: 2, CooldownTicks: 4})
	e := testEngine(t, 4, Config{Breaker: br})
	e.SetNodeFailProb(1, 1)
	got := collectInts(t, e, sliceSource(e, ints(200), 8))
	sort.Ints(got)
	want := ints(200)
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
	if v := br.Opens(); v < 1 {
		t.Fatalf("breaker opens = %d, want >= 1", v)
	}
	if v := e.Reg.Counter("breaker_skips").Value(); v < 1 {
		t.Fatalf("breaker_skips = %d, want >= 1", v)
	}
	// A healthy node's breaker stays closed throughout.
	if st := br.NodeState(0); st != admission.BreakerClosed {
		t.Fatalf("healthy node breaker state = %v", st)
	}
}

// TestBreakerProbeRecovery verifies the half-open path end to end: once
// the failing node heals, the cooldown expires, a probe succeeds and the
// node returns to service. Quarantine is disabled so the breaker alone
// controls placement — with both on, the longer quarantine sentence
// holds the node out past this short job (see the composition test
// above).
func TestBreakerProbeRecovery(t *testing.T) {
	br := admission.NewBreakerSet(admission.BreakerConfig{Threshold: 2, CooldownTicks: 2})
	e := testEngine(t, 2, Config{Breaker: br, QuarantineThreshold: -1})
	e.SetNodeFailProb(1, 1)
	if got := collectInts(t, e, sliceSource(e, ints(50), 4)); len(got) != 50 {
		t.Fatalf("got %d rows, want 50", len(got))
	}
	if br.Opens() < 1 {
		t.Fatal("breaker never tripped")
	}
	e.SetNodeFailProb(1, 0) // node heals
	// The breaker half-opens once its cooldown ticks pass; each job runs
	// at least one wave, so within a few jobs a probe lands on the
	// healed node, succeeds and closes the breaker.
	for i := 0; i < 5 && br.NodeState(1) != admission.BreakerClosed; i++ {
		if got := collectInts(t, e, sliceSource(e, ints(50), 4)); len(got) != 50 {
			t.Fatalf("got %d rows after heal, want 50", len(got))
		}
	}
	if st := br.NodeState(1); st != admission.BreakerClosed {
		t.Fatalf("healed node breaker state = %v, want closed", st)
	}
}
