// Sequential reference oracle for the dataflow engine. Reference
// evaluates a Plan naively on a single goroutine — no stages, no tasks,
// no shuffle writers, no compression, no caching, no recovery — so its
// output depends only on the plan's user functions. Differential tests
// (internal/check, the EFT experiment, the chaos sweep) compare the
// distributed engine's output against it: the two paths share the job
// *spec* but almost no execution code, so agreement is strong evidence
// the engine moved and transformed the data correctly.
//
// The oracle deliberately skips the map-side combiner: combiners are an
// optimization that must not change results for associative, commutative
// merge functions, so evaluating without one checks that contract too.
// Record order within a reduce partition is only guaranteed to match the
// engine for Sorted shuffles; order-sensitive comparisons of unsorted
// shuffles should compare multisets (check.DiffMultiset).
package core

import (
	"bytes"
	"sort"

	"repro/internal/shuffle"
)

// Reference computes every output partition of p sequentially. The
// result has p.Partitions() entries, aligned with CollectPartitions.
func Reference(p *Plan) [][]Row {
	e := &refEval{shuffles: map[int][][]shuffle.Record{}}
	out := make([][]Row, p.parts)
	for i := 0; i < p.parts; i++ {
		out[i] = e.partition(p, i)
	}
	return out
}

// refEval memoizes shuffle groupings so a plan's map side runs once per
// shuffle boundary, not once per reduce partition.
type refEval struct {
	shuffles map[int][][]shuffle.Record // plan id -> reduce partition -> records
}

func (e *refEval) partition(p *Plan, part int) []Row {
	ctx := &TaskContext{Partition: part}
	switch p.kind {
	case kindSource:
		return p.source(ctx, part)
	case kindNarrow:
		return p.narrow(ctx, e.partition(p.parent, part))
	case kindUnion:
		child, local := p.unionChild(part)
		return e.partition(child, local)
	case kindShuffled:
		return p.dep.Post(ctx, e.shuffleRecords(p)[part])
	}
	panic("core: unknown plan kind")
}

// shuffleRecords evaluates the map side of a shuffle boundary: every
// parent row becomes a (key, value) record routed by the dependency's
// partitioner, and Sorted partitions are stable-sorted by key — the
// "stable sort + concat" reference the real writers are checked against.
func (e *refEval) shuffleRecords(p *Plan) [][]shuffle.Record {
	if recs, ok := e.shuffles[p.id]; ok {
		return recs
	}
	dep := p.dep
	route := dep.Partitioner
	if route == nil {
		n := dep.Partitions
		route = func(key []byte) int { return shuffle.Partition(key, n) }
	}
	out := make([][]shuffle.Record, dep.Partitions)
	for mp := 0; mp < p.parent.parts; mp++ {
		for _, row := range e.partition(p.parent, mp) {
			key := dep.KeyOf(row)
			tgt := route(key)
			out[tgt] = append(out[tgt], shuffle.Record{Key: key, Value: dep.ValueOf(row)})
		}
	}
	if dep.Sorted {
		for i := range out {
			recs := out[i]
			sort.SliceStable(recs, func(a, b int) bool {
				return bytes.Compare(recs[a].Key, recs[b].Key) < 0
			})
		}
	}
	e.shuffles[p.id] = out
	return out
}
