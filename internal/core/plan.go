// Package core is the framework's primary contribution: a lineage-based
// DAG dataflow engine in the RDD tradition. A job is a graph of logical
// plans; the engine splits it into stages at shuffle boundaries, runs each
// stage's partitions as real tasks on the cluster's executor pools with
// data-locality preferences, moves intermediate data through the pluggable
// shuffle subsystem (charging transfer costs to the network fabric), and
// recovers from task and node failures by recomputing exactly the lost
// lineage — or restoring from a DFS checkpoint when one exists (the E9
// ablation).
package core

import (
	"repro/internal/shuffle"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Row is one element of a dataset partition. The engine is untyped; the
// public hpbdc package layers generics on top.
type Row = any

// TaskContext is passed to user compute closures.
type TaskContext struct {
	// Node is where the task is running.
	Node topology.NodeID
	// Partition is the task's partition index.
	Partition int
	// Attempt counts retries of this partition (0 = first try).
	Attempt int
	// Trace is the task's causal context: shuffle fetches and any other
	// downstream work issued by the task parent their spans under it, so
	// the cross-node timeline links executor work back to the stage and
	// job that caused it. Zero when tracing is off.
	Trace trace.TraceContext
}

// ShuffleDep describes how a plan's input is redistributed: how rows of the
// parent become keyed records, how many partitions result, whether the
// shuffle sorts by key, and how the reduce side turns fetched records back
// into rows.
type ShuffleDep struct {
	// Partitions is the reduce-side partition count; required.
	Partitions int
	// KeyOf extracts the shuffle key bytes from a parent row; required.
	KeyOf func(Row) []byte
	// ValueOf serializes the row's value payload; required.
	ValueOf func(Row) []byte
	// Post converts one reduce partition's records into output rows;
	// required. Records arrive key-sorted when Sorted is set.
	Post func(ctx *TaskContext, recs []shuffle.Record) []Row
	// Combiner optionally merges encoded values with equal keys map-side.
	Combiner func(a, b []byte) []byte
	// Sorted selects the sort-based shuffle writer and a merged,
	// key-ordered reduce-side read.
	Sorted bool
	// Partitioner overrides hash partitioning (e.g. range partitioning).
	Partitioner func(key []byte) int
}

type planKind int

const (
	kindSource planKind = iota
	kindNarrow
	kindUnion
	kindShuffled
)

// Plan is a node in the logical dataflow graph. Plans are immutable once
// built; construction happens through the New* functions below (or the
// typed wrappers in package hpbdc).
type Plan struct {
	id    int
	kind  planKind
	parts int

	// kindSource
	source func(ctx *TaskContext, part int) []Row
	prefs  func(part int) []topology.NodeID

	// kindNarrow
	parent *Plan
	narrow func(ctx *TaskContext, rows []Row) []Row

	// kindUnion
	parents []*Plan

	// kindShuffled
	dep *ShuffleDep

	// caching / checkpointing state lives in the engine, keyed by id.
	cache      bool
	checkpoint *checkpointSpec
}

type checkpointSpec struct {
	path   string
	encode func(Row) []byte
	decode func([]byte) Row
}

// Partitions returns the plan's partition count.
func (p *Plan) Partitions() int { return p.parts }

// ID returns the plan's engine-unique identity.
func (p *Plan) ID() int { return p.id }

// NewSource creates a leaf plan: fn computes partition `part` from scratch
// (reading a DFS file, generating synthetic data, wrapping an in-memory
// slice). prefs optionally reports preferred executor nodes per partition
// for locality scheduling; it may be nil.
func (e *Engine) NewSource(parts int, fn func(ctx *TaskContext, part int) []Row, prefs func(part int) []topology.NodeID) *Plan {
	if parts <= 0 {
		panic("core: source must have at least one partition")
	}
	if fn == nil {
		panic("core: source compute function is required")
	}
	return &Plan{id: e.nextPlanID(), kind: kindSource, parts: parts, source: fn, prefs: prefs}
}

// NewNarrow creates a one-to-one transformed plan: output partition i is
// fn applied to parent partition i. Narrow plans pipeline — they run inside
// their consumer's task with no materialization.
func (e *Engine) NewNarrow(parent *Plan, fn func(ctx *TaskContext, rows []Row) []Row) *Plan {
	if parent == nil || fn == nil {
		panic("core: narrow requires a parent and a function")
	}
	return &Plan{id: e.nextPlanID(), kind: kindNarrow, parts: parent.parts, parent: parent, narrow: fn}
}

// NewUnion concatenates plans: the result has the sum of the parents'
// partitions, in order.
func (e *Engine) NewUnion(parents ...*Plan) *Plan {
	if len(parents) == 0 {
		panic("core: union requires at least one parent")
	}
	total := 0
	for _, p := range parents {
		total += p.parts
	}
	return &Plan{id: e.nextPlanID(), kind: kindUnion, parts: total, parents: parents}
}

// NewShuffled creates a shuffle boundary over parent with the given
// dependency description.
func (e *Engine) NewShuffled(parent *Plan, dep ShuffleDep) *Plan {
	if parent == nil {
		panic("core: shuffle requires a parent")
	}
	if dep.Partitions <= 0 || dep.KeyOf == nil || dep.ValueOf == nil || dep.Post == nil {
		panic("core: ShuffleDep requires Partitions, KeyOf, ValueOf and Post")
	}
	d := dep
	return &Plan{id: e.nextPlanID(), kind: kindShuffled, parts: dep.Partitions, parent: parent, dep: &d}
}

// Cache marks the plan's partitions for in-memory memoization: the first
// computation of each partition is retained and reused by later jobs.
func (p *Plan) Cache() *Plan {
	p.cache = true
	return p
}

// unionChild maps a union output partition to (parent, parent partition).
func (p *Plan) unionChild(part int) (*Plan, int) {
	for _, parent := range p.parents {
		if part < parent.parts {
			return parent, part
		}
		part -= parent.parts
	}
	panic("core: union partition out of range")
}
