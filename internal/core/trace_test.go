package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestEngineEmitsTaskSpans(t *testing.T) {
	e := testEngine(t, 4, Config{})
	rec := trace.New()
	e.SetTracer(rec)
	got := wordCounts(t, e, wordCountPlan(e, []string{"x y", "y z", "z z"}, 3, 2))
	if got["z"] != 3 {
		t.Fatalf("counts = %v", got)
	}
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Map stage (3 tasks) + result stage (2 tasks), one driver-side stage
	// span each, plus the job root span.
	if len(spans) != 8 {
		t.Fatalf("spans = %d, want 8", len(spans))
	}
	tracks := map[string]bool{}
	taskSpans, stageSpans, jobSpans := 0, 0, 0
	for _, s := range spans {
		switch s.Category {
		case "task":
			taskSpans++
			if s.Args["outcome"] != "ok" {
				t.Fatalf("span outcome %q", s.Args["outcome"])
			}
			if s.Args["stage"] == "" {
				t.Fatalf("task span %q missing stage arg", s.Name)
			}
			tracks[s.Track] = true
		case "stage":
			stageSpans++
			if s.Track != "driver" {
				t.Fatalf("stage span track %q", s.Track)
			}
		case "job":
			jobSpans++
			if s.Track != "driver" || s.Parent != 0 {
				t.Fatalf("job span = %+v", s)
			}
		default:
			t.Fatalf("span category %q", s.Category)
		}
	}
	if taskSpans != 5 || stageSpans != 2 || jobSpans != 1 {
		t.Fatalf("tasks=%d stages=%d jobs=%d", taskSpans, stageSpans, jobSpans)
	}
	// Every span belongs to one trace, and parent links resolve: task →
	// stage → job.
	if ids := trace.TraceIDs(spans); len(ids) != 1 {
		t.Fatalf("trace ids = %v, want exactly 1", ids)
	}
	tl := trace.BuildTimeline(spans, spans[0].Trace)
	if len(tl.Roots) != 1 || tl.Roots[0].Span.Category != "job" {
		t.Fatalf("timeline roots = %+v", tl.Roots)
	}
	for _, s := range spans {
		if s.Category == "task" {
			path := tl.PathToRoot(s.ID)
			if len(path) != 3 || path[1].Span.Category != "stage" || path[2].Span.Category != "job" {
				t.Fatalf("task %q path len=%d, want task→stage→job", s.Name, len(path))
			}
		}
	}
	if len(tracks) == 0 {
		t.Fatal("no executor tracks")
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "task p0 a0") {
		t.Fatal("export missing task names")
	}
}

func TestTracerRecordsInjectedFailures(t *testing.T) {
	e := testEngine(t, 4, Config{TaskFailProb: 0.5, Seed: 3})
	rec := trace.New()
	e.SetTracer(rec)
	if _, err := e.Collect(sliceSource(e, ints(20), 4)); err != nil {
		t.Fatal(err)
	}
	injected := 0
	for _, s := range rec.Spans() {
		if s.Args["outcome"] == "injected-failure" {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no injected-failure spans despite 50% fail probability")
	}
}

func TestTaskPanicRecordsSpanAndFailsJob(t *testing.T) {
	e := testEngine(t, 2, Config{})
	rec := trace.New()
	e.SetTracer(rec)
	p := e.NewSource(2, func(ctx *TaskContext, part int) []Row {
		if part == 1 {
			panic("boom")
		}
		return []Row{1}
	}, nil)
	_, err := e.Collect(p)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want task panic error", err)
	}
	panicked := 0
	for _, s := range rec.Spans() {
		if s.Category == "task" && strings.HasPrefix(s.Args["outcome"], "panic:") {
			panicked++
		}
	}
	if panicked != 1 {
		t.Fatalf("panicked task spans = %d, want 1", panicked)
	}
}

func TestShufflePartitionCountersRecorded(t *testing.T) {
	e := testEngine(t, 4, Config{})
	lines := []string{"a b", "b c", "c c"}
	if got := wordCounts(t, e, wordCountPlan(e, lines, 3, 2)); got["c"] != 3 {
		t.Fatalf("counts = %v", got)
	}
	snap := e.Reg.Snapshot()
	var partBytes, total int64
	parts := map[string]bool{}
	for _, s := range snap.Counters {
		if s.Name != "shuffle_partition_bytes" {
			continue
		}
		partBytes++
		total += s.Value
		for _, l := range s.Labels {
			if l.Key == "partition" {
				parts[l.Value] = true
			}
		}
	}
	if partBytes == 0 || len(parts) != 2 {
		t.Fatalf("partition byte samples = %d across partitions %v", partBytes, parts)
	}
	if raw := e.Reg.Counter("shuffle_raw_bytes").Value(); total != raw {
		t.Fatalf("per-partition bytes sum %d != shuffle_raw_bytes %d", total, raw)
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	e := testEngine(t, 2, Config{})
	if _, err := e.Collect(sliceSource(e, ints(4), 2)); err != nil {
		t.Fatal(err)
	}
	// No tracer set: nothing to assert beyond "did not panic"; now attach
	// and detach.
	rec := trace.New()
	e.SetTracer(rec)
	e.SetTracer(nil)
	if _, err := e.Collect(sliceSource(e, ints(4), 2)); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 0 {
		t.Fatalf("detached tracer recorded %d spans", rec.Len())
	}
}
