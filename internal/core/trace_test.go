package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestEngineEmitsTaskSpans(t *testing.T) {
	e := testEngine(t, 4, Config{})
	rec := trace.New()
	e.SetTracer(rec)
	got := wordCounts(t, e, wordCountPlan(e, []string{"x y", "y z", "z z"}, 3, 2))
	if got["z"] != 3 {
		t.Fatalf("counts = %v", got)
	}
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Map stage (3 tasks) + result stage (2 tasks).
	if len(spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(spans))
	}
	tracks := map[string]bool{}
	for _, s := range spans {
		if s.Category != "task" {
			t.Fatalf("span category %q", s.Category)
		}
		if s.Args["outcome"] != "ok" {
			t.Fatalf("span outcome %q", s.Args["outcome"])
		}
		tracks[s.Track] = true
	}
	if len(tracks) == 0 {
		t.Fatal("no executor tracks")
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "task p0 a0") {
		t.Fatal("export missing task names")
	}
}

func TestTracerRecordsInjectedFailures(t *testing.T) {
	e := testEngine(t, 4, Config{TaskFailProb: 0.5, Seed: 3})
	rec := trace.New()
	e.SetTracer(rec)
	if _, err := e.Collect(sliceSource(e, ints(20), 4)); err != nil {
		t.Fatal(err)
	}
	injected := 0
	for _, s := range rec.Spans() {
		if s.Args["outcome"] == "injected-failure" {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no injected-failure spans despite 50% fail probability")
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	e := testEngine(t, 2, Config{})
	if _, err := e.Collect(sliceSource(e, ints(4), 2)); err != nil {
		t.Fatal(err)
	}
	// No tracer set: nothing to assert beyond "did not panic"; now attach
	// and detach.
	rec := trace.New()
	e.SetTracer(rec)
	e.SetTracer(nil)
	if _, err := e.Collect(sliceSource(e, ints(4), 2)); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 0 {
		t.Fatalf("detached tracer recorded %d spans", rec.Len())
	}
}
