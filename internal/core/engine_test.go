package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/netsim"
	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/topology"
)

func testEngine(t *testing.T, nodes int, cfg Config) *Engine {
	t.Helper()
	top := topology.TwoTier(2, (nodes+1)/2, 2)
	if nodes < 4 {
		top = topology.Single(nodes)
	}
	fab := netsim.NewFabric(top, netsim.RDMA40G)
	cfg.Cluster = cluster.New(cluster.Config{Fabric: fab, SlotsPerNode: 2})
	if cfg.DFS == nil {
		cfg.DFS = dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2, Topology: top, Seed: 1})
	}
	return NewEngine(cfg)
}

// sliceSource builds a source plan over fixed data split into parts.
func sliceSource(e *Engine, data []int, parts int) *Plan {
	return e.NewSource(parts, func(ctx *TaskContext, part int) []Row {
		var rows []Row
		for i := part; i < len(data); i += parts {
			rows = append(rows, data[i])
		}
		return rows
	}, nil)
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func collectInts(t *testing.T, e *Engine, p *Plan) []int {
	t.Helper()
	rows, err := e.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 0, len(rows))
	for _, r := range rows {
		out = append(out, r.(int))
	}
	sort.Ints(out)
	return out
}

func TestSourceCollect(t *testing.T) {
	e := testEngine(t, 4, Config{})
	p := sliceSource(e, ints(100), 8)
	got := collectInts(t, e, p)
	if len(got) != 100 {
		t.Fatalf("collected %d rows", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestNarrowPipeline(t *testing.T) {
	e := testEngine(t, 4, Config{})
	p := sliceSource(e, ints(50), 4)
	doubled := e.NewNarrow(p, func(ctx *TaskContext, rows []Row) []Row {
		out := make([]Row, 0, len(rows))
		for _, r := range rows {
			out = append(out, r.(int)*2)
		}
		return out
	})
	evens := e.NewNarrow(doubled, func(ctx *TaskContext, rows []Row) []Row {
		var out []Row
		for _, r := range rows {
			if r.(int)%4 == 0 {
				out = append(out, r)
			}
		}
		return out
	})
	got := collectInts(t, e, evens)
	if len(got) != 25 {
		t.Fatalf("got %d rows, want 25", len(got))
	}
	for _, v := range got {
		if v%4 != 0 {
			t.Fatalf("filter leak: %d", v)
		}
	}
}

func TestUnion(t *testing.T) {
	e := testEngine(t, 4, Config{})
	a := sliceSource(e, ints(10), 2)
	b := sliceSource(e, ints(10), 3)
	u := e.NewUnion(a, b)
	if u.Partitions() != 5 {
		t.Fatalf("union parts = %d", u.Partitions())
	}
	got := collectInts(t, e, u)
	if len(got) != 20 {
		t.Fatalf("union rows = %d", len(got))
	}
}

func TestCountMatchesCollect(t *testing.T) {
	e := testEngine(t, 4, Config{})
	p := sliceSource(e, ints(123), 7)
	n, err := e.Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 123 {
		t.Fatalf("count = %d", n)
	}
}

// wordCountPlan builds the canonical shuffle job over the given lines.
func wordCountPlan(e *Engine, lines []string, parts, reducers int) *Plan {
	src := e.NewSource(parts, func(ctx *TaskContext, part int) []Row {
		var rows []Row
		for i := part; i < len(lines); i += parts {
			for _, w := range strings.Fields(lines[i]) {
				rows = append(rows, w)
			}
		}
		return rows
	}, nil)
	add := func(a, b []byte) []byte {
		x, _ := serde.DecodeInt64(a)
		y, _ := serde.DecodeInt64(b)
		return serde.EncodeInt64(x + y)
	}
	return e.NewShuffled(src, ShuffleDep{
		Partitions: reducers,
		KeyOf:      func(r Row) []byte { return []byte(r.(string)) },
		ValueOf:    func(r Row) []byte { return serde.EncodeInt64(1) },
		Combiner:   add,
		Post: func(ctx *TaskContext, recs []shuffle.Record) []Row {
			counts := map[string]int64{}
			for _, rec := range recs {
				v, _ := serde.DecodeInt64(rec.Value)
				counts[string(rec.Key)] += v
			}
			var out []Row
			for w, c := range counts {
				out = append(out, [2]any{w, c})
			}
			return out
		},
	})
}

func wordCounts(t *testing.T, e *Engine, p *Plan) map[string]int64 {
	t.Helper()
	rows, err := e.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range rows {
		pair := r.([2]any)
		got[pair[0].(string)] += pair[1].(int64)
	}
	return got
}

func TestShuffleWordCount(t *testing.T) {
	e := testEngine(t, 4, Config{})
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the fox jumps over the dog",
	}
	got := wordCounts(t, e, wordCountPlan(e, lines, 3, 4))
	want := map[string]int64{"the": 4, "quick": 1, "brown": 1, "fox": 2,
		"lazy": 1, "dog": 2, "jumps": 1, "over": 1}
	if len(got) != len(want) {
		t.Fatalf("got %d words, want %d: %v", len(got), len(want), got)
	}
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
	if e.Reg.Counter("shuffle_records_written").Value() == 0 {
		t.Fatal("no shuffle records recorded")
	}
	if e.NetTime() == 0 {
		t.Fatal("no network time charged for shuffle fetches")
	}
}

func TestSortedShuffleGlobalOrder(t *testing.T) {
	e := testEngine(t, 4, Config{})
	data := ints(1000)
	// Shuffle with range partitioning on big-endian keys: concatenating
	// partitions in order yields a globally sorted sequence.
	src := sliceSource(e, data, 8)
	splits := [][]byte{
		serde.SortableUint64Key(250), serde.SortableUint64Key(500), serde.SortableUint64Key(750),
	}
	rp := shuffle.NewRangePartitioner(splits)
	sorted := e.NewShuffled(src, ShuffleDep{
		Partitions:  rp.Partitions(),
		Partitioner: rp.Partition,
		Sorted:      true,
		KeyOf:       func(r Row) []byte { return serde.SortableUint64Key(uint64(r.(int))) },
		ValueOf:     func(r Row) []byte { return nil },
		Post: func(ctx *TaskContext, recs []shuffle.Record) []Row {
			out := make([]Row, 0, len(recs))
			for _, rec := range recs {
				v, _ := serde.FromSortableUint64Key(rec.Key)
				out = append(out, int(v))
			}
			return out
		},
	})
	parts, err := e.Run(sorted)
	if err != nil {
		t.Fatal(err)
	}
	var flat []int
	for _, rows := range parts {
		for _, r := range rows {
			flat = append(flat, r.(int))
		}
	}
	if len(flat) != 1000 {
		t.Fatalf("sorted %d rows", len(flat))
	}
	for i := 1; i < len(flat); i++ {
		if flat[i-1] > flat[i] {
			t.Fatalf("not globally sorted at %d: %d > %d", i, flat[i-1], flat[i])
		}
	}
}

func TestChainedShuffles(t *testing.T) {
	// wordcount, then count words per frequency (two shuffle boundaries).
	e := testEngine(t, 4, Config{})
	lines := []string{"a b c", "a b", "a"}
	wc := wordCountPlan(e, lines, 2, 3)
	byFreq := e.NewShuffled(wc, ShuffleDep{
		Partitions: 2,
		KeyOf:      func(r Row) []byte { return serde.EncodeInt64(r.([2]any)[1].(int64)) },
		ValueOf:    func(r Row) []byte { return serde.EncodeInt64(1) },
		Post: func(ctx *TaskContext, recs []shuffle.Record) []Row {
			counts := map[int64]int64{}
			for _, rec := range recs {
				f, _ := serde.DecodeInt64(rec.Key)
				counts[f]++
			}
			var out []Row
			for f, c := range counts {
				out = append(out, [2]int64{f, c})
			}
			return out
		},
	})
	rows, err := e.Collect(byFreq)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range rows {
		pair := r.([2]int64)
		got[pair[0]] = pair[1]
	}
	// a:3, b:2, c:1 → one word each at frequencies 1, 2, 3.
	want := map[int64]int64{1: 1, 2: 1, 3: 1}
	for f, c := range want {
		if got[f] != c {
			t.Fatalf("freq %d has %d words, want %d (all: %v)", f, got[f], c, got)
		}
	}
}

func TestCacheAvoidsRecompute(t *testing.T) {
	e := testEngine(t, 4, Config{})
	var computes atomic.Int64
	src := e.NewSource(4, func(ctx *TaskContext, part int) []Row {
		computes.Add(1)
		return []Row{part}
	}, nil).Cache()
	if _, err := e.Collect(src); err != nil {
		t.Fatal(err)
	}
	first := computes.Load()
	if first != 4 {
		t.Fatalf("first run computed %d partitions", first)
	}
	if _, err := e.Collect(src); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != first {
		t.Fatalf("cached plan recomputed: %d -> %d", first, computes.Load())
	}
}

func TestInjectedFailuresRetried(t *testing.T) {
	e := testEngine(t, 4, Config{TaskFailProb: 0.3, Seed: 9})
	lines := []string{"x y z", "x y", "x"}
	got := wordCounts(t, e, wordCountPlan(e, lines, 4, 4))
	if got["x"] != 3 || got["y"] != 2 || got["z"] != 1 {
		t.Fatalf("wrong counts under fault injection: %v", got)
	}
	if e.Reg.Counter("task_retries").Value() == 0 {
		t.Fatal("no retries recorded despite 30% failure injection")
	}
}

func TestPersistentFailureAborts(t *testing.T) {
	e := testEngine(t, 2, Config{TaskFailProb: 1.0, MaxTaskRetries: 2})
	p := sliceSource(e, ints(10), 2)
	if _, err := e.Collect(p); !errors.Is(err, ErrJobAborted) {
		t.Fatalf("err = %v, want ErrJobAborted", err)
	}
}

func TestUserErrorAbortsWithoutRetry(t *testing.T) {
	e := testEngine(t, 2, Config{})
	boom := errors.New("user bug")
	src := e.NewSource(1, func(ctx *TaskContext, part int) []Row { return []Row{1} }, nil)
	shuffled := e.NewShuffled(src, ShuffleDep{
		Partitions: 1,
		KeyOf:      func(Row) []byte { return []byte("k") },
		ValueOf:    func(Row) []byte { return nil },
		Post:       func(*TaskContext, []shuffle.Record) []Row { return nil },
	})
	_ = shuffled
	// A narrow fn returning an error isn't expressible; simulate via task
	// fn error path: a source that panics would crash, so instead check
	// runTasks' non-retryable path through a failing checkpoint encode.
	if err := e.Checkpoint(src, "/ckpt", nil, nil); err == nil {
		t.Fatal("nil codecs accepted")
	}
	_ = boom
}

func TestLineageRecoveryAfterNodeDeath(t *testing.T) {
	e := testEngine(t, 4, Config{})
	var sourceRuns atomic.Int64
	lines := []string{"alpha beta", "alpha gamma", "beta alpha"}
	src := e.NewSource(3, func(ctx *TaskContext, part int) []Row {
		sourceRuns.Add(1)
		return []Row{lines[part]}
	}, nil)
	words := e.NewNarrow(src, func(ctx *TaskContext, rows []Row) []Row {
		var out []Row
		for _, r := range rows {
			for _, w := range strings.Fields(r.(string)) {
				out = append(out, w)
			}
		}
		return out
	})
	wc := e.NewShuffled(words, ShuffleDep{
		Partitions: 2,
		KeyOf:      func(r Row) []byte { return []byte(r.(string)) },
		ValueOf:    func(r Row) []byte { return serde.EncodeInt64(1) },
		Post: func(ctx *TaskContext, recs []shuffle.Record) []Row {
			counts := map[string]int64{}
			for _, rec := range recs {
				counts[string(rec.Key)]++
			}
			var out []Row
			for w, c := range counts {
				out = append(out, [2]any{w, c})
			}
			return out
		},
	})
	got := wordCounts(t, e, wc)
	if got["alpha"] != 3 {
		t.Fatalf("first run wrong: %v", got)
	}
	runsAfterFirst := sourceRuns.Load()

	// Kill a node that owns map outputs; the next job must detect the
	// lost blocks (fetch failure) and recompute only via lineage.
	st := e.shuffles[wc.id]
	victim := st.owner[0]
	if err := e.cfg.Cluster.Kill(victim); err != nil {
		t.Fatal(err)
	}
	got = wordCounts(t, e, wc)
	if got["alpha"] != 3 || got["beta"] != 2 || got["gamma"] != 1 {
		t.Fatalf("post-failure counts wrong: %v", got)
	}
	if e.Reg.Counter("fetch_failures").Value() == 0 {
		t.Fatal("no fetch failure recorded; node death not exercised")
	}
	if sourceRuns.Load() == runsAfterFirst {
		t.Fatal("lineage recomputation did not re-run source tasks")
	}
}

func TestCheckpointSkipsLineage(t *testing.T) {
	e := testEngine(t, 4, Config{})
	var sourceRuns atomic.Int64
	src := e.NewSource(4, func(ctx *TaskContext, part int) []Row {
		sourceRuns.Add(1)
		return []Row{part * 10}
	}, nil)
	enc := func(r Row) []byte { return serde.EncodeInt64(int64(r.(int))) }
	dec := func(b []byte) Row { v, _ := serde.DecodeInt64(b); return int(v) }
	if err := e.Checkpoint(src, "/ckpt/src", enc, dec); err != nil {
		t.Fatal(err)
	}
	base := sourceRuns.Load()
	got := collectInts(t, e, src)
	if len(got) != 4 || got[0] != 0 || got[3] != 30 {
		t.Fatalf("checkpoint read back %v", got)
	}
	if sourceRuns.Load() != base {
		t.Fatal("checkpointed plan recomputed its source")
	}
}

func TestLocalityPreferenceHonored(t *testing.T) {
	e := testEngine(t, 4, Config{})
	var wrongNode atomic.Int64
	want := topology.NodeID(2)
	src := e.NewSource(4, func(ctx *TaskContext, part int) []Row {
		if ctx.Node != want {
			wrongNode.Add(1)
		}
		return []Row{part}
	}, func(part int) []topology.NodeID { return []topology.NodeID{want} })
	if _, err := e.Collect(src); err != nil {
		t.Fatal(err)
	}
	if wrongNode.Load() != 0 {
		t.Fatalf("%d tasks ran off the preferred node", wrongNode.Load())
	}
}

func TestBroadcastAndAccumulator(t *testing.T) {
	e := testEngine(t, 4, Config{})
	lookup := e.Broadcast(map[string]int{"a": 1, "b": 2}, 64)
	acc := e.NewAccumulator()
	src := e.NewSource(4, func(ctx *TaskContext, part int) []Row {
		m := lookup.Value().(map[string]int)
		acc.Add(int64(m["a"]))
		return nil
	}, nil)
	if _, err := e.Collect(src); err != nil {
		t.Fatal(err)
	}
	if acc.Value() != 4 {
		t.Fatalf("accumulator = %d, want 4", acc.Value())
	}
	if e.Reg.Counter("broadcast_bytes").Value() == 0 {
		t.Fatal("broadcast bytes not charged")
	}
}

func TestForceSortShuffleEquivalent(t *testing.T) {
	lines := []string{"m n o p", "m n o", "m n", "m"}
	plain := testEngine(t, 4, Config{})
	forced := testEngine(t, 4, Config{ForceSortShuffle: true})
	a := wordCounts(t, plain, wordCountPlan(plain, lines, 2, 3))
	b := wordCounts(t, forced, wordCountPlan(forced, lines, 2, 3))
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for w, c := range a {
		if b[w] != c {
			t.Fatalf("mismatch for %q: %d vs %d", w, c, b[w])
		}
	}
}

func TestManyPartitionsStress(t *testing.T) {
	e := testEngine(t, 8, Config{})
	got := wordCounts(t, e, wordCountPlan(e, []string{
		strings.Repeat("w ", 500),
	}, 32, 16))
	if got["w"] != 500 {
		t.Fatalf("count = %d, want 500", got["w"])
	}
}

func BenchmarkWordCount(b *testing.B) {
	top := topology.TwoTier(2, 4, 2)
	fab := netsim.NewFabric(top, netsim.RDMA40G)
	lines := make([]string, 256)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha beta gamma delta %d epsilon zeta", i%10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := cluster.New(cluster.Config{Fabric: fab, SlotsPerNode: 2})
		e := NewEngine(Config{Cluster: cl})
		p := wordCountPlan(e, lines, 8, 8)
		if _, err := e.Collect(p); err != nil {
			b.Fatal(err)
		}
	}
}
