package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/shuffle"
)

// refCountDep builds a word-count-style shuffle dep over int rows:
// key = row mod buckets, value = 1, post = "key:count" strings.
func refCountDep(parts, buckets int, sorted bool) ShuffleDep {
	return ShuffleDep{
		Partitions: parts,
		Sorted:     sorted,
		KeyOf:      func(r Row) []byte { return []byte(fmt.Sprintf("k%02d", r.(int)%buckets)) },
		ValueOf:    func(r Row) []byte { return []byte("1") },
		Post: func(ctx *TaskContext, recs []shuffle.Record) []Row {
			counts := map[string]int{}
			var order []string
			for _, rec := range recs {
				k := string(rec.Key)
				if counts[k] == 0 {
					order = append(order, k)
				}
				counts[k]++
			}
			sort.Strings(order)
			var out []Row
			for _, k := range order {
				out = append(out, k+":"+strconv.Itoa(counts[k]))
			}
			return out
		},
	}
}

func flatten(parts [][]Row) []string {
	var out []string
	for _, rows := range parts {
		for _, r := range rows {
			out = append(out, r.(string))
		}
	}
	sort.Strings(out)
	return out
}

func TestReferenceSource(t *testing.T) {
	e := testEngine(t, 4, Config{})
	p := sliceSource(e, ints(40), 4)
	ref := Reference(p)
	if len(ref) != 4 {
		t.Fatalf("partitions = %d", len(ref))
	}
	var got []int
	for _, rows := range ref {
		for _, r := range rows {
			got = append(got, r.(int))
		}
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestReferenceNarrowAndUnion(t *testing.T) {
	e := testEngine(t, 4, Config{})
	a := e.NewNarrow(sliceSource(e, ints(20), 2), func(ctx *TaskContext, rows []Row) []Row {
		out := make([]Row, len(rows))
		for i, r := range rows {
			out[i] = r.(int) * 10
		}
		return out
	})
	b := sliceSource(e, ints(5), 3)
	u := e.NewUnion(a, b)
	ref := Reference(u)
	if len(ref) != 5 {
		t.Fatalf("union partitions = %d", len(ref))
	}
	// The engine must agree partition for partition (all-narrow lineage
	// preserves order).
	got, err := e.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	for p := range ref {
		if len(got[p]) != len(ref[p]) {
			t.Fatalf("partition %d: %d vs %d rows", p, len(got[p]), len(ref[p]))
		}
		for i := range ref[p] {
			if got[p][i] != ref[p][i] {
				t.Fatalf("partition %d row %d: %v vs %v", p, i, got[p][i], ref[p][i])
			}
		}
	}
}

func TestReferenceShuffledMatchesEngine(t *testing.T) {
	for _, sorted := range []bool{false, true} {
		e := testEngine(t, 4, Config{})
		src := sliceSource(e, ints(200), 6)
		p := e.NewShuffled(src, refCountDep(4, 13, sorted))
		ref := Reference(p)
		got, err := e.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		// Post sorts keys within each partition, so the comparison is
		// exact per partition regardless of shuffle record order.
		for part := range ref {
			rs, gs := fmt.Sprint(ref[part]), fmt.Sprint(got[part])
			if rs != gs {
				t.Fatalf("sorted=%v partition %d: engine %s vs reference %s", sorted, part, gs, rs)
			}
		}
	}
}

func TestReferenceSkipsCombiner(t *testing.T) {
	// A correct (associative, commutative) combiner must not change the
	// result; the oracle evaluating without it checks that contract.
	e := testEngine(t, 4, Config{})
	dep := refCountDep(3, 7, false)
	dep.Combiner = func(a, b []byte) []byte {
		x, _ := strconv.Atoi(string(a))
		y, _ := strconv.Atoi(string(b))
		return []byte(strconv.Itoa(x + y))
	}
	// Post must understand combined values: re-sum the encoded counts.
	dep.Post = func(ctx *TaskContext, recs []shuffle.Record) []Row {
		counts := map[string]int{}
		for _, rec := range recs {
			n, _ := strconv.Atoi(string(rec.Value))
			counts[string(rec.Key)] += n
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var out []Row
		for _, k := range keys {
			out = append(out, k+":"+strconv.Itoa(counts[k]))
		}
		return out
	}
	p := e.NewShuffled(sliceSource(e, ints(100), 4), dep)
	ref := flatten(Reference(p))
	rows, err := e.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]Row, 1)
	parts[0] = rows
	got := flatten(parts)
	if len(got) != len(ref) {
		t.Fatalf("%d vs %d rows", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("row %d: %s vs %s", i, got[i], ref[i])
		}
	}
}

func TestReferenceCustomPartitionerAndMemo(t *testing.T) {
	e := testEngine(t, 4, Config{})
	// The source fn runs sequentially under Reference but concurrently
	// once the engine executes the plan, so the call count is atomic.
	var calls atomic.Int64
	src := e.NewSource(3, func(ctx *TaskContext, part int) []Row {
		calls.Add(1)
		var rows []Row
		for i := 0; i < 10; i++ {
			rows = append(rows, part*10+i)
		}
		return rows
	}, nil)
	dep := refCountDep(5, 11, true)
	dep.Partitioner = func(key []byte) int { return int(key[len(key)-1]-'0') % 5 }
	p := e.NewShuffled(src, dep)
	ref := Reference(p)
	if n := calls.Load(); n != 3 {
		t.Fatalf("map side ran %d source evaluations, want 3 (memoized per shuffle, not per reduce partition)", n)
	}
	got, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ref) != fmt.Sprint(got) {
		t.Fatalf("engine %v vs reference %v", got, ref)
	}
}
