package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dfs"
	"repro/internal/shuffle"
	"repro/internal/topology"
	"repro/internal/trace"
)

// errCoordCrashed aborts the current attempt when a chaos schedule
// kills the coordinator; the retry loop recovers from the journal.
var errCoordCrashed = errors.New("core: coordinator crashed")

// Journal persists coordinator progress records — completed map stages
// (with their plan fingerprint and output owners) and checkpoints — so
// a crashed coordinator resumes the job from the last completed stage
// instead of recomputing everything. Implemented by ha.Journal for a
// Raft-replicated log; tests use an in-memory one.
type Journal interface {
	// Append durably adds one record.
	Append(rec []byte) error
	// Replay returns every record in append order.
	Replay() ([][]byte, error)
}

// CtxJournal is optionally implemented by journals that can carry the
// causal trace context of the stage whose completion is being recorded
// — ha.Journal threads it onto the underlying Raft proposal so the
// consensus round appears in the job's cross-node timeline. Journals
// without it get plain Append.
type CtxJournal interface {
	AppendCtx(rec []byte, tc trace.TraceContext) error
}

// SetJournal attaches a progress journal after construction (the
// replicated journal and the engine are built in host-specific order).
func (e *Engine) SetJournal(j Journal) {
	e.mu.Lock()
	e.cfg.Journal = j
	e.mu.Unlock()
}

// SetDFS attaches the checkpoint filesystem after construction, for
// hosts that must build the engine before the (replicated) DFS.
func (e *Engine) SetDFS(d *dfs.DFS) {
	e.mu.Lock()
	e.cfg.DFS = d
	e.mu.Unlock()
}

func (e *Engine) journalRef() Journal {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.Journal
}

// CrashCoordinator simulates the driver process dying: all volatile
// coordinator state — the shuffle-output registry, partition caches,
// checkpoint memos — is discarded at the next recovery point, and the
// job resumes from whatever the journal and the executor-held map
// outputs preserve. The chaos coord-crash fault calls this.
func (e *Engine) CrashCoordinator() {
	e.mu.Lock()
	e.coordCrashed = true
	e.mu.Unlock()
}

func (e *Engine) coordDown() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.coordCrashed
}

// executorStore models map outputs held by executor processes: shuffle
// blocks live with the workers that produced them and survive a
// coordinator crash (the Spark executor / MapOutputTracker split). Only
// node death removes them.
type executorStore struct {
	mu     sync.Mutex
	blocks map[int][][]shuffle.Block // planID -> map partition -> blocks
}

func newExecutorStore() *executorStore {
	return &executorStore{blocks: map[int][][]shuffle.Block{}}
}

func (s *executorStore) put(planID, mapPart, parts int, blocks []shuffle.Block) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.blocks[planID]
	if !ok {
		m = make([][]shuffle.Block, parts)
		s.blocks[planID] = m
	}
	m[mapPart] = blocks
}

func (s *executorStore) get(planID, mapPart int) []shuffle.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.blocks[planID]
	if m == nil || mapPart < 0 || mapPart >= len(m) {
		return nil
	}
	return m[mapPart]
}

func (s *executorStore) drop(planID, mapPart int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.blocks[planID]; m != nil && mapPart >= 0 && mapPart < len(m) {
		m[mapPart] = nil
	}
}

// collectPlans walks p's subtree, indexing every plan by id and
// computing a structural fingerprint per plan: an FNV-1a hash over the
// DAG shape (kind, partition counts, shuffle arity and ordering, child
// fingerprints). Journal records carry the fingerprint so recovery
// never resumes a stage from a different job shape that happened to
// reuse a plan id.
func collectPlans(p *Plan, plans map[int]*Plan, fps map[int]uint64) uint64 {
	if fp, ok := fps[p.id]; ok {
		return fp
	}
	plans[p.id] = p
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(p.kind))
	mix(uint64(p.parts))
	switch p.kind {
	case kindNarrow:
		mix(collectPlans(p.parent, plans, fps))
	case kindUnion:
		for _, parent := range p.parents {
			mix(collectPlans(parent, plans, fps))
		}
	case kindShuffled:
		mix(uint64(p.dep.Partitions))
		if p.dep.Sorted {
			mix(1)
		}
		mix(collectPlans(p.parent, plans, fps))
	}
	fps[p.id] = h
	return h
}

// setJobPlans records the current job's plan index and fingerprints;
// runMapStage and recovery read them from the driver thread.
func (e *Engine) setJobPlans(p *Plan) {
	plans := map[int]*Plan{}
	fps := map[int]uint64{}
	collectPlans(p, plans, fps)
	e.mu.Lock()
	e.jobPlans = plans
	e.jobFPs = fps
	e.mu.Unlock()
}

func (e *Engine) fingerprintOf(planID int) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jobFPs[planID]
}

// journalStage appends a stage-completion record: the plan fingerprint,
// plan id, and the owner node of each map partition. Journaling is
// best-effort — a failed append (e.g. the control-plane quorum is
// briefly lost) degrades recovery, not the running job.
func (e *Engine) journalStage(p *Plan, st *shuffleState, tc trace.TraceContext) {
	j := e.journalRef()
	if j == nil {
		return
	}
	st.mu.Lock()
	owners := make([]string, len(st.owner))
	for i, o := range st.owner {
		owners[i] = strconv.Itoa(int(o))
	}
	st.mu.Unlock()
	rec := fmt.Sprintf("stage %d %d %s", e.fingerprintOf(p.id), p.id, strings.Join(owners, ","))
	var err error
	if cj, ok := j.(CtxJournal); ok && tc.Valid() {
		err = cj.AppendCtx([]byte(rec), tc)
	} else {
		err = j.Append([]byte(rec))
	}
	if err != nil {
		e.Reg.Counter("journal_append_failures").Inc()
	}
}

// journalCheckpoint appends a checkpoint-completion record.
func (e *Engine) journalCheckpoint(p *Plan) {
	j := e.journalRef()
	if j == nil {
		return
	}
	plans := map[int]*Plan{}
	fps := map[int]uint64{}
	collectPlans(p, plans, fps)
	rec := fmt.Sprintf("ckpt %d %d", fps[p.id], p.id)
	if err := j.Append([]byte(rec)); err != nil {
		e.Reg.Counter("journal_append_failures").Inc()
	}
}

// recoverCoordinator is the restarted driver coming back up: if a crash
// is pending it wipes all volatile coordinator state, then replays the
// journal and rebuilds shuffle-output metadata for every completed
// stage whose fingerprint matches the current job, whose owners are
// still alive and whose blocks the executors still hold. Such stages
// are resumed (coord_stages_resumed); journaled stages that fail
// verification are recomputed from lineage (coord_stages_restarted).
func (e *Engine) recoverCoordinator(p *Plan) {
	e.mu.Lock()
	if !e.coordCrashed {
		e.mu.Unlock()
		return
	}
	e.coordCrashed = false
	e.shuffles = map[int]*shuffleState{}
	e.caches = map[int][][]Row{}
	e.ckptDone = map[int]bool{}
	journal := e.cfg.Journal
	plans := e.jobPlans
	fps := e.jobFPs
	e.mu.Unlock()
	e.Reg.Counter("coord_crashes").Inc()
	if journal == nil {
		return
	}
	recs, err := journal.Replay()
	if err != nil {
		e.Reg.Counter("journal_replay_failures").Inc()
		return
	}
	resumed := map[int]bool{}
	restarted := map[int]bool{}
	ckpts := map[int]bool{}
	for _, rec := range recs {
		fields := strings.Fields(string(rec))
		if len(fields) < 3 {
			continue
		}
		fp, err1 := strconv.ParseUint(fields[1], 10, 64)
		planID, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			continue
		}
		pl := plans[planID]
		if pl == nil || fps[planID] != fp {
			continue // a different job's record; not ours to resume
		}
		switch fields[0] {
		case "ckpt":
			if pl.checkpoint != nil {
				ckpts[planID] = true
			}
		case "stage":
			if len(fields) != 4 || pl.kind != kindShuffled {
				continue
			}
			st, ok := e.rebuildStage(pl, fields[3])
			if ok {
				e.mu.Lock()
				e.shuffles[planID] = st
				e.mu.Unlock()
				resumed[planID] = true
				delete(restarted, planID)
			} else if !resumed[planID] {
				restarted[planID] = true
			}
		}
	}
	e.mu.Lock()
	for id := range ckpts {
		e.ckptDone[id] = true
	}
	e.mu.Unlock()
	e.Reg.Counter("coord_stages_resumed").Add(int64(len(resumed)))
	e.Reg.Counter("coord_stages_restarted").Add(int64(len(restarted)))
}

// rebuildStage reconstructs one stage's shuffle metadata from a journal
// record's owner list plus the executor-held blocks, verifying every
// owner is alive and every map partition's output is still present.
func (e *Engine) rebuildStage(p *Plan, ownerList string) (*shuffleState, bool) {
	parts := strings.Split(ownerList, ",")
	if len(parts) != p.parent.parts {
		return nil, false
	}
	st := &shuffleState{
		dep:     p.dep,
		done:    make([]bool, len(parts)),
		owner:   make([]topology.NodeID, len(parts)),
		outputs: make([][]shuffle.Block, len(parts)),
	}
	for i, s := range parts {
		o, err := strconv.Atoi(s)
		if err != nil {
			return nil, false
		}
		owner := topology.NodeID(o)
		if n, err := e.cfg.Cluster.Node(owner); err != nil || !n.Alive() {
			return nil, false
		}
		blocks := e.exec.get(p.id, i)
		if blocks == nil {
			return nil, false
		}
		st.owner[i] = owner
		st.outputs[i] = blocks
		st.done[i] = true
	}
	return st, true
}
