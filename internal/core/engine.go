package core

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Errors surfaced by the engine.
var (
	ErrNoLiveNodes = errors.New("core: no live executor nodes")
	ErrJobAborted  = errors.New("core: job aborted after exhausting retries")
	errInjected    = errors.New("core: injected task failure")
)

// fetchError reports that a reduce task could not fetch a map output
// because its owner died — the signal that triggers lineage recomputation.
type fetchError struct {
	planID  int
	mapPart int
}

func (f *fetchError) Error() string {
	return fmt.Sprintf("core: fetch failed for shuffle %d map partition %d", f.planID, f.mapPart)
}

// Config tunes the engine.
type Config struct {
	// Cluster supplies executors, topology and the network fabric; required.
	Cluster *cluster.Cluster
	// DFS is used for checkpoints; optional.
	DFS *dfs.DFS
	// Codec compresses shuffle blocks. Default compress.None.
	Codec compress.Codec
	// SpillThreshold is the shuffle writer spill level. Default 4 MiB.
	SpillThreshold int64
	// ForceSortShuffle routes even unsorted dependencies through the
	// sort-based writer (the E2 ablation knob).
	ForceSortShuffle bool
	// MaxTaskRetries bounds per-partition retry attempts. Default 4.
	MaxTaskRetries int
	// MaxStageRetries bounds whole-job recovery rounds after fetch
	// failures. Default 8.
	MaxStageRetries int
	// TaskFailProb injects transient task failures with this probability
	// (fault-tolerance experiments). Default 0.
	TaskFailProb float64
	// Seed drives fault injection.
	Seed uint64
}

// shuffleState tracks the materialized map outputs of one shuffled plan.
type shuffleState struct {
	mu      sync.Mutex
	dep     *ShuffleDep
	done    []bool
	owner   []topology.NodeID
	outputs [][]shuffle.Block // per map partition
}

// Engine executes plans. Safe for concurrent job submission, though the
// experiments drive one job at a time.
type Engine struct {
	cfg Config
	// Reg collects execution metrics: task counts, retries, shuffle bytes,
	// simulated network time (net_time_ns), fetch failures.
	Reg *metrics.Registry

	mu       sync.Mutex
	planSeq  int
	shuffles map[int]*shuffleState
	caches   map[int][][]Row
	ckptDone map[int]bool
	rand     *rng.RNG
	tracer   *trace.Recorder
}

// SetTracer attaches an execution tracer; every task records a span on
// its executor's track. Pass nil to disable.
func (e *Engine) SetTracer(r *trace.Recorder) {
	e.mu.Lock()
	e.tracer = r
	e.mu.Unlock()
}

func (e *Engine) tracerRef() *trace.Recorder {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// NewEngine builds an engine over the given cluster.
func NewEngine(cfg Config) *Engine {
	if cfg.Cluster == nil {
		panic("core: Config.Cluster is required")
	}
	if cfg.Codec == nil {
		cfg.Codec = compress.None{}
	}
	if cfg.SpillThreshold <= 0 {
		cfg.SpillThreshold = 4 << 20
	}
	if cfg.MaxTaskRetries <= 0 {
		cfg.MaxTaskRetries = 4
	}
	if cfg.MaxStageRetries <= 0 {
		cfg.MaxStageRetries = 8
	}
	return &Engine{
		cfg:      cfg,
		Reg:      metrics.NewRegistry(),
		shuffles: map[int]*shuffleState{},
		caches:   map[int][][]Row{},
		ckptDone: map[int]bool{},
		rand:     rng.New(cfg.Seed),
	}
}

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cfg.Cluster }

func (e *Engine) nextPlanID() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.planSeq++
	return e.planSeq
}

// Run computes every partition of p and returns them in order. On task or
// node failure it retries tasks and recomputes lost lineage, up to the
// configured bounds.
func (e *Engine) Run(p *Plan) ([][]Row, error) {
	var lastErr error
	for attempt := 0; attempt <= e.cfg.MaxStageRetries; attempt++ {
		if err := e.ensure(p, map[int]bool{}); err != nil {
			if e.recoverable(err) {
				lastErr = err
				continue
			}
			return nil, err
		}
		out, err := e.runResult(p)
		if err == nil {
			return out, nil
		}
		if !e.recoverable(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %v", ErrJobAborted, lastErr)
}

// Collect flattens Run's output.
func (e *Engine) Collect(p *Plan) ([]Row, error) {
	parts, err := e.Run(p)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, rows := range parts {
		out = append(out, rows...)
	}
	return out, nil
}

// Count returns the total number of rows of p.
func (e *Engine) Count(p *Plan) (int64, error) {
	parts, err := e.Run(p)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, rows := range parts {
		n += int64(len(rows))
	}
	return n, nil
}

// recoverable reports whether err warrants invalidation + retry. Fetch
// failures invalidate the lost map outputs as a side effect.
func (e *Engine) recoverable(err error) bool {
	var fe *fetchError
	if errors.As(err, &fe) {
		e.invalidateMapOutput(fe.planID, fe.mapPart)
		e.Reg.Counter("fetch_failures").Inc()
		return true
	}
	return errors.Is(err, cluster.ErrNodeDead) || errors.Is(err, errInjected)
}

func (e *Engine) invalidateMapOutput(planID, mapPart int) {
	e.mu.Lock()
	st := e.shuffles[planID]
	e.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if mapPart >= 0 && mapPart < len(st.done) {
		st.done[mapPart] = false
		st.outputs[mapPart] = nil
	}
	// Also drop every output owned by now-dead nodes; one fetch failure
	// usually means the node lost all its blocks.
	for i, owner := range st.owner {
		if st.done[i] {
			if n, err := e.cfg.Cluster.Node(owner); err == nil && !n.Alive() {
				st.done[i] = false
				st.outputs[i] = nil
			}
		}
	}
}

// ensure materializes every shuffle boundary in p's subtree.
func (e *Engine) ensure(p *Plan, visited map[int]bool) error {
	if visited[p.id] {
		return nil
	}
	visited[p.id] = true
	if e.isCheckpointed(p) || e.fullyCached(p) {
		return nil
	}
	switch p.kind {
	case kindSource:
		return nil
	case kindNarrow:
		return e.ensure(p.parent, visited)
	case kindUnion:
		for _, parent := range p.parents {
			if err := e.ensure(parent, visited); err != nil {
				return err
			}
		}
		return nil
	case kindShuffled:
		if err := e.ensure(p.parent, visited); err != nil {
			return err
		}
		return e.runMapStage(p)
	default:
		panic("core: unknown plan kind")
	}
}

func (e *Engine) isCheckpointed(p *Plan) bool {
	if p.checkpoint == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ckptDone[p.id]
}

func (e *Engine) fullyCached(p *Plan) bool {
	if !p.cache {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	parts, ok := e.caches[p.id]
	if !ok {
		return false
	}
	for _, rows := range parts {
		if rows == nil {
			return false
		}
	}
	return true
}

func (e *Engine) shuffleStateFor(p *Plan) *shuffleState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.shuffles[p.id]
	if !ok {
		n := p.parent.parts
		st = &shuffleState{
			dep:     p.dep,
			done:    make([]bool, n),
			owner:   make([]topology.NodeID, n),
			outputs: make([][]shuffle.Block, n),
		}
		e.shuffles[p.id] = st
	}
	return st
}

// runMapStage computes missing map outputs for shuffled plan p.
func (e *Engine) runMapStage(p *Plan) error {
	st := e.shuffleStateFor(p)
	st.mu.Lock()
	var pending []int
	for i, done := range st.done {
		if !done {
			pending = append(pending, i)
		}
	}
	st.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	e.Reg.Counter("stages_run").Inc()
	stage := fmt.Sprintf("map s%d", p.id)
	endStage := e.tracerRef().Begin(stage, "stage", "driver")
	shuffleID := strconv.Itoa(p.id)
	partBytes := e.Reg.CounterVec("shuffle_partition_bytes", "shuffle", "partition")
	partRecords := e.Reg.CounterVec("shuffle_partition_records", "shuffle", "partition")
	err := e.runTasks(stage, pending, e.prefsOf(p.parent), func(ctx *TaskContext) error {
		rows, err := e.computePartition(p.parent, ctx)
		if err != nil {
			return err
		}
		w, err := e.newWriter(p.dep)
		if err != nil {
			return err
		}
		dep := p.dep
		for _, row := range rows {
			if err := w.Write(dep.KeyOf(row), dep.ValueOf(row)); err != nil {
				return err
			}
		}
		blocks, stats, err := w.Close()
		if err != nil {
			return err
		}
		e.Reg.Counter("shuffle_records_written").Add(int64(stats.RecordsOut))
		e.Reg.Counter("shuffle_raw_bytes").Add(stats.RawBytes)
		e.Reg.Counter("shuffle_wire_bytes").Add(stats.WireBytes)
		e.Reg.Counter("shuffle_spills").Add(int64(stats.Spills))
		// Per-reduce-partition distribution, labeled by shuffle and
		// partition — the signal obs reads for skew analysis. Empty
		// partitions are recorded too so the partition count stays honest.
		for part, b := range stats.PartitionBytes {
			partBytes.With(shuffleID, strconv.Itoa(part)).Add(b)
		}
		for part, n := range stats.PartitionRecords {
			partRecords.With(shuffleID, strconv.Itoa(part)).Add(int64(n))
		}
		st.mu.Lock()
		st.outputs[ctx.Partition] = blocks
		st.owner[ctx.Partition] = ctx.Node
		st.done[ctx.Partition] = true
		st.mu.Unlock()
		return nil
	})
	endStage(map[string]string{"tasks": strconv.Itoa(len(pending))})
	return err
}

func (e *Engine) newWriter(dep *ShuffleDep) (shuffle.Writer, error) {
	cfg := shuffle.Config{
		Partitions:     dep.Partitions,
		Partitioner:    dep.Partitioner,
		Codec:          e.cfg.Codec,
		SpillThreshold: e.cfg.SpillThreshold,
		Combiner:       dep.Combiner,
	}
	if dep.Sorted || e.cfg.ForceSortShuffle {
		return shuffle.NewSortWriter(cfg)
	}
	return shuffle.NewHashWriter(cfg)
}

// runResult executes the final stage, returning partition rows.
func (e *Engine) runResult(p *Plan) ([][]Row, error) {
	out := make([][]Row, p.parts)
	var outMu sync.Mutex
	parts := make([]int, p.parts)
	for i := range parts {
		parts[i] = i
	}
	e.Reg.Counter("stages_run").Inc()
	stage := fmt.Sprintf("result s%d", p.id)
	endStage := e.tracerRef().Begin(stage, "stage", "driver")
	err := e.runTasks(stage, parts, e.prefsOf(p), func(ctx *TaskContext) error {
		rows, err := e.computePartition(p, ctx)
		if err != nil {
			return err
		}
		outMu.Lock()
		out[ctx.Partition] = rows
		outMu.Unlock()
		return nil
	})
	endStage(map[string]string{"tasks": strconv.Itoa(len(parts))})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// prefsOf walks narrow chains to the underlying source's locality hints.
func (e *Engine) prefsOf(p *Plan) func(part int) []topology.NodeID {
	switch p.kind {
	case kindSource:
		return p.prefs
	case kindNarrow:
		return e.prefsOf(p.parent)
	case kindUnion:
		return func(part int) []topology.NodeID {
			child, local := p.unionChild(part)
			if f := e.prefsOf(child); f != nil {
				return f(local)
			}
			return nil
		}
	default:
		return nil // reduce tasks read from everywhere
	}
}

// runTasks executes fn once per partition on the cluster, honouring
// locality preferences, retrying transient failures, and failing fast on
// fetch errors (which the caller converts into lineage recomputation).
// stage labels the spans recorded for each task; panics inside fn are
// converted into task errors with the span still recorded.
func (e *Engine) runTasks(stage string, parts []int, prefs func(int) []topology.NodeID, fn func(*TaskContext) error) error {
	attempts := map[int]int{}
	pending := append([]int(nil), parts...)
	for len(pending) > 0 {
		live := e.cfg.Cluster.LiveNodes()
		if len(live) == 0 {
			return ErrNoLiveNodes
		}
		liveSet := map[topology.NodeID]bool{}
		for _, n := range live {
			liveSet[n] = true
		}
		type result struct {
			part int
			err  error
		}
		futures := make([]*cluster.Future, len(pending))
		ctxs := make([]*TaskContext, len(pending))
		for i, part := range pending {
			node := live[part%len(live)]
			if prefs != nil {
				for _, pref := range prefs(part) {
					if liveSet[pref] {
						node = pref
						break
					}
				}
			}
			ctx := &TaskContext{Node: node, Partition: part, Attempt: attempts[part]}
			ctxs[i] = ctx
			e.Reg.Counter("tasks_launched").Inc()
			injected := e.injectFailure()
			start := time.Now()
			tracer := e.tracerRef()
			futures[i] = e.cfg.Cluster.Submit(node, func() (err error) {
				end := tracer.Begin(
					fmt.Sprintf("task p%d a%d", ctx.Partition, ctx.Attempt),
					"task", fmt.Sprintf("node-%02d", node))
				defer func() {
					e.Reg.Histogram("task_duration_ns").ObserveDuration(time.Since(start))
					if p := recover(); p != nil {
						// end is idempotent, so the span is recorded even
						// when fn panicked mid-task.
						end(map[string]string{"outcome": fmt.Sprintf("panic: %v", p), "stage": stage})
						err = fmt.Errorf("core: task panicked: %v", p)
					}
				}()
				if injected {
					end(map[string]string{"outcome": "injected-failure", "stage": stage})
					return errInjected
				}
				err = fn(ctx)
				outcome := "ok"
				if err != nil {
					outcome = err.Error()
				}
				end(map[string]string{"outcome": outcome, "stage": stage})
				return err
			})
		}
		var failed []int
		var fetchErr *fetchError
		for i, fut := range futures {
			err := fut.Wait()
			if err == nil {
				continue
			}
			var fe *fetchError
			if errors.As(err, &fe) {
				fetchErr = fe
				continue
			}
			if errors.Is(err, cluster.ErrNodeDead) || errors.Is(err, errInjected) {
				part := pending[i]
				attempts[part]++
				e.Reg.Counter("task_retries").Inc()
				if attempts[part] > e.cfg.MaxTaskRetries {
					return fmt.Errorf("%w: partition %d failed %d times: %v",
						ErrJobAborted, part, attempts[part], err)
				}
				failed = append(failed, part)
				continue
			}
			return err // user error: abort
		}
		if fetchErr != nil {
			return fetchErr
		}
		pending = failed
	}
	return nil
}

// injectFailure decides whether the next task fails artificially.
func (e *Engine) injectFailure() bool {
	if e.cfg.TaskFailProb <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rand.Float64() < e.cfg.TaskFailProb
}

// computePartition evaluates plan partition ctx.Partition, recursing
// through narrow chains and reading shuffles/checkpoints/caches.
func (e *Engine) computePartition(p *Plan, ctx *TaskContext) ([]Row, error) {
	if rows, ok := e.cachedPartition(p, ctx.Partition); ok {
		return rows, nil
	}
	if e.isCheckpointed(p) {
		return e.readCheckpoint(p, ctx.Partition)
	}
	var rows []Row
	var err error
	switch p.kind {
	case kindSource:
		rows = p.source(ctx, ctx.Partition)
	case kindNarrow:
		parentCtx := *ctx
		rows, err = e.computePartition(p.parent, &parentCtx)
		if err != nil {
			return nil, err
		}
		rows = p.narrow(ctx, rows)
	case kindUnion:
		child, local := p.unionChild(ctx.Partition)
		childCtx := *ctx
		childCtx.Partition = local
		rows, err = e.computePartition(child, &childCtx)
		if err != nil {
			return nil, err
		}
	case kindShuffled:
		rows, err = e.readShuffle(p, ctx)
		if err != nil {
			return nil, err
		}
	}
	e.storeCache(p, ctx.Partition, rows)
	return rows, nil
}

func (e *Engine) cachedPartition(p *Plan, part int) ([]Row, bool) {
	if !p.cache {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	parts, ok := e.caches[p.id]
	if !ok || parts[part] == nil {
		return nil, false
	}
	return parts[part], true
}

func (e *Engine) storeCache(p *Plan, part int, rows []Row) {
	if !p.cache {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	parts, ok := e.caches[p.id]
	if !ok {
		parts = make([][]Row, p.parts)
		e.caches[p.id] = parts
	}
	if rows == nil {
		rows = []Row{} // distinguish "cached empty" from "not cached"
	}
	parts[part] = rows
}

// readShuffle fetches and decodes one reduce partition of shuffled plan p.
func (e *Engine) readShuffle(p *Plan, ctx *TaskContext) ([]Row, error) {
	st := e.shuffleStateFor(p)
	var blocks []shuffle.Block
	fabric := e.cfg.Cluster.Fabric()
	st.mu.Lock()
	for mapPart := range st.outputs {
		if !st.done[mapPart] {
			st.mu.Unlock()
			return nil, &fetchError{planID: p.id, mapPart: mapPart}
		}
		owner := st.owner[mapPart]
		if n, err := e.cfg.Cluster.Node(owner); err == nil && !n.Alive() {
			st.mu.Unlock()
			return nil, &fetchError{planID: p.id, mapPart: mapPart}
		}
		for _, b := range st.outputs[mapPart] {
			if b.Partition != ctx.Partition {
				continue
			}
			blocks = append(blocks, b)
			cost := fabric.Cost(owner, ctx.Node, int64(len(b.Data)))
			e.Reg.Counter("net_time_ns").Add(int64(cost))
			e.Reg.Counter("shuffle_bytes_fetched").Add(int64(len(b.Data)))
		}
	}
	st.mu.Unlock()
	recs, err := shuffle.ReadBlocks(e.cfg.Codec, blocks)
	if err != nil {
		return nil, err
	}
	return p.dep.Post(ctx, recs), nil
}

// Checkpoint materializes p's partitions to the engine's DFS at path. After
// a successful checkpoint, recovery reads the files instead of recomputing
// lineage. enc/dec serialize rows.
func (e *Engine) Checkpoint(p *Plan, path string, enc func(Row) []byte, dec func([]byte) Row) error {
	if e.cfg.DFS == nil {
		return errors.New("core: engine has no DFS configured for checkpoints")
	}
	if enc == nil || dec == nil {
		return errors.New("core: Checkpoint requires enc and dec")
	}
	parts, err := e.Run(p)
	if err != nil {
		return err
	}
	for i, rows := range parts {
		w, err := e.cfg.DFS.Create(checkpointFile(path, i))
		if err != nil {
			return err
		}
		sw := serde.NewWriter(w)
		for _, row := range rows {
			if err := sw.Write(nil, enc(row)); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	p.checkpoint = &checkpointSpec{path: path, encode: enc, decode: dec}
	e.mu.Lock()
	e.ckptDone[p.id] = true
	e.mu.Unlock()
	e.Reg.Counter("checkpoints_written").Inc()
	return nil
}

func checkpointFile(path string, part int) string {
	return fmt.Sprintf("%s/part-%05d", path, part)
}

func (e *Engine) readCheckpoint(p *Plan, part int) ([]Row, error) {
	r, err := e.cfg.DFS.Open(checkpointFile(p.checkpoint.path, part), -1)
	if err != nil {
		return nil, err
	}
	sr := serde.NewReader(r)
	var rows []Row
	for {
		rec, err := sr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, p.checkpoint.decode(rec.Value))
	}
}

// Broadcast registers a read-only value shared by all tasks, charging the
// fabric for shipping `size` bytes to every other node (a tree broadcast
// would be cheaper; we model the simple one-to-all).
func (e *Engine) Broadcast(v any, size int64) *Broadcast {
	fabric := e.cfg.Cluster.Fabric()
	top := fabric.Topology()
	var total time.Duration
	for n := 1; n < top.Size(); n++ {
		total += fabric.Cost(0, topology.NodeID(n), size)
	}
	e.Reg.Counter("net_time_ns").Add(int64(total))
	e.Reg.Counter("broadcast_bytes").Add(size * int64(top.Size()-1))
	return &Broadcast{value: v}
}

// Broadcast is a handle to a cluster-wide read-only value.
type Broadcast struct {
	value any
}

// Value returns the broadcast value.
func (b *Broadcast) Value() any { return b.value }

// Accumulator is a task-side counter aggregated at the driver.
type Accumulator struct {
	c metrics.Counter
}

// NewAccumulator returns a fresh accumulator.
func (e *Engine) NewAccumulator() *Accumulator { return &Accumulator{} }

// Add contributes delta from a task.
func (a *Accumulator) Add(delta int64) { a.c.Add(delta) }

// Value reads the aggregated total.
func (a *Accumulator) Value() int64 { return a.c.Value() }

// NetTime returns accumulated simulated network time across all transfers
// the engine has charged to the fabric.
func (e *Engine) NetTime() time.Duration {
	return time.Duration(e.Reg.Counter("net_time_ns").Value())
}
