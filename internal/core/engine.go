package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Errors surfaced by the engine.
var (
	ErrNoLiveNodes      = errors.New("core: no live executor nodes")
	ErrJobAborted       = errors.New("core: job aborted after exhausting retries")
	ErrDeadlineExceeded = fmt.Errorf("core: job deadline exceeded: %w", admission.ErrDeadline)
	errInjected         = errors.New("core: injected task failure")
)

// fetchError reports that a reduce task could not fetch a map output:
// either its owner died (the signal that triggers lineage recomputation)
// or a network partition currently separates the reader from the owner
// (the data is intact; the retry loop waits for a heal).
type fetchError struct {
	planID      int
	mapPart     int
	unreachable bool
}

func (f *fetchError) Error() string {
	if f.unreachable {
		return fmt.Sprintf("core: shuffle %d map partition %d unreachable across network partition", f.planID, f.mapPart)
	}
	return fmt.Sprintf("core: fetch failed for shuffle %d map partition %d", f.planID, f.mapPart)
}

// ChaosTicker is the hook the chaos controller plugs into: the engine
// advances fault-schedule virtual time once per job attempt and once per
// scheduling wave, always from the driver thread, which keeps chaos runs
// reproducible. Satisfied by *chaos.Controller.
type ChaosTicker interface{ Tick() }

// NodeBreaker is a per-node circuit breaker the engine consults at task
// placement, composing with the three-strike quarantine as a faster
// inner layer: the breaker reacts to consecutive failures within a wave
// and recovers through half-open probes, while quarantine is the slower
// wave-count sentence for repeat offenders. Both observe the same task
// outcome stream. Tick is called once per scheduling wave from the
// driver thread. Satisfied by *admission.BreakerSet.
type NodeBreaker interface {
	Allow(topology.NodeID) bool
	ReportSuccess(topology.NodeID)
	ReportFailure(topology.NodeID)
	Tick()
}

// Config tunes the engine.
type Config struct {
	// Cluster supplies executors, topology and the network fabric; required.
	Cluster *cluster.Cluster
	// DFS is used for checkpoints; optional.
	DFS *dfs.DFS
	// Codec compresses shuffle blocks. Default compress.None.
	Codec compress.Codec
	// SpillThreshold is the shuffle writer spill level. Default 4 MiB.
	SpillThreshold int64
	// ForceSortShuffle routes even unsorted dependencies through the
	// sort-based writer (the E2 ablation knob).
	ForceSortShuffle bool
	// MaxTaskRetries bounds per-partition retry attempts. Default 4.
	MaxTaskRetries int
	// MaxStageRetries bounds whole-job recovery rounds after fetch
	// failures. Default 8.
	MaxStageRetries int
	// TaskFailProb injects transient task failures with this probability
	// (fault-tolerance experiments). Default 0.
	TaskFailProb float64
	// Seed drives fault injection and retry-backoff jitter.
	Seed uint64
	// Speculation enables backup launches for straggler tasks: once half a
	// wave has finished, any task running longer than
	// max(SpeculationK×median, SpeculationMin) gets a second copy on
	// another node and the first copy to succeed wins. Default off —
	// speculative timing is inherently racy, so deterministic-replay runs
	// leave it disabled.
	Speculation bool
	// SpeculationK is the straggler multiple over the median completed
	// task duration. Default 2 (matches the obs straggler detector).
	SpeculationK float64
	// SpeculationMin is the floor below which tasks are never considered
	// stragglers. Default 5ms.
	SpeculationMin time.Duration
	// RetryBackoff is the base delay before a retry wave; it doubles per
	// attempt with seeded jitter in [0.5, 1.5). Default 1ms; negative
	// disables backoff entirely.
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the exponential growth. Default 50ms.
	MaxRetryBackoff time.Duration
	// QuarantineThreshold is how many task failures in a row a node may
	// accumulate before placement stops using it. Default 3; negative
	// disables quarantining.
	QuarantineThreshold int
	// QuarantineWaves is how many scheduling waves a quarantined node sits
	// out before being given another chance. Default 8.
	QuarantineWaves int
	// Breaker, when non-nil, is the per-node circuit breaker consulted at
	// placement alongside quarantine (see NodeBreaker). Task successes
	// and failures are reported to it; nodes it refuses are skipped
	// unless that would leave nothing to run on.
	Breaker NodeBreaker
	// JobDeadline bounds each RunCtx call; past it the job aborts cleanly
	// with ErrDeadlineExceeded. Default 0 (none).
	JobDeadline time.Duration
	// Chaos, when non-nil, has Tick called once per job attempt and once
	// per scheduling wave from the driver thread (see ChaosTicker).
	Chaos ChaosTicker
	// Journal, when non-nil, records completed stages and checkpoints so a
	// coordinator crash (CrashCoordinator) resumes instead of recomputing.
	Journal Journal
}

// shuffleState tracks the materialized map outputs of one shuffled plan.
type shuffleState struct {
	mu      sync.Mutex
	dep     *ShuffleDep
	done    []bool
	owner   []topology.NodeID
	outputs [][]shuffle.Block // per map partition
}

// Engine executes plans. Safe for concurrent job submission, though the
// experiments drive one job at a time.
type Engine struct {
	cfg Config
	// Reg collects execution metrics: task counts, retries, shuffle bytes,
	// simulated network time (net_time_ns), fetch failures.
	Reg *metrics.Registry

	mu       sync.Mutex
	planSeq  int
	shuffles map[int]*shuffleState
	caches   map[int][][]Row
	ckptDone map[int]bool
	rand     *rng.RNG
	tracer   *trace.Recorder

	// Coordinator-crash state: exec outlives a crash (executors keep their
	// map outputs); everything keyed off e.shuffles/caches/ckptDone is
	// volatile driver memory and is wiped by recoverCoordinator.
	exec         *executorStore
	coordCrashed bool
	jobPlans     map[int]*Plan
	jobFPs       map[int]uint64

	// Graceful-degradation state, all driven from the driver thread.
	wave            int64                       // scheduling-wave counter
	nodeFails       map[topology.NodeID]int     // consecutive failure strikes
	quarantinedTill map[topology.NodeID]int64   // node -> wave when released
	nodeFailProb    map[topology.NodeID]float64 // chaos per-node flakiness
}

// SetTracer attaches an execution tracer; every task records a span on
// its executor's track. Pass nil to disable.
func (e *Engine) SetTracer(r *trace.Recorder) {
	e.mu.Lock()
	e.tracer = r
	e.mu.Unlock()
}

func (e *Engine) tracerRef() *trace.Recorder {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// NewEngine builds an engine over the given cluster.
func NewEngine(cfg Config) *Engine {
	if cfg.Cluster == nil {
		panic("core: Config.Cluster is required")
	}
	if cfg.Codec == nil {
		cfg.Codec = compress.None{}
	}
	if cfg.SpillThreshold <= 0 {
		cfg.SpillThreshold = 4 << 20
	}
	if cfg.MaxTaskRetries <= 0 {
		cfg.MaxTaskRetries = 4
	}
	if cfg.MaxStageRetries <= 0 {
		cfg.MaxStageRetries = 8
	}
	if cfg.SpeculationK <= 0 {
		cfg.SpeculationK = 2
	}
	if cfg.SpeculationMin <= 0 {
		cfg.SpeculationMin = 5 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	if cfg.MaxRetryBackoff <= 0 {
		cfg.MaxRetryBackoff = 50 * time.Millisecond
	}
	if cfg.QuarantineThreshold == 0 {
		cfg.QuarantineThreshold = 3
	}
	if cfg.QuarantineWaves <= 0 {
		cfg.QuarantineWaves = 8
	}
	return &Engine{
		cfg:             cfg,
		Reg:             metrics.NewRegistry(),
		shuffles:        map[int]*shuffleState{},
		caches:          map[int][][]Row{},
		ckptDone:        map[int]bool{},
		exec:            newExecutorStore(),
		rand:            rng.New(cfg.Seed),
		nodeFails:       map[topology.NodeID]int{},
		quarantinedTill: map[topology.NodeID]int64{},
		nodeFailProb:    map[topology.NodeID]float64{},
	}
}

// SetNodeFailProb sets the transient-failure probability for tasks placed
// on one node (the chaos "flaky" event; p <= 0 clears it). The effective
// probability for a task is max(Config.TaskFailProb, its node's value).
func (e *Engine) SetNodeFailProb(n topology.NodeID, p float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p <= 0 {
		delete(e.nodeFailProb, n)
	} else {
		e.nodeFailProb[n] = p
	}
}

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cfg.Cluster }

func (e *Engine) nextPlanID() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.planSeq++
	return e.planSeq
}

// Run computes every partition of p and returns them in order. On task or
// node failure it retries tasks and recomputes lost lineage, up to the
// configured bounds.
func (e *Engine) Run(p *Plan) ([][]Row, error) {
	return e.RunCtx(context.Background(), p)
}

// RunCtx is Run bounded by a context: cancellation (or the configured
// JobDeadline) stops retries promptly and the job aborts cleanly, leaving
// the metrics registry consistent so a partial report can still be cut.
func (e *Engine) RunCtx(ctx context.Context, p *Plan) ([][]Row, error) {
	if e.cfg.JobDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.JobDeadline)
		defer cancel()
	}
	e.setJobPlans(p)
	// The job root span opens a fresh trace; stages (and through them
	// tasks, fetches, journal appends) parent under it via the context,
	// so one RunCtx = one cross-node trace id.
	endJob, jobTC := e.tracerRef().BeginCtx(
		fmt.Sprintf("job p%d", p.id), "job", "driver", trace.TraceContext{})
	out, err := e.runJob(withJobTrace(ctx, jobTC), p)
	outcome := "ok"
	if err != nil {
		outcome = err.Error()
	}
	endJob(map[string]string{"outcome": outcome})
	return out, err
}

// runJob is RunCtx's retry loop, split out so the job span cleanly
// brackets it.
func (e *Engine) runJob(ctx context.Context, p *Plan) ([][]Row, error) {
	var lastErr error
	for attempt := 0; attempt <= e.cfg.MaxStageRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, e.abortErr(err, lastErr)
		}
		e.tickChaos()
		e.recoverCoordinator(p)
		if err := e.ensure(ctx, p, map[int]bool{}); err != nil {
			if ctx.Err() != nil {
				return nil, e.abortErr(ctx.Err(), err)
			}
			if e.recoverable(err) {
				lastErr = err
				continue
			}
			return nil, err
		}
		out, err := e.runResult(ctx, p)
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, e.abortErr(ctx.Err(), err)
		}
		if !e.recoverable(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %v", ErrJobAborted, lastErr)
}

// jobTraceKey carries the running job's TraceContext through the
// context.Context already threaded into every stage runner, so causal
// linkage needs no extra plumbing through ensure's recursion.
type jobTraceKeyType struct{}

var jobTraceKey jobTraceKeyType

func withJobTrace(ctx context.Context, tc trace.TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, jobTraceKey, tc)
}

func jobTraceFrom(ctx context.Context) trace.TraceContext {
	tc, _ := ctx.Value(jobTraceKey).(trace.TraceContext)
	return tc
}

// abortErr converts a context error into the engine's abort error,
// counting deadline aborts so the partial job report shows why it ended.
func (e *Engine) abortErr(ctxErr, lastErr error) error {
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		e.Reg.Counter("jobs_deadline_aborted").Inc()
		if lastErr != nil {
			return fmt.Errorf("%w after %v (last failure: %v)", ErrDeadlineExceeded, e.cfg.JobDeadline, lastErr)
		}
		return fmt.Errorf("%w after %v", ErrDeadlineExceeded, e.cfg.JobDeadline)
	}
	return ctxErr
}

// SetChaos attaches a chaos ticker after construction. The chaos
// controller targets the engine for fault injection, so the two cannot be
// built in one shot; hosts build the engine, then the controller, then
// call SetChaos before submitting jobs.
func (e *Engine) SetChaos(t ChaosTicker) {
	e.mu.Lock()
	e.cfg.Chaos = t
	e.mu.Unlock()
}

// tickChaos advances fault-schedule virtual time; always called from the
// driver thread so chaos runs replay deterministically.
func (e *Engine) tickChaos() {
	e.mu.Lock()
	t := e.cfg.Chaos
	e.mu.Unlock()
	if t != nil {
		t.Tick()
	}
}

// Collect flattens Run's output.
func (e *Engine) Collect(p *Plan) ([]Row, error) {
	parts, err := e.Run(p)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, rows := range parts {
		out = append(out, rows...)
	}
	return out, nil
}

// Count returns the total number of rows of p.
func (e *Engine) Count(p *Plan) (int64, error) {
	parts, err := e.Run(p)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, rows := range parts {
		n += int64(len(rows))
	}
	return n, nil
}

// recoverable reports whether err warrants retry. A dead-owner fetch
// failure invalidates the lost map outputs as a side effect; a
// partition-blocked fetch leaves them intact (the data still exists — the
// retry loop just has to outlast the partition).
func (e *Engine) recoverable(err error) bool {
	var fe *fetchError
	if errors.As(err, &fe) {
		if fe.unreachable {
			return true
		}
		e.invalidateMapOutput(fe.planID, fe.mapPart)
		e.Reg.Counter("fetch_failures").Inc()
		return true
	}
	return errors.Is(err, cluster.ErrNodeDead) || errors.Is(err, errInjected) ||
		errors.Is(err, errCoordCrashed)
}

func (e *Engine) invalidateMapOutput(planID, mapPart int) {
	e.mu.Lock()
	st := e.shuffles[planID]
	e.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if mapPart >= 0 && mapPart < len(st.done) {
		st.done[mapPart] = false
		st.outputs[mapPart] = nil
		e.exec.drop(planID, mapPart)
	}
	// Also drop every output owned by now-dead nodes; one fetch failure
	// usually means the node lost all its blocks.
	for i, owner := range st.owner {
		if st.done[i] {
			if n, err := e.cfg.Cluster.Node(owner); err == nil && !n.Alive() {
				st.done[i] = false
				st.outputs[i] = nil
				e.exec.drop(planID, i)
			}
		}
	}
}

// ensure materializes every shuffle boundary in p's subtree.
func (e *Engine) ensure(ctx context.Context, p *Plan, visited map[int]bool) error {
	if visited[p.id] {
		return nil
	}
	visited[p.id] = true
	if e.isCheckpointed(p) || e.fullyCached(p) {
		return nil
	}
	switch p.kind {
	case kindSource:
		return nil
	case kindNarrow:
		return e.ensure(ctx, p.parent, visited)
	case kindUnion:
		for _, parent := range p.parents {
			if err := e.ensure(ctx, parent, visited); err != nil {
				return err
			}
		}
		return nil
	case kindShuffled:
		if err := e.ensure(ctx, p.parent, visited); err != nil {
			return err
		}
		return e.runMapStage(ctx, p)
	default:
		panic("core: unknown plan kind")
	}
}

func (e *Engine) isCheckpointed(p *Plan) bool {
	if p.checkpoint == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ckptDone[p.id]
}

func (e *Engine) fullyCached(p *Plan) bool {
	if !p.cache {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	parts, ok := e.caches[p.id]
	if !ok {
		return false
	}
	for _, rows := range parts {
		if rows == nil {
			return false
		}
	}
	return true
}

func (e *Engine) shuffleStateFor(p *Plan) *shuffleState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.shuffles[p.id]
	if !ok {
		n := p.parent.parts
		st = &shuffleState{
			dep:     p.dep,
			done:    make([]bool, n),
			owner:   make([]topology.NodeID, n),
			outputs: make([][]shuffle.Block, n),
		}
		e.shuffles[p.id] = st
	}
	return st
}

// runMapStage computes missing map outputs for shuffled plan p.
func (e *Engine) runMapStage(ctx context.Context, p *Plan) error {
	st := e.shuffleStateFor(p)
	st.mu.Lock()
	var pending []int
	for i, done := range st.done {
		if !done {
			pending = append(pending, i)
		}
	}
	st.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	e.Reg.Counter("stages_run").Inc()
	stage := fmt.Sprintf("map s%d", p.id)
	endStage, stageTC := e.tracerRef().BeginCtx(stage, "stage", "driver", jobTraceFrom(ctx))
	shuffleID := strconv.Itoa(p.id)
	partBytes := e.Reg.CounterVec("shuffle_partition_bytes", "shuffle", "partition")
	partRecords := e.Reg.CounterVec("shuffle_partition_records", "shuffle", "partition")
	err := e.runTasks(ctx, stage, stageTC, pending, e.prefsOf(p.parent), func(tc *TaskContext) error {
		rows, err := e.computePartition(p.parent, tc)
		if err != nil {
			return err
		}
		w, err := e.newWriter(p.dep)
		if err != nil {
			return err
		}
		dep := p.dep
		for _, row := range rows {
			if err := w.Write(dep.KeyOf(row), dep.ValueOf(row)); err != nil {
				return err
			}
		}
		blocks, stats, err := w.Close()
		if err != nil {
			return err
		}
		e.Reg.Counter("shuffle_records_written").Add(int64(stats.RecordsOut))
		e.Reg.Counter("shuffle_raw_bytes").Add(stats.RawBytes)
		e.Reg.Counter("shuffle_wire_bytes").Add(stats.WireBytes)
		e.Reg.Counter("shuffle_spills").Add(int64(stats.Spills))
		// Per-reduce-partition distribution, labeled by shuffle and
		// partition — the signal obs reads for skew analysis. Empty
		// partitions are recorded too so the partition count stays honest.
		for part, b := range stats.PartitionBytes {
			partBytes.With(shuffleID, strconv.Itoa(part)).Add(b)
		}
		for part, n := range stats.PartitionRecords {
			partRecords.With(shuffleID, strconv.Itoa(part)).Add(int64(n))
		}
		// The blocks live with the executor (they survive a coordinator
		// crash); st is the driver's volatile view of them.
		e.exec.put(p.id, tc.Partition, p.parent.parts, blocks)
		st.mu.Lock()
		st.outputs[tc.Partition] = blocks
		st.owner[tc.Partition] = tc.Node
		st.done[tc.Partition] = true
		st.mu.Unlock()
		return nil
	})
	endStage(map[string]string{"tasks": strconv.Itoa(len(pending))})
	if err == nil {
		e.journalStage(p, st, stageTC)
	}
	return err
}

func (e *Engine) newWriter(dep *ShuffleDep) (shuffle.Writer, error) {
	cfg := shuffle.Config{
		Partitions:     dep.Partitions,
		Partitioner:    dep.Partitioner,
		Codec:          e.cfg.Codec,
		SpillThreshold: e.cfg.SpillThreshold,
		Combiner:       dep.Combiner,
	}
	if dep.Sorted || e.cfg.ForceSortShuffle {
		return shuffle.NewSortWriter(cfg)
	}
	return shuffle.NewHashWriter(cfg)
}

// runResult executes the final stage, returning partition rows.
func (e *Engine) runResult(ctx context.Context, p *Plan) ([][]Row, error) {
	out := make([][]Row, p.parts)
	var outMu sync.Mutex
	parts := make([]int, p.parts)
	for i := range parts {
		parts[i] = i
	}
	e.Reg.Counter("stages_run").Inc()
	stage := fmt.Sprintf("result s%d", p.id)
	endStage, stageTC := e.tracerRef().BeginCtx(stage, "stage", "driver", jobTraceFrom(ctx))
	err := e.runTasks(ctx, stage, stageTC, parts, e.prefsOf(p), func(tc *TaskContext) error {
		rows, err := e.computePartition(p, tc)
		if err != nil {
			return err
		}
		outMu.Lock()
		out[tc.Partition] = rows
		outMu.Unlock()
		return nil
	})
	endStage(map[string]string{"tasks": strconv.Itoa(len(parts))})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// prefsOf walks narrow chains to the underlying source's locality hints.
func (e *Engine) prefsOf(p *Plan) func(part int) []topology.NodeID {
	switch p.kind {
	case kindSource:
		return p.prefs
	case kindNarrow:
		return e.prefsOf(p.parent)
	case kindUnion:
		return func(part int) []topology.NodeID {
			child, local := p.unionChild(part)
			if f := e.prefsOf(child); f != nil {
				return f(local)
			}
			return nil
		}
	default:
		return nil // reduce tasks read from everywhere
	}
}

// runTasks executes fn once per partition on the cluster in scheduling
// waves, honouring locality preferences, retrying transient failures with
// exponential backoff, quarantining flaky nodes, optionally launching
// speculative backups for stragglers, and failing fast on fetch errors
// (which the caller converts into lineage recomputation). stage labels
// the spans recorded for each task; panics inside fn are converted into
// task errors with the span still recorded. ctx cancellation stops the
// retry loop promptly — including mid-backoff and mid-wave.
func (e *Engine) runTasks(ctx context.Context, stage string, stageTC trace.TraceContext, parts []int, prefs func(int) []topology.NodeID, fn func(*TaskContext) error) error {
	attempts := map[int]int{}
	pending := append([]int(nil), parts...)
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.tickWave()
		if e.coordDown() {
			return errCoordCrashed
		}
		if err := e.backoff(ctx, pending, attempts); err != nil {
			return err
		}
		live := e.placementNodes()
		if len(live) == 0 {
			return ErrNoLiveNodes
		}
		failed, err := e.runWave(ctx, stage, stageTC, pending, attempts, live, prefs, fn)
		if err != nil {
			return err
		}
		pending = failed
	}
	return nil
}

// tickWave advances chaos virtual time and the wave counter, releasing
// quarantined nodes whose sentence has expired. A released node keeps
// threshold-1 strikes: one more failure re-quarantines it, while a single
// success clears it entirely ("proven healthy").
func (e *Engine) tickWave() {
	e.tickChaos()
	if e.cfg.Breaker != nil {
		e.cfg.Breaker.Tick()
	}
	e.mu.Lock()
	e.wave++
	for n, till := range e.quarantinedTill {
		if e.wave >= till {
			delete(e.quarantinedTill, n)
			e.nodeFails[n] = e.cfg.QuarantineThreshold - 1
			e.Reg.Counter("quarantine_releases").Inc()
		}
	}
	e.Reg.Gauge("quarantined_now").Set(int64(len(e.quarantinedTill)))
	e.mu.Unlock()
}

// placementNodes returns the live nodes eligible for task placement:
// quarantined and breaker-refused nodes are excluded unless that would
// leave nothing to run on (degrade gracefully, never wedge the job).
func (e *Engine) placementNodes() []topology.NodeID {
	live := e.cfg.Cluster.LiveNodes()
	breaker := e.cfg.Breaker
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.quarantinedTill) == 0 && breaker == nil {
		return live
	}
	eligible := make([]topology.NodeID, 0, len(live))
	for _, n := range live {
		if _, q := e.quarantinedTill[n]; q {
			continue
		}
		if breaker != nil && !breaker.Allow(n) {
			e.Reg.Counter("breaker_skips").Inc()
			continue
		}
		eligible = append(eligible, n)
	}
	if len(eligible) == 0 {
		return live
	}
	return eligible
}

// backoff sleeps before a retry wave: exponential in the worst pending
// attempt count, capped, with seeded jitter in [0.5, 1.5). Interruptible
// by ctx so a deadline abort never waits out a backoff.
func (e *Engine) backoff(ctx context.Context, pending []int, attempts map[int]int) error {
	if e.cfg.RetryBackoff <= 0 {
		return nil
	}
	maxAttempt := 0
	for _, part := range pending {
		if attempts[part] > maxAttempt {
			maxAttempt = attempts[part]
		}
	}
	if maxAttempt == 0 {
		return nil
	}
	d := e.cfg.RetryBackoff << (maxAttempt - 1)
	if d > e.cfg.MaxRetryBackoff || d <= 0 {
		d = e.cfg.MaxRetryBackoff
	}
	e.mu.Lock()
	jitter := 0.5 + e.rand.Float64()
	e.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	e.Reg.Counter("task_backoffs").Inc()
	e.Reg.Counter("backoff_ns_total").Add(int64(d))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// copyResult reports the outcome of one running copy (primary or
// speculative backup) of a task.
type copyResult struct {
	idx    int // index into the wave's pending slice
	backup bool
	node   topology.NodeID
	err    error
}

// taskState tracks one task across its copies within a wave.
type taskState struct {
	node           topology.NodeID // primary placement
	start          time.Time
	outstanding    int
	backupLaunched bool
	resolved       bool
	succeeded      bool
	failedNodes    []topology.NodeID
	errs           []error
}

// runWave launches one wave of tasks, monitors for stragglers when
// speculation is on, and resolves outcomes deterministically in partition
// index order once every copy has reported. It returns the partitions
// that must retry.
func (e *Engine) runWave(ctx context.Context, stage string, stageTC trace.TraceContext, pending []int, attempts map[int]int, live []topology.NodeID, prefs func(int) []topology.NodeID, fn func(*TaskContext) error) ([]int, error) {
	n := len(pending)
	liveSet := map[topology.NodeID]bool{}
	for _, nd := range live {
		liveSet[nd] = true
	}
	// Buffered for every possible copy (primary + one backup per task) so
	// abandoning the wave on ctx cancellation leaks no goroutines.
	results := make(chan copyResult, 2*n)
	states := make([]*taskState, n)

	launch := func(i int, node topology.NodeID, backup bool) {
		part := pending[i]
		tc := &TaskContext{Node: node, Partition: part, Attempt: attempts[part]}
		e.Reg.Counter("tasks_launched").Inc()
		if backup {
			e.Reg.Counter("speculative_launches").Inc()
		}
		injected := e.injectFailure(node)
		start := time.Now()
		tracer := e.tracerRef()
		fut := e.cfg.Cluster.Submit(node, func() (err error) {
			end, taskTC := tracer.BeginCtx(
				fmt.Sprintf("task p%d a%d", tc.Partition, tc.Attempt),
				"task", fmt.Sprintf("node-%02d", node), stageTC)
			tc.Trace = taskTC
			defer func() {
				e.Reg.Histogram("task_duration_ns").ObserveDuration(time.Since(start))
				if p := recover(); p != nil {
					// end is idempotent, so the span is recorded even
					// when fn panicked mid-task.
					end(map[string]string{"outcome": fmt.Sprintf("panic: %v", p), "stage": stage})
					err = fmt.Errorf("core: task panicked: %v", p)
				}
			}()
			if injected {
				end(map[string]string{"outcome": "injected-failure", "stage": stage})
				return errInjected
			}
			err = fn(tc)
			outcome := "ok"
			if err != nil {
				outcome = err.Error()
			}
			end(map[string]string{"outcome": outcome, "stage": stage})
			return err
		})
		go func() {
			results <- copyResult{idx: i, backup: backup, node: node, err: fut.Wait()}
		}()
	}

	for i, part := range pending {
		node := live[part%len(live)]
		if prefs != nil {
			for _, pref := range prefs(part) {
				if liveSet[pref] {
					node = pref
					break
				}
			}
		}
		states[i] = &taskState{node: node, start: time.Now(), outstanding: 1}
		launch(i, node, false)
	}

	var durations []time.Duration
	var specTick <-chan time.Time
	if e.cfg.Speculation {
		t := time.NewTicker(500 * time.Microsecond)
		defer t.Stop()
		specTick = t.C
	}
	unresolved := n
	for unresolved > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case r := <-results:
			st := states[r.idx]
			st.outstanding--
			if r.err == nil {
				if !st.resolved {
					st.resolved = true
					st.succeeded = true
					unresolved--
					durations = append(durations, time.Since(st.start))
					e.recordTaskSuccess(r.node)
					if st.backupLaunched {
						if r.backup {
							e.Reg.Counter("speculative_wins").Inc()
						} else {
							e.Reg.Counter("speculative_losses").Inc()
						}
					}
				}
			} else {
				st.errs = append(st.errs, r.err)
				st.failedNodes = append(st.failedNodes, r.node)
				if !st.resolved && st.outstanding == 0 {
					st.resolved = true
					unresolved--
				}
			}
		case <-specTick:
			e.speculate(states, durations, live, launch)
		}
	}

	// Deterministic end-of-wave resolution: scan tasks in index order so
	// the classification outcome never depends on channel receive order.
	var failed []int
	var fetchErr *fetchError
	for i, st := range states {
		if st.succeeded {
			continue
		}
		part := pending[i]
		for _, nd := range st.failedNodes {
			e.recordTaskFailure(nd)
		}
		retryable := false
		var taskErr error
		for _, err := range st.errs {
			var fe *fetchError
			if errors.As(err, &fe) {
				if fetchErr == nil {
					fetchErr = fe
				}
				if taskErr == nil {
					taskErr = err
				}
				continue
			}
			if errors.Is(err, cluster.ErrNodeDead) || errors.Is(err, errInjected) {
				retryable = true
				if taskErr == nil {
					taskErr = err
				}
				continue
			}
			return nil, err // user error: abort
		}
		if !retryable {
			continue // fetch errors only; surfaced below
		}
		attempts[part]++
		e.Reg.Counter("task_retries").Inc()
		if attempts[part] > e.cfg.MaxTaskRetries {
			return nil, fmt.Errorf("%w: partition %d failed %d times: %v",
				ErrJobAborted, part, attempts[part], taskErr)
		}
		failed = append(failed, part)
	}
	if fetchErr != nil {
		return nil, fetchErr
	}
	return failed, nil
}

// speculate launches one backup copy for each straggler: a task still
// running past max(SpeculationK×median, SpeculationMin) once at least
// half the wave (and at least two tasks) have finished. The backup goes
// to the next live node after the primary; whichever copy succeeds first
// wins, and the task only fails if every copy fails.
func (e *Engine) speculate(states []*taskState, durations []time.Duration, live []topology.NodeID, launch func(int, topology.NodeID, bool)) {
	done := len(durations)
	if done < 2 || done < (len(states)+1)/2 {
		return
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	threshold := time.Duration(e.cfg.SpeculationK * float64(sorted[len(sorted)/2]))
	if threshold < e.cfg.SpeculationMin {
		threshold = e.cfg.SpeculationMin
	}
	for i, st := range states {
		if st.resolved || st.backupLaunched || time.Since(st.start) < threshold {
			continue
		}
		backupNode := topology.NodeID(-1)
		primaryAt := -1
		for j, nd := range live {
			if nd == st.node {
				primaryAt = j
				break
			}
		}
		if len(live) > 1 {
			backupNode = live[(primaryAt+1)%len(live)]
		}
		if backupNode < 0 || backupNode == st.node {
			continue
		}
		st.backupLaunched = true
		st.outstanding++
		launch(i, backupNode, true)
	}
}

// recordTaskSuccess clears a node's failure strikes and closes its
// breaker.
func (e *Engine) recordTaskSuccess(n topology.NodeID) {
	if e.cfg.Breaker != nil {
		e.cfg.Breaker.ReportSuccess(n)
	}
	e.mu.Lock()
	if e.nodeFails[n] != 0 {
		e.nodeFails[n] = 0
	}
	e.mu.Unlock()
}

// recordTaskFailure adds a strike against a node; crossing the threshold
// quarantines it from placement for QuarantineWaves waves. The breaker
// sees the same failure and may trip sooner — it is the faster layer.
func (e *Engine) recordTaskFailure(n topology.NodeID) {
	if e.cfg.Breaker != nil {
		e.cfg.Breaker.ReportFailure(n)
	}
	if e.cfg.QuarantineThreshold < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, q := e.quarantinedTill[n]; q {
		return
	}
	e.nodeFails[n]++
	if e.nodeFails[n] >= e.cfg.QuarantineThreshold {
		e.quarantinedTill[n] = e.wave + int64(e.cfg.QuarantineWaves)
		e.Reg.Counter("quarantined_nodes").Inc()
	}
}

// injectFailure decides whether the next task on node fails artificially,
// at probability max(Config.TaskFailProb, the node's chaos flakiness).
// The RNG is only consumed when the probability is non-zero, so enabling
// fault injection on one node does not perturb an otherwise identical
// run's random sequence elsewhere.
func (e *Engine) injectFailure(node topology.NodeID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := e.cfg.TaskFailProb
	if np := e.nodeFailProb[node]; np > p {
		p = np
	}
	if p <= 0 {
		return false
	}
	return e.rand.Float64() < p
}

// computePartition evaluates plan partition ctx.Partition, recursing
// through narrow chains and reading shuffles/checkpoints/caches.
func (e *Engine) computePartition(p *Plan, ctx *TaskContext) ([]Row, error) {
	if rows, ok := e.cachedPartition(p, ctx.Partition); ok {
		return rows, nil
	}
	if e.isCheckpointed(p) {
		return e.readCheckpoint(p, ctx.Partition)
	}
	var rows []Row
	var err error
	switch p.kind {
	case kindSource:
		rows = p.source(ctx, ctx.Partition)
	case kindNarrow:
		parentCtx := *ctx
		rows, err = e.computePartition(p.parent, &parentCtx)
		if err != nil {
			return nil, err
		}
		rows = p.narrow(ctx, rows)
	case kindUnion:
		child, local := p.unionChild(ctx.Partition)
		childCtx := *ctx
		childCtx.Partition = local
		rows, err = e.computePartition(child, &childCtx)
		if err != nil {
			return nil, err
		}
	case kindShuffled:
		rows, err = e.readShuffle(p, ctx)
		if err != nil {
			return nil, err
		}
	}
	e.storeCache(p, ctx.Partition, rows)
	return rows, nil
}

func (e *Engine) cachedPartition(p *Plan, part int) ([]Row, bool) {
	if !p.cache {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	parts, ok := e.caches[p.id]
	if !ok || parts[part] == nil {
		return nil, false
	}
	return parts[part], true
}

func (e *Engine) storeCache(p *Plan, part int, rows []Row) {
	if !p.cache {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	parts, ok := e.caches[p.id]
	if !ok {
		parts = make([][]Row, p.parts)
		e.caches[p.id] = parts
	}
	if rows == nil {
		rows = []Row{} // distinguish "cached empty" from "not cached"
	}
	parts[part] = rows
}

// readShuffle fetches and decodes one reduce partition of shuffled plan p.
func (e *Engine) readShuffle(p *Plan, ctx *TaskContext) ([]Row, error) {
	st := e.shuffleStateFor(p)
	var blocks []shuffle.Block
	fabric := e.cfg.Cluster.Fabric()
	st.mu.Lock()
	for mapPart := range st.outputs {
		if !st.done[mapPart] {
			st.mu.Unlock()
			return nil, &fetchError{planID: p.id, mapPart: mapPart}
		}
		owner := st.owner[mapPart]
		if n, err := e.cfg.Cluster.Node(owner); err == nil && !n.Alive() {
			st.mu.Unlock()
			return nil, &fetchError{planID: p.id, mapPart: mapPart}
		}
		if !fabric.Reachable(owner, ctx.Node) {
			st.mu.Unlock()
			e.Reg.Counter("partition_blocked_fetches").Inc()
			return nil, &fetchError{planID: p.id, mapPart: mapPart, unreachable: true}
		}
		for _, b := range st.outputs[mapPart] {
			if b.Partition != ctx.Partition {
				continue
			}
			blocks = append(blocks, b)
			cost := fabric.CostCtx(owner, ctx.Node, int64(len(b.Data)), ctx.Trace,
				fmt.Sprintf("fetch s%d m%d", p.id, mapPart))
			e.Reg.Counter("net_time_ns").Add(int64(cost))
			e.Reg.Counter("shuffle_bytes_fetched").Add(int64(len(b.Data)))
		}
	}
	st.mu.Unlock()
	recs, err := shuffle.ReadBlocks(e.cfg.Codec, blocks)
	if err != nil {
		return nil, err
	}
	return p.dep.Post(ctx, recs), nil
}

// Checkpoint materializes p's partitions to the engine's DFS at path. After
// a successful checkpoint, recovery reads the files instead of recomputing
// lineage. enc/dec serialize rows.
func (e *Engine) Checkpoint(p *Plan, path string, enc func(Row) []byte, dec func([]byte) Row) error {
	if e.cfg.DFS == nil {
		return errors.New("core: engine has no DFS configured for checkpoints")
	}
	if enc == nil || dec == nil {
		return errors.New("core: Checkpoint requires enc and dec")
	}
	parts, err := e.Run(p)
	if err != nil {
		return err
	}
	for i, rows := range parts {
		w, err := e.cfg.DFS.Create(checkpointFile(path, i))
		if err != nil {
			return err
		}
		sw := serde.NewWriter(w)
		for _, row := range rows {
			if err := sw.Write(nil, enc(row)); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	p.checkpoint = &checkpointSpec{path: path, encode: enc, decode: dec}
	e.mu.Lock()
	e.ckptDone[p.id] = true
	e.mu.Unlock()
	e.Reg.Counter("checkpoints_written").Inc()
	e.journalCheckpoint(p)
	return nil
}

func checkpointFile(path string, part int) string {
	return fmt.Sprintf("%s/part-%05d", path, part)
}

func (e *Engine) readCheckpoint(p *Plan, part int) ([]Row, error) {
	r, err := e.cfg.DFS.Open(checkpointFile(p.checkpoint.path, part), -1)
	if err != nil {
		return nil, err
	}
	sr := serde.NewReader(r)
	var rows []Row
	for {
		rec, err := sr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, p.checkpoint.decode(rec.Value))
	}
}

// Broadcast registers a read-only value shared by all tasks, charging the
// fabric for shipping `size` bytes to every other node (a tree broadcast
// would be cheaper; we model the simple one-to-all).
func (e *Engine) Broadcast(v any, size int64) *Broadcast {
	fabric := e.cfg.Cluster.Fabric()
	top := fabric.Topology()
	var total time.Duration
	for n := 1; n < top.Size(); n++ {
		total += fabric.Cost(0, topology.NodeID(n), size)
	}
	e.Reg.Counter("net_time_ns").Add(int64(total))
	e.Reg.Counter("broadcast_bytes").Add(size * int64(top.Size()-1))
	return &Broadcast{value: v}
}

// Broadcast is a handle to a cluster-wide read-only value.
type Broadcast struct {
	value any
}

// Value returns the broadcast value.
func (b *Broadcast) Value() any { return b.value }

// Accumulator is a task-side counter aggregated at the driver.
type Accumulator struct {
	c metrics.Counter
}

// NewAccumulator returns a fresh accumulator.
func (e *Engine) NewAccumulator() *Accumulator { return &Accumulator{} }

// Add contributes delta from a task.
func (a *Accumulator) Add(delta int64) { a.c.Add(delta) }

// Value reads the aggregated total.
func (a *Accumulator) Value() int64 { return a.c.Value() }

// NetTime returns accumulated simulated network time across all transfers
// the engine has charged to the fabric.
func (e *Engine) NetTime() time.Duration {
	return time.Duration(e.Reg.Counter("net_time_ns").Value())
}
