package core

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/topology"
)

// memJournal is an in-process Journal for tests; production uses the
// Raft-replicated ha.Journal behind the same interface.
type memJournal struct {
	mu   sync.Mutex
	recs [][]byte
}

func (j *memJournal) Append(rec []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, append([]byte(nil), rec...))
	return nil
}

func (j *memJournal) Replay() ([][]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([][]byte, len(j.recs))
	for i, r := range j.recs {
		out[i] = append([]byte(nil), r...)
	}
	return out, nil
}

// crashAt crashes the coordinator on one specific chaos tick.
type crashAt struct {
	e    *Engine
	at   int
	tick int
}

func (c *crashAt) Tick() {
	c.tick++
	if c.tick == c.at {
		c.e.CrashCoordinator()
	}
}

// twoStagePlan builds wordcount over two shuffle boundaries: count per
// word, then re-key words by their count (a second full shuffle).
func twoStagePlan(e *Engine, lines []string) *Plan {
	counts := wordCountPlan(e, lines, 4, 3)
	return e.NewShuffled(counts, ShuffleDep{
		Partitions: 2,
		KeyOf:      func(r Row) []byte { return serde.EncodeInt64(r.([2]any)[1].(int64)) },
		ValueOf:    func(r Row) []byte { return []byte(r.([2]any)[0].(string)) },
		Post: func(ctx *TaskContext, recs []shuffle.Record) []Row {
			group := map[int64][]string{}
			for _, rec := range recs {
				c, _ := serde.DecodeInt64(rec.Key)
				group[c] = append(group[c], string(rec.Value))
			}
			var out []Row
			for c, words := range group {
				sort.Strings(words)
				out = append(out, [2]any{c, words})
			}
			return out
		},
	})
}

var journalLines = []string{
	"the quick brown fox", "jumps over the lazy dog",
	"the dog barks", "quick quick fox",
}

// runTwoStage runs the plan and flattens results into word -> count
// group for comparison across engines.
func runTwoStage(t *testing.T, e *Engine, p *Plan) map[string]int64 {
	t.Helper()
	rows, err := e.Collect(p)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	out := map[string]int64{}
	for _, r := range rows {
		pair := r.([2]any)
		for _, w := range pair[1].([]string) {
			out[w] = pair[0].(int64)
		}
	}
	return out
}

func TestCoordinatorCrashResumesFromJournal(t *testing.T) {
	// Reference run without faults.
	ref := testEngine(t, 4, Config{Seed: 7})
	want := runTwoStage(t, ref, twoStagePlan(ref, journalLines))

	e := testEngine(t, 4, Config{Seed: 7})
	e.SetJournal(&memJournal{})
	p := twoStagePlan(e, journalLines)
	// Tick 1 = attempt start, tick 2 = first map stage's wave. Crash on
	// tick 3: after stage one completed and journaled, before stage two.
	e.SetChaos(&crashAt{e: e, at: 3})
	got := runTwoStage(t, e, p)
	if len(got) != len(want) {
		t.Fatalf("result size %d, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("word %q: count group %d, want %d", w, got[w], c)
		}
	}
	if n := e.Reg.Counter("coord_crashes").Value(); n != 1 {
		t.Errorf("coord_crashes = %d, want 1", n)
	}
	if n := e.Reg.Counter("coord_stages_resumed").Value(); n != 1 {
		t.Errorf("coord_stages_resumed = %d, want 1 (first shuffle stage)", n)
	}
	if n := e.Reg.Counter("coord_stages_restarted").Value(); n != 0 {
		t.Errorf("coord_stages_restarted = %d, want 0", n)
	}
}

func TestCoordinatorCrashWithoutJournalRestartsJob(t *testing.T) {
	e := testEngine(t, 4, Config{Seed: 7})
	p := twoStagePlan(e, journalLines)
	e.SetChaos(&crashAt{e: e, at: 3})
	got := runTwoStage(t, e, p)
	if len(got) == 0 {
		t.Fatal("job produced no output after coordinator crash")
	}
	if n := e.Reg.Counter("coord_crashes").Value(); n != 1 {
		t.Errorf("coord_crashes = %d, want 1", n)
	}
	if n := e.Reg.Counter("coord_stages_resumed").Value(); n != 0 {
		t.Errorf("coord_stages_resumed = %d, want 0 without a journal", n)
	}
}

func TestCoordinatorCrashDeadOwnerRestartsStage(t *testing.T) {
	e := testEngine(t, 8, Config{Seed: 7})
	e.SetJournal(&memJournal{})
	p := twoStagePlan(e, journalLines)
	want := runTwoStage(t, e, p) // clean run, journal fully populated

	// Kill every node that owns a map output of the first shuffle stage,
	// then crash the coordinator: the journaled record fails owner
	// verification and the stage recomputes from lineage.
	firstShuffle := p.parent // the wordcount shuffle feeding the final one
	e.mu.Lock()
	st := e.shuffles[firstShuffle.id]
	e.mu.Unlock()
	killed := map[topology.NodeID]bool{}
	st.mu.Lock()
	for _, owner := range st.owner {
		killed[owner] = true
	}
	st.mu.Unlock()
	for n := range killed {
		if err := e.cfg.Cluster.Kill(n); err != nil {
			t.Fatalf("Kill(%d): %v", n, err)
		}
	}
	e.CrashCoordinator()
	got := runTwoStage(t, e, p)
	if len(got) != len(want) {
		t.Fatalf("post-recovery result size %d, want %d", len(got), len(want))
	}
	if n := e.Reg.Counter("coord_stages_restarted").Value(); n == 0 {
		t.Error("coord_stages_restarted = 0, want > 0 (owners were killed)")
	}
}

func TestJournaledStagesResumeAcrossRuns(t *testing.T) {
	e := testEngine(t, 4, Config{Seed: 7})
	e.SetJournal(&memJournal{})
	p := twoStagePlan(e, journalLines)
	want := runTwoStage(t, e, p)
	// Crash between runs: the rerun should resume both shuffle stages
	// from the journal and recompute nothing but the result stage.
	e.CrashCoordinator()
	stagesBefore := e.Reg.Counter("stages_run").Value()
	got := runTwoStage(t, e, p)
	if len(got) != len(want) {
		t.Fatalf("rerun result size %d, want %d", len(got), len(want))
	}
	if n := e.Reg.Counter("coord_stages_resumed").Value(); n != 2 {
		t.Errorf("coord_stages_resumed = %d, want 2", n)
	}
	if n := e.Reg.Counter("stages_run").Value() - stagesBefore; n != 1 {
		t.Errorf("stages_run delta = %d, want 1 (result stage only)", n)
	}
}

func TestForeignJournalRecordsIgnored(t *testing.T) {
	j := &memJournal{}
	e := testEngine(t, 4, Config{Seed: 7})
	e.SetJournal(j)
	pA := twoStagePlan(e, journalLines)
	runTwoStage(t, e, pA) // fills the journal with job A's records

	// A different job on the same engine + journal: job A's records must
	// not be mistaken for job B's stages during recovery.
	pB := sliceSource(e, ints(40), 4)
	e.CrashCoordinator()
	got := collectInts(t, e, pB)
	if len(got) != 40 {
		t.Fatalf("job B rows = %d, want 40", len(got))
	}
	if n := e.Reg.Counter("coord_stages_resumed").Value(); n != 0 {
		t.Errorf("coord_stages_resumed = %d, want 0 (job B has no journaled stages)", n)
	}
	if n := e.Reg.Counter("coord_stages_restarted").Value(); n != 0 {
		t.Errorf("coord_stages_restarted = %d, want 0 (foreign records are ignored)", n)
	}
}
