package core

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func TestFlakyNodeQuarantinedThenJobSucceeds(t *testing.T) {
	e := testEngine(t, 4, Config{})
	// Node 1 fails every task placed on it (the chaos "flaky" event).
	e.SetNodeFailProb(1, 1)
	got := collectInts(t, e, sliceSource(e, ints(200), 8))
	sort.Ints(got)
	want := ints(200)
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
	if v := e.Reg.Counter("quarantined_nodes").Value(); v < 1 {
		t.Fatalf("quarantined_nodes = %d, want >= 1", v)
	}
	if v := e.Reg.Counter("task_retries").Value(); v < 2 {
		t.Fatalf("task_retries = %d, want >= 2", v)
	}
	if v := e.Reg.Counter("task_backoffs").Value(); v < 1 {
		t.Fatalf("task_backoffs = %d, want >= 1", v)
	}
	if v := e.Reg.Counter("backoff_ns_total").Value(); v <= 0 {
		t.Fatalf("backoff_ns_total = %d, want > 0", v)
	}
}

func TestSpeculativeBackupWinsForStraggler(t *testing.T) {
	e := testEngine(t, 4, Config{
		Speculation:    true,
		SpeculationMin: 2 * time.Millisecond,
	})
	// Node 3 stalls every task by far more than the straggler threshold.
	if err := e.Cluster().SetSlowdown(3, 60*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got := collectInts(t, e, sliceSource(e, ints(400), 8))
	if len(got) != 400 {
		t.Fatalf("got %d rows, want 400", len(got))
	}
	if v := e.Reg.Counter("speculative_launches").Value(); v < 1 {
		t.Fatalf("speculative_launches = %d, want >= 1", v)
	}
	if v := e.Reg.Counter("speculative_wins").Value(); v < 1 {
		t.Fatalf("speculative_wins = %d, want >= 1", v)
	}
}

func TestJobDeadlineAbortsCleanly(t *testing.T) {
	e := testEngine(t, 4, Config{JobDeadline: 15 * time.Millisecond})
	for _, n := range e.Cluster().LiveNodes() {
		if err := e.Cluster().SetSlowdown(n, 200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	_, err := e.Run(sliceSource(e, ints(100), 8))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	// The abort must not wait out the 200ms task stalls.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("deadline abort took %v", elapsed)
	}
	if v := e.Reg.Counter("jobs_deadline_aborted").Value(); v != 1 {
		t.Fatalf("jobs_deadline_aborted = %d, want 1", v)
	}
}

func TestCallerCancelStopsRetriesPromptly(t *testing.T) {
	e := testEngine(t, 4, Config{
		TaskFailProb:    1, // every task fails: the job can only retry
		MaxTaskRetries:  1000,
		RetryBackoff:    50 * time.Millisecond,
		MaxRetryBackoff: 500 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(40*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := e.RunCtx(ctx, sliceSource(e, ints(50), 4))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// partitionTicker is a minimal ChaosTicker that partitions the fabric on
// its second tick and heals it on the sixth — long enough that at least
// one reduce wave sees blocked fetches, short enough that stage retries
// outlast it.
type partitionTicker struct {
	fab *netsim.Fabric
	n   int
}

func (p *partitionTicker) Tick() {
	p.n++
	switch p.n {
	case 2:
		p.fab.SetPartition([]topology.NodeID{0, 1}, []topology.NodeID{2, 3})
	case 6:
		p.fab.Heal()
	}
}

func TestPartitionBlocksFetchesUntilHeal(t *testing.T) {
	top := topology.Single(4)
	fab := netsim.NewFabric(top, netsim.RDMA40G)
	cl := cluster.New(cluster.Config{Fabric: fab, SlotsPerNode: 2})
	e := NewEngine(Config{Cluster: cl, Chaos: &partitionTicker{fab: fab}})
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the fox jumps over the dog",
	}
	got := wordCounts(t, e, wordCountPlan(e, lines, 4, 4))
	if got["the"] != 4 || got["fox"] != 2 {
		t.Fatalf("wrong counts after partition recovery: %v", got)
	}
	if v := e.Reg.Counter("partition_blocked_fetches").Value(); v < 1 {
		t.Fatalf("partition_blocked_fetches = %d, want >= 1", v)
	}
	// Blocked fetches must not invalidate intact map outputs.
	if v := e.Reg.Counter("fetch_failures").Value(); v != 0 {
		t.Fatalf("fetch_failures = %d, want 0 (outputs were never lost)", v)
	}
}
