package ha

import (
	"fmt"
	"testing"
)

func journalGroup(t *testing.T, cfg Config) (*Group, *Journal) {
	t.Helper()
	cfg.Machines = map[string]func() StateMachine{"job": NewJournalMachine}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	g := NewGroup(cfg)
	return g, NewJournal(g, "job")
}

func TestJournalAppendReplay(t *testing.T) {
	_, j := journalGroup(t, Config{})
	var want []string
	for i := 0; i < 5; i++ {
		rec := fmt.Sprintf("stage %d done", i)
		want = append(want, rec)
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatalf("Append(%q): %v", rec, err)
		}
	}
	got, err := j.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Replay returned %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if string(rec) != want[i] {
			t.Errorf("record %d = %q, want %q", i, rec, want[i])
		}
	}
}

func TestJournalSurvivesLeaderCrash(t *testing.T) {
	g, j := journalGroup(t, Config{})
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec %d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := g.CrashMember(-1); err != nil {
		t.Fatalf("CrashMember: %v", err)
	}
	for i := 3; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec %d", i))); err != nil {
			t.Fatalf("Append after leader crash: %v", err)
		}
	}
	got, err := j.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("Replay returned %d records, want 5", len(got))
	}
	for i, rec := range got {
		if want := fmt.Sprintf("rec %d", i); string(rec) != want {
			t.Errorf("record %d = %q, want %q", i, rec, want)
		}
	}
}

func TestJournalSnapshotRoundTrip(t *testing.T) {
	jm := &JournalMachine{}
	for i := 0; i < 4; i++ {
		jm.Apply([]byte(fmt.Sprintf("r%d", i)))
	}
	snap := jm.Snapshot()
	restored := &JournalMachine{}
	restored.Restore(snap)
	if len(restored.recs) != 4 {
		t.Fatalf("restored %d records, want 4", len(restored.recs))
	}
	for i, rec := range restored.recs {
		if want := fmt.Sprintf("r%d", i); string(rec) != want {
			t.Errorf("record %d = %q, want %q", i, rec, want)
		}
	}
}

func TestJournalCompactionKeepsHistory(t *testing.T) {
	g, j := journalGroup(t, Config{CompactEvery: 8})
	for i := 0; i < 30; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec %d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// The log has been compacted well below 30 entries; the journal
	// history must still be complete via the snapshot.
	g.mu.Lock()
	compacted := false
	for i, n := range g.nodes {
		if off, _ := n.Snapshot(); off > 0 && !g.crashed[i] {
			compacted = true
		}
	}
	g.mu.Unlock()
	if !compacted {
		t.Fatal("no member compacted its log; CompactEvery not honored")
	}
	got, err := j.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != 30 {
		t.Fatalf("Replay returned %d records, want 30", len(got))
	}
}
