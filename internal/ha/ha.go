// Package ha turns the tested Raft in internal/consensus into a usable
// replicated control plane: a Group runs one state-machine replica per
// consensus member, feeds every committed log entry through a
// deterministic Apply, snapshots replicas for log compaction and
// crash rebuild, and gives clients a Propose/Query API with leader
// discovery, retry-and-redirect and exactly-once command application
// (a sequence-numbered envelope deduplicates re-proposals that race a
// leader failover).
//
// The framework hosts two control-plane machines on one group: the DFS
// namenode metadata (package dfs) and the batch coordinator's job
// journal (package core via the Journal client) — both named machines
// multiplexed over the same command log, so a single 3-member group is
// the whole control plane. Chaos drives member crashes through
// CrashMember/ReviveMember (the nn-crash/nn-revive fault kinds) and the
// E-HA experiment reads the failover counters recorded here.
package ha

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/consensus"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// StateMachine is a deterministic state machine replicated by a Group.
// Apply must be a pure function of the machine's state and cmd (no wall
// clock, no unseeded randomness): every replica applies the same command
// sequence and must land in the same state. Snapshot serializes the full
// state; Restore replaces the state from a snapshot. Apply's return
// value is the client response, computed identically on every replica.
type StateMachine interface {
	Apply(cmd []byte) []byte
	Snapshot() []byte
	Restore(snap []byte)
}

// Config configures a replicated group.
type Config struct {
	// Members is the consensus group size. Default 3.
	Members int
	// Seed drives the members' election timers.
	Seed uint64
	// Machines maps machine names to replica factories. Every member
	// instantiates each machine once; commands are routed by name.
	// Required unless Dynamic is set.
	Machines map[string]func() StateMachine
	// Dynamic, when non-nil, is the fallback factory for machine names
	// absent from Machines: the first committed command (or restored
	// snapshot chunk) naming an unknown machine instantiates it through
	// Dynamic on every replica, at the same log position, so dynamically
	// created machines stay replica-identical without pre-registration.
	// This is what lets a sharded data plane mint per-range state
	// machines ("range-7") on demand over a fixed set of Raft groups.
	Dynamic func(name string) StateMachine
	// CompactEvery compacts a member's log (recording a state-machine
	// snapshot) whenever its live length exceeds this. Default 128.
	CompactEvery int
	// MaxOpTicks bounds how many virtual ticks one Propose or Query may
	// spend waiting out elections before giving up. Default 500.
	MaxOpTicks int
	// DisableHardening turns off the Raft liveness hardening (PreVote,
	// CheckQuorum leader leases, randomized election backoff) that groups
	// run with by default. Only the gray-failure experiments set this, to
	// measure the undefended control.
	DisableHardening bool
	// Metrics, when non-nil, receives the group's counters: ha_proposals,
	// ha_queries, ha_redirects, ha_failovers, the ha_failover_ticks
	// histogram (ticks from leader loss to the next leader), member
	// crash/restart counts and snapshot restores. Optional.
	Metrics *metrics.Registry
}

type groupMetrics struct {
	proposals     *metrics.Counter
	queries       *metrics.Counter
	redirects     *metrics.Counter
	failovers     *metrics.Counter
	failoverTicks *metrics.Histogram
	stepdowns     *metrics.Counter
	crashes       *metrics.Counter
	restarts      *metrics.Counter
	snapRestores  *metrics.Counter
}

// replica is one member's set of state machines plus the command-dedup
// session state that makes re-proposed commands apply exactly once.
type replica struct {
	machines map[string]StateMachine
	dynamic  func(name string) StateMachine // fallback factory (may be nil)
	applied  uint64                         // log index of the last applied entry
	lastSeq  uint64                         // highest command sequence applied
	lastResp []byte                         // response of lastSeq
}

// Group is a replicated-state-machine group. Safe for concurrent use:
// every operation runs under one mutex, so commands are linearized and
// virtual time advances deterministically relative to the operation
// order.
type Group struct {
	mu    sync.Mutex
	cfg   Config
	names []string // machine names, sorted (snapshot order)

	nodes   []*consensus.Node
	reps    []*replica
	crashed []bool
	part    map[int]int     // nil = fully connected
	cut     map[[2]int]bool // directed member-link cuts (gray faults)
	inbox   []consensus.Message

	// seenStepDowns mirrors the sum of member StepDowns() already counted
	// into the ha_leader_stepdowns metric.
	seenStepDowns uint64

	seq         uint64
	ticks       int64
	lastCrashed int

	// Failover accounting: once the group has had a leader, losing it
	// starts the clock; the next elected leader stops it.
	hadLeader    bool
	failingSince int64
	endFailSpan  func(map[string]string)
	tracer       *trace.Recorder

	m groupMetrics
}

// NewGroup builds a group with Members replicas of every configured
// machine and runs the boot election before returning, so the group is
// serving (and a chaos nn-crash targeting "the leader" has a real
// victim) from the first client operation. The boot election is not
// counted as a failover.
func NewGroup(cfg Config) *Group {
	if cfg.Members <= 0 {
		cfg.Members = 3
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 128
	}
	if cfg.MaxOpTicks <= 0 {
		cfg.MaxOpTicks = 500
	}
	if len(cfg.Machines) == 0 && cfg.Dynamic == nil {
		panic("ha: Config.Machines or Config.Dynamic is required")
	}
	names := make([]string, 0, len(cfg.Machines))
	for name := range cfg.Machines {
		names = append(names, name)
	}
	sort.Strings(names)
	peers := make([]int, cfg.Members)
	for i := range peers {
		peers[i] = i
	}
	g := &Group{
		cfg:          cfg,
		names:        names,
		nodes:        make([]*consensus.Node, cfg.Members),
		reps:         make([]*replica, cfg.Members),
		crashed:      make([]bool, cfg.Members),
		lastCrashed:  -1,
		failingSince: -1,
	}
	for i := 0; i < cfg.Members; i++ {
		g.nodes[i] = consensus.NewNode(consensus.Config{
			ID: i, Peers: peers, Seed: cfg.Seed,
			// Gray-failure liveness hardening is on by default: every ha
			// consumer (sharded KV, DFS namenode, coordinator journal)
			// inherits PreVote + CheckQuorum + election backoff for free.
			PreVote:     !cfg.DisableHardening,
			CheckQuorum: !cfg.DisableHardening,
		})
		g.reps[i] = g.newReplica()
	}
	if reg := cfg.Metrics; reg != nil {
		g.m = groupMetrics{
			proposals:     reg.Counter("ha_proposals"),
			queries:       reg.Counter("ha_queries"),
			redirects:     reg.Counter("ha_redirects"),
			failovers:     reg.Counter("ha_failovers"),
			failoverTicks: reg.Histogram("ha_failover_ticks"),
			stepdowns:     reg.Counter("ha_leader_stepdowns"),
			crashes:       reg.Counter("ha_member_crashes"),
			restarts:      reg.Counter("ha_member_restarts"),
			snapRestores:  reg.Counter("ha_snapshot_restores"),
		}
	}
	for t := 0; t < cfg.MaxOpTicks && g.leaderLocked() < 0; t++ {
		g.tickLocked()
	}
	return g
}

func (g *Group) newReplica() *replica {
	r := &replica{
		machines: make(map[string]StateMachine, len(g.cfg.Machines)),
		dynamic:  g.cfg.Dynamic,
	}
	for name, factory := range g.cfg.Machines {
		r.machines[name] = factory()
	}
	return r
}

// SetTracer attaches a span recorder: each failover records one span on
// the "ha" track from leader loss to the next election. Pass nil to
// disable.
func (g *Group) SetTracer(r *trace.Recorder) {
	g.mu.Lock()
	g.tracer = r
	g.mu.Unlock()
}

// Members returns the group size.
func (g *Group) Members() int { return len(g.nodes) }

// Leader returns the current leader's member id, or -1.
func (g *Group) Leader() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaderLocked()
}

// Ticks returns the virtual time the group has consumed.
func (g *Group) Ticks() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ticks
}

func (g *Group) leaderLocked() int {
	leader := -1
	var topTerm uint64
	for i, n := range g.nodes {
		if g.crashed[i] {
			continue
		}
		if n.State() == consensus.Leader && n.Term() >= topTerm {
			topTerm = n.Term()
			leader = i
		}
	}
	return leader
}

func (g *Group) blocked(from, to int) bool {
	if g.crashed[from] || g.crashed[to] {
		return true
	}
	if g.cut != nil && g.cut[[2]int{from, to}] {
		return true
	}
	if g.part == nil {
		return false
	}
	return g.part[from] != g.part[to]
}

func (g *Group) sendLocked(msgs []consensus.Message) {
	g.inbox = append(g.inbox, msgs...)
}

// tickLocked advances virtual time one unit on every live member, then
// drains the network and updates failover accounting.
func (g *Group) tickLocked() {
	g.ticks++
	for i, n := range g.nodes {
		if g.crashed[i] {
			continue
		}
		g.sendLocked(n.Tick())
	}
	g.drainLocked()
}

// drainLocked delivers message rounds until quiet, applying newly
// committed entries to the replicas after every round.
func (g *Group) drainLocked() {
	for len(g.inbox) > 0 {
		batch := g.inbox
		g.inbox = nil
		for _, m := range batch {
			if g.blocked(m.From, m.To) {
				continue
			}
			g.sendLocked(g.nodes[m.To].Step(m))
		}
		g.applyCommittedLocked()
	}
	g.trackFailoverLocked()
}

// applyCommittedLocked feeds each live member's newly committed entries
// (or an installed snapshot) into its replica, then compacts long logs.
func (g *Group) applyCommittedLocked() {
	for i, n := range g.nodes {
		if g.crashed[i] {
			continue
		}
		rep := g.reps[i]
		if off, snap := n.Snapshot(); off > rep.applied {
			// The log below off was compacted away and a snapshot
			// installed: replace the replica state wholesale.
			rep.restore(snap)
			rep.applied = off
			g.m.snapRestores.Inc()
		}
		for _, e := range n.CommittedEntries() {
			if e.Index <= rep.applied {
				continue
			}
			rep.apply(e.Data)
			rep.applied = e.Index
		}
		if n.LogLen() > g.cfg.CompactEvery {
			_ = n.Compact(rep.applied, rep.snapshot())
		}
	}
}

// trackFailoverLocked records leader-loss -> next-leader intervals and
// rolls member CheckQuorum abdications into the ha_leader_stepdowns
// counter.
func (g *Group) trackFailoverLocked() {
	var total uint64
	for _, n := range g.nodes {
		total += n.StepDowns()
	}
	if d := total - g.seenStepDowns; d > 0 {
		g.m.stepdowns.Add(int64(d))
		g.seenStepDowns = total
	}
	l := g.leaderLocked()
	if l >= 0 {
		if g.failingSince >= 0 {
			ticks := g.ticks - g.failingSince
			g.m.failovers.Inc()
			g.m.failoverTicks.Observe(ticks)
			if g.endFailSpan != nil {
				g.endFailSpan(map[string]string{
					"ticks":  strconv.FormatInt(ticks, 10),
					"leader": strconv.Itoa(l),
				})
				g.endFailSpan = nil
			}
			g.failingSince = -1
		}
		g.hadLeader = true
		return
	}
	if g.hadLeader && g.failingSince < 0 {
		g.failingSince = g.ticks
		if g.tracer != nil {
			g.endFailSpan = g.tracer.Begin("ha failover", "failover", "ha")
		}
	}
}

// responseLocked reports whether command seq has been applied by any
// live replica, returning its response. Commands are serialized under
// the group mutex, so a replica whose lastSeq matches holds the answer.
func (g *Group) responseLocked(seq uint64) ([]byte, bool) {
	for i, rep := range g.reps {
		if g.crashed[i] {
			continue
		}
		if rep.lastSeq == seq {
			return rep.lastResp, true
		}
	}
	return nil, false
}

// Propose submits one command to the named machine and blocks until it
// is committed and applied, surviving leader crashes by re-proposing
// through each newly discovered leader (the sequence envelope makes the
// retries idempotent). It returns the machine's Apply response.
//
// An error means the command did not observably commit within the tick
// budget — typically a lost quorum. The command may still commit later
// if the quorum returns; callers treat the operation's outcome as
// unknown, exactly as with a real lost client connection.
func (g *Group) Propose(machine string, payload []byte) ([]byte, error) {
	return g.ProposeCtx(machine, payload, trace.TraceContext{})
}

// ProposeCtx is Propose with causal linkage: when a tracer is attached
// and parent carries a live trace, the consensus round is recorded as a
// "propose <machine>" span on the "ha" track parented under the caller
// (e.g. the engine stage whose journal record rides this proposal), so
// control-plane commits appear in the job's cross-node timeline.
func (g *Group) ProposeCtx(machine string, payload []byte, parent trace.TraceContext) ([]byte, error) {
	g.mu.Lock()
	tr := g.tracer
	g.mu.Unlock()
	var end func(map[string]string)
	if tr != nil && parent.Valid() {
		end, _ = tr.BeginCtx("propose "+machine, "consensus", "ha", parent)
	}
	resp, err := g.propose(machine, payload)
	if end != nil {
		outcome := "committed"
		if err != nil {
			outcome = err.Error()
		}
		end(map[string]string{"outcome": outcome, "bytes": fmt.Sprintf("%d", len(payload))})
	}
	return resp, err
}

func (g *Group) propose(machine string, payload []byte) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.cfg.Machines[machine]; !ok && g.cfg.Dynamic == nil {
		return nil, fmt.Errorf("ha: unknown machine %q", machine)
	}
	g.seq++
	seq := g.seq
	cmd := encodeEnvelope(seq, machine, payload)
	proposedTo := -1
	var proposedTerm uint64
	for t := 0; t < g.cfg.MaxOpTicks; t++ {
		if resp, ok := g.responseLocked(seq); ok {
			g.m.proposals.Inc()
			return resp, nil
		}
		if l := g.leaderLocked(); l >= 0 && (proposedTo != l || proposedTerm != g.nodes[l].Term()) {
			if _, msgs, ok := g.nodes[l].Propose(cmd); ok {
				if proposedTo >= 0 && proposedTo != l {
					g.m.redirects.Inc()
				}
				proposedTo, proposedTerm = l, g.nodes[l].Term()
				g.sendLocked(msgs)
				g.drainLocked()
				continue
			}
		}
		g.tickLocked()
	}
	return nil, fmt.Errorf("ha: command %d for %q not committed within %d ticks (quorum lost?)",
		seq, machine, g.cfg.MaxOpTicks)
}

// Query runs fn against the current leader's replica of the named
// machine, waiting out an election first when there is no leader. fn
// must not retain the machine past the call (the group mutex is held).
func (g *Group) Query(machine string, fn func(StateMachine) error) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for t := 0; t < g.cfg.MaxOpTicks; t++ {
		if l := g.leaderLocked(); l >= 0 {
			sm, ok := g.reps[l].machines[machine]
			if !ok {
				if g.cfg.Dynamic == nil {
					return fmt.Errorf("ha: unknown machine %q", machine)
				}
				// A dynamic machine no command has reached yet: query a
				// fresh, unstored instance so the read sees the empty
				// state without perturbing replica snapshots.
				sm = g.cfg.Dynamic(machine)
			}
			g.m.queries.Inc()
			return fn(sm)
		}
		g.tickLocked()
	}
	return fmt.Errorf("ha: no leader for query of %q within %d ticks", machine, g.cfg.MaxOpTicks)
}

// CrashMember stops a member: it drops out of elections and replication
// and its replica's volatile state is discarded (the durable Raft log
// and compaction snapshot survive, per the consensus crash model). id <
// 0 crashes the current leader — the worst case chaos aims for — or the
// lowest live member when there is no leader.
func (g *Group) CrashMember(id int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 {
		if id = g.leaderLocked(); id < 0 {
			for i := range g.nodes {
				if !g.crashed[i] {
					id = i
					break
				}
			}
		}
	}
	if id < 0 || id >= len(g.nodes) {
		return fmt.Errorf("ha: unknown member %d", id)
	}
	if g.crashed[id] {
		return nil
	}
	g.crashed[id] = true
	g.lastCrashed = id
	// Volatile state dies with the process; ReviveMember rebuilds it
	// from the durable snapshot + log.
	g.reps[id] = nil
	g.m.crashes.Inc()
	g.trackFailoverLocked()
	return nil
}

// ReviveMember restarts a crashed member, rebuilding its state-machine
// replica from its durable compaction snapshot plus the committed tail
// of its log. id < 0 revives the most recently crashed member.
func (g *Group) ReviveMember(id int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 {
		id = g.lastCrashed
	}
	if id < 0 || id >= len(g.nodes) {
		return fmt.Errorf("ha: unknown member %d", id)
	}
	if !g.crashed[id] {
		return nil
	}
	rep := g.newReplica()
	n := g.nodes[id]
	if off, snap := n.Snapshot(); off > 0 {
		rep.restore(snap)
		rep.applied = off
	}
	for _, e := range n.CommittedSince(rep.applied) {
		rep.apply(e.Data)
		rep.applied = e.Index
	}
	g.reps[id] = rep
	g.crashed[id] = false
	g.m.restarts.Inc()
	return nil
}

// Partition splits the members into groups (members not listed are
// isolated); Heal reconnects everyone. Test and chaos hooks.
func (g *Group) Partition(groups ...[]int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.part = map[int]int{}
	next := 0
	for gi, grp := range groups {
		for _, id := range grp {
			g.part[id] = gi
		}
		next = gi + 1
	}
	for id := range g.nodes {
		if _, ok := g.part[id]; !ok {
			g.part[id] = next
			next++
		}
	}
}

// Heal removes all partitions and directed member-link cuts.
func (g *Group) Heal() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.part = nil
	g.cut = nil
}

// CutLink blocks consensus traffic in the from -> to direction only — the
// gray-failure hook mirroring consensus.Cluster.CutLink. Out-of-range
// member ids are ignored.
func (g *Group) CutLink(from, to int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if from == to || from < 0 || to < 0 || from >= len(g.nodes) || to >= len(g.nodes) {
		return
	}
	if g.cut == nil {
		g.cut = map[[2]int]bool{}
	}
	g.cut[[2]int{from, to}] = true
}

// HealLink removes a directed from -> to member-link cut.
func (g *Group) HealLink(from, to int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.cut, [2]int{from, to})
	if len(g.cut) == 0 {
		g.cut = nil
	}
}

// MaxTerm returns the highest consensus term across members — the
// gray-failure livelock telltale (unbounded growth means a partially
// isolated member keeps inflating terms).
func (g *Group) MaxTerm() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var top uint64
	for _, n := range g.nodes {
		if t := n.Term(); t > top {
			top = t
		}
	}
	return top
}

// StepDowns sums CheckQuorum leader abdications across all members.
func (g *Group) StepDowns() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var total uint64
	for _, n := range g.nodes {
		total += n.StepDowns()
	}
	return total
}

// apply decodes one committed envelope and applies it to the named
// machine, deduplicating by sequence number: a command re-proposed
// around a failover commits twice in the log but applies once.
func (r *replica) apply(cmd []byte) {
	seq, machine, payload, err := decodeEnvelope(cmd)
	if err != nil {
		// A corrupt envelope would mean the log itself is corrupt;
		// applying nothing keeps replicas consistent (they all see the
		// same bytes).
		return
	}
	if seq <= r.lastSeq {
		return
	}
	var resp []byte
	if sm := r.machine(machine); sm != nil {
		resp = sm.Apply(payload)
	}
	r.lastSeq = seq
	r.lastResp = resp
}

// machine resolves a machine name, minting it through the dynamic
// factory on first reference. Minting happens while applying a
// committed log entry (or restoring a snapshot), so every replica
// creates the same machine at the same log position.
func (r *replica) machine(name string) StateMachine {
	if sm, ok := r.machines[name]; ok {
		return sm
	}
	if r.dynamic == nil {
		return nil
	}
	sm := r.dynamic(name)
	r.machines[name] = sm
	return sm
}

// snapshot serializes the replica: dedup session state plus every
// machine's snapshot in sorted-name order.
func (r *replica) snapshot() []byte {
	names := make([]string, 0, len(r.machines))
	for name := range r.machines {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := binary.BigEndian.AppendUint64(nil, r.lastSeq)
	buf = appendBytes(buf, r.lastResp)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		buf = appendBytes(buf, []byte(name))
		buf = appendBytes(buf, r.machines[name].Snapshot())
	}
	return buf
}

// restore replaces the replica's state from a snapshot.
func (r *replica) restore(snap []byte) {
	d := &decoder{buf: snap}
	r.lastSeq = d.u64()
	r.lastResp = d.bytes()
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		name := string(d.bytes())
		smSnap := d.bytes()
		if d.err != nil {
			break
		}
		if sm := r.machine(name); sm != nil {
			sm.Restore(smSnap)
		}
	}
}

// Command envelope: sequence number, machine name, payload.

func encodeEnvelope(seq uint64, machine string, payload []byte) []byte {
	buf := binary.BigEndian.AppendUint64(nil, seq)
	buf = appendBytes(buf, []byte(machine))
	return append(buf, payload...)
}

func decodeEnvelope(cmd []byte) (seq uint64, machine string, payload []byte, err error) {
	d := &decoder{buf: cmd}
	seq = d.u64()
	machine = string(d.bytes())
	if d.err != nil {
		return 0, "", nil, d.err
	}
	return seq, machine, d.buf[d.off:], nil
}

// appendBytes appends a length-prefixed byte string.
func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// decoder reads the length-prefixed binary format; the first error
// sticks and zero values flow out, so callers check err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("ha: truncated encoding at offset %d", d.off)
	}
}
