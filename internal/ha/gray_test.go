package ha

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/metrics"
)

// waitGoroutines polls until the goroutine count returns to (or below) the
// baseline, failing the test on timeout — the leak check following the
// admission/stream race-test pattern.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d alive, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestGrayStepDownAndRecovery cuts both followers' links TOWARD the
// leader (it can still send — the one-way gray shape), and requires the
// default-hardened group to abdicate via CheckQuorum, elect a reachable
// leader, and keep committing, with the step-down visible in both the
// accessor and the ha_leader_stepdowns metric.
func TestGrayStepDownAndRecovery(t *testing.T) {
	baseline := runtime.NumGoroutine()
	reg := metrics.NewRegistry()
	g := addGroup(t, Config{Seed: 7, Metrics: reg})
	old := g.Leader()
	if old < 0 {
		t.Fatal("no boot leader")
	}
	bootTerm := g.MaxTerm()
	for i := 0; i < g.Members(); i++ {
		if i != old {
			g.CutLink(i, old)
		}
	}
	// The stale leader cannot commit; Propose must ride out the step-down
	// and land on the follower-side replacement.
	if _, err := g.Propose("add", encAdd(5)); err != nil {
		t.Fatalf("propose across gray fault: %v", err)
	}
	if l := g.Leader(); l == old || l < 0 {
		t.Fatalf("leader must move off the isolated member: old %d, now %d", old, l)
	}
	if got := g.StepDowns(); got != 1 {
		t.Fatalf("StepDowns = %d, want 1", got)
	}
	if got := reg.Counter("ha_leader_stepdowns").Value(); got != 1 {
		t.Fatalf("ha_leader_stepdowns = %d, want 1", got)
	}
	// PreVote keeps the isolated ex-leader from inflating terms: one real
	// election beyond boot, nothing unbounded.
	if got := g.MaxTerm(); got > bootTerm+2 {
		t.Fatalf("terms inflated: boot %d, now %d", bootTerm, got)
	}
	// Heal: the ex-leader rejoins as a follower without deposing anyone.
	g.Heal()
	settle(g, 50)
	if _, err := g.Propose("add", encAdd(7)); err != nil {
		t.Fatalf("propose after heal: %v", err)
	}
	var total uint64
	if err := g.Query("add", func(sm StateMachine) error {
		total = sm.(*addSM).total
		return nil
	}); err != nil {
		t.Fatalf("query after heal: %v", err)
	}
	if total != 12 {
		t.Fatalf("total = %d, want 12", total)
	}
	waitGoroutines(t, baseline)
}

// TestGrayControlStuckLeader shows the failure the hardening removes: with
// DisableHardening, an inbound-isolated leader keeps heartbeating (so the
// followers never campaign) and keeps accepting proposals it can never
// commit — the group is wedged until the fault heals.
func TestGrayControlStuckLeader(t *testing.T) {
	baseline := runtime.NumGoroutine()
	g := addGroup(t, Config{Seed: 7, DisableHardening: true, MaxOpTicks: 120})
	old := g.Leader()
	if old < 0 {
		t.Fatal("no boot leader")
	}
	for i := 0; i < g.Members(); i++ {
		if i != old {
			g.CutLink(i, old)
		}
	}
	if _, err := g.Propose("add", encAdd(5)); err == nil {
		t.Fatal("control group must wedge under an inbound-isolated leader")
	}
	if g.StepDowns() != 0 {
		t.Fatal("control group must not step down")
	}
	// Healing un-wedges it (the in-flight entry may commit late; the
	// sequence envelope keeps the retry exactly-once).
	g.Heal()
	if _, err := g.Propose("add", encAdd(7)); err != nil {
		t.Fatalf("propose after heal: %v", err)
	}
	waitGoroutines(t, baseline)
}

// TestGrayDeterministicReplay: same seed + same gray schedule must yield
// identical step-down counts, terms, and machine state.
func TestGrayDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		g := addGroup(t, Config{Seed: 11})
		old := g.Leader()
		for i := 0; i < g.Members(); i++ {
			if i != old {
				g.CutLink(i, old)
			}
		}
		resp, err := g.Propose("add", encAdd(3))
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		g.Heal()
		settle(g, 30)
		_ = resp
		return g.StepDowns(), g.MaxTerm(), g.seq
	}
	s1, t1, q1 := run()
	s2, t2, q2 := run()
	if s1 != s2 || t1 != t2 || q1 != q2 {
		t.Fatalf("replay diverged: (%d,%d,%d) vs (%d,%d,%d)", s1, t1, q1, s2, t2, q2)
	}
}
