package ha

import (
	"encoding/binary"
	"testing"

	"repro/internal/metrics"
)

// addSM is a deterministic accumulator: each command adds a u64 and the
// response is the running total. applies counts Apply calls so tests
// can assert exactly-once application under re-proposal and restart.
type addSM struct {
	total   uint64
	applies int
}

func newAddSM() StateMachine { return &addSM{} }

func (s *addSM) Apply(cmd []byte) []byte {
	s.total += binary.BigEndian.Uint64(cmd)
	s.applies++
	return binary.BigEndian.AppendUint64(nil, s.total)
}

func (s *addSM) Snapshot() []byte {
	buf := binary.BigEndian.AppendUint64(nil, s.total)
	return binary.BigEndian.AppendUint32(buf, uint32(s.applies))
}

func (s *addSM) Restore(snap []byte) {
	s.total = binary.BigEndian.Uint64(snap)
	s.applies = int(binary.BigEndian.Uint32(snap[8:]))
}

func encAdd(v uint64) []byte { return binary.BigEndian.AppendUint64(nil, v) }

func addGroup(t *testing.T, cfg Config) *Group {
	t.Helper()
	if cfg.Machines == nil {
		cfg.Machines = map[string]func() StateMachine{"add": newAddSM}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return NewGroup(cfg)
}

// settle advances virtual time so followers learn the commit index and
// apply the tail.
func settle(g *Group, ticks int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < ticks; i++ {
		g.tickLocked()
	}
}

// addState returns (total, applies) of member id's add machine.
func addState(t *testing.T, g *Group, id int) (uint64, int) {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := g.reps[id]
	if rep == nil {
		t.Fatalf("member %d has no replica (crashed?)", id)
	}
	sm := rep.machines["add"].(*addSM)
	return sm.total, sm.applies
}

func TestProposeAppliesOnAllReplicas(t *testing.T) {
	g := addGroup(t, Config{})
	var want uint64
	for v := uint64(1); v <= 5; v++ {
		want += v
		resp, err := g.Propose("add", encAdd(v))
		if err != nil {
			t.Fatalf("Propose(%d): %v", v, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != want {
			t.Fatalf("Propose(%d) resp = %d, want %d", v, got, want)
		}
	}
	settle(g, 20)
	for id := 0; id < g.Members(); id++ {
		total, applies := addState(t, g, id)
		if total != want || applies != 5 {
			t.Errorf("member %d: total=%d applies=%d, want total=%d applies=5",
				id, total, applies, want)
		}
	}
}

func TestLeaderCrashFailsOver(t *testing.T) {
	reg := metrics.NewRegistry()
	g := addGroup(t, Config{Metrics: reg})
	for v := uint64(1); v <= 3; v++ {
		if _, err := g.Propose("add", encAdd(v)); err != nil {
			t.Fatalf("Propose(%d): %v", v, err)
		}
	}
	lead := g.Leader()
	if lead < 0 {
		t.Fatal("no leader after proposals")
	}
	if err := g.CrashMember(-1); err != nil { // -1 = current leader
		t.Fatalf("CrashMember: %v", err)
	}
	for v := uint64(4); v <= 5; v++ {
		if _, err := g.Propose("add", encAdd(v)); err != nil {
			t.Fatalf("Propose(%d) after leader crash: %v", v, err)
		}
	}
	if got := g.Leader(); got < 0 || got == lead {
		t.Fatalf("leader after crash = %d, want a new live leader (crashed %d)", got, lead)
	}
	if n := reg.Counter("ha_failovers").Value(); n < 1 {
		t.Errorf("ha_failovers = %d, want >= 1", n)
	}
	if reg.Histogram("ha_failover_ticks").Count() < 1 {
		t.Error("ha_failover_ticks recorded no observations")
	}
	settle(g, 20)
	for id := 0; id < g.Members(); id++ {
		if id == lead {
			continue
		}
		total, applies := addState(t, g, id)
		if total != 15 || applies != 5 {
			t.Errorf("member %d: total=%d applies=%d, want total=15 applies=5",
				id, total, applies)
		}
	}
}

func TestReviveRebuildsFromDurableState(t *testing.T) {
	reg := metrics.NewRegistry()
	g := addGroup(t, Config{CompactEvery: 8, Metrics: reg})
	for v := 0; v < 20; v++ {
		if _, err := g.Propose("add", encAdd(1)); err != nil {
			t.Fatalf("Propose: %v", err)
		}
	}
	settle(g, 20)
	victim := (g.Leader() + 1) % g.Members() // a follower
	if err := g.CrashMember(victim); err != nil {
		t.Fatalf("CrashMember(%d): %v", victim, err)
	}
	// Enough traffic while the follower is down that the leader compacts
	// past the follower's log tail, forcing a snapshot install on rejoin.
	for v := 0; v < 20; v++ {
		if _, err := g.Propose("add", encAdd(1)); err != nil {
			t.Fatalf("Propose with member down: %v", err)
		}
	}
	if err := g.ReviveMember(-1); err != nil { // -1 = last crashed
		t.Fatalf("ReviveMember: %v", err)
	}
	settle(g, 60)
	for id := 0; id < g.Members(); id++ {
		total, applies := addState(t, g, id)
		if total != 40 || applies != 40 {
			t.Errorf("member %d: total=%d applies=%d, want total=40 applies=40",
				id, total, applies)
		}
	}
	if reg.Counter("ha_member_restarts").Value() != 1 {
		t.Errorf("ha_member_restarts = %d, want 1",
			reg.Counter("ha_member_restarts").Value())
	}
}

func TestPartitionedLeaderReproposesExactlyOnce(t *testing.T) {
	g := addGroup(t, Config{})
	if err := g.Query("add", func(StateMachine) error { return nil }); err != nil {
		t.Fatalf("initial election: %v", err)
	}
	lead := g.Leader()
	var rest []int
	for id := 0; id < g.Members(); id++ {
		if id != lead {
			rest = append(rest, id)
		}
	}
	g.Partition([]int{lead}, rest) // isolate the leader; majority elects a new one
	resp, err := g.Propose("add", encAdd(7))
	if err != nil {
		t.Fatalf("Propose during leader partition: %v", err)
	}
	if got := binary.BigEndian.Uint64(resp); got != 7 {
		t.Fatalf("resp = %d, want 7", got)
	}
	if got := g.Leader(); got == lead {
		t.Fatalf("leader still %d after partition, expected a new leader", lead)
	}
	g.Heal()
	settle(g, 40)
	for id := 0; id < g.Members(); id++ {
		total, applies := addState(t, g, id)
		if total != 7 || applies != 1 {
			t.Errorf("member %d: total=%d applies=%d, want total=7 applies=1 (dedup)",
				id, total, applies)
		}
	}
}

func TestReplicaDeduplicatesBySequence(t *testing.T) {
	g := addGroup(t, Config{})
	rep := g.newReplica()
	cmd := encodeEnvelope(1, "add", encAdd(9))
	rep.apply(cmd)
	rep.apply(cmd) // duplicate commit of the same command
	sm := rep.machines["add"].(*addSM)
	if sm.total != 9 || sm.applies != 1 {
		t.Fatalf("total=%d applies=%d after duplicate apply, want total=9 applies=1",
			sm.total, sm.applies)
	}
	if got := binary.BigEndian.Uint64(rep.lastResp); got != 9 {
		t.Fatalf("lastResp = %d, want 9", got)
	}
}

func TestMachinesAreIsolated(t *testing.T) {
	g := addGroup(t, Config{Machines: map[string]func() StateMachine{
		"a": newAddSM,
		"b": newAddSM,
	}})
	if _, err := g.Propose("a", encAdd(5)); err != nil {
		t.Fatalf("Propose(a): %v", err)
	}
	if _, err := g.Propose("b", encAdd(7)); err != nil {
		t.Fatalf("Propose(b): %v", err)
	}
	check := func(name string, want uint64) {
		t.Helper()
		err := g.Query(name, func(sm StateMachine) error {
			if got := sm.(*addSM).total; got != want {
				t.Errorf("machine %s total = %d, want %d", name, got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Query(%s): %v", name, err)
		}
	}
	check("a", 5)
	check("b", 7)
}

func TestProposeFailsWithoutQuorum(t *testing.T) {
	g := addGroup(t, Config{MaxOpTicks: 50})
	if _, err := g.Propose("add", encAdd(1)); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	lead := g.Leader()
	for id := 0; id < g.Members(); id++ {
		if id != lead {
			if err := g.CrashMember(id); err != nil {
				t.Fatalf("CrashMember(%d): %v", id, err)
			}
		}
	}
	if _, err := g.Propose("add", encAdd(2)); err == nil {
		t.Fatal("Propose with quorum lost succeeded, want error")
	}
}

func TestUnknownMachineRejected(t *testing.T) {
	g := addGroup(t, Config{})
	if _, err := g.Propose("nope", nil); err == nil {
		t.Fatal("Propose to unknown machine succeeded")
	}
	if err := g.Query("nope", func(StateMachine) error { return nil }); err == nil {
		t.Fatal("Query of unknown machine succeeded")
	}
}
