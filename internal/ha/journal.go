package ha

import (
	"encoding/binary"

	"repro/internal/trace"
)

// JournalMachine is an append-only record log as a replicated state
// machine: the batch coordinator writes job-progress records (plan
// fingerprints, completed stages, checkpoints) through it so a crashed
// coordinator can replay them and resume from the last completed stage.
type JournalMachine struct {
	recs [][]byte
}

// NewJournalMachine is a Config.Machines factory.
func NewJournalMachine() StateMachine { return &JournalMachine{} }

// Apply appends one record; the response is the record's index.
func (j *JournalMachine) Apply(cmd []byte) []byte {
	rec := make([]byte, len(cmd))
	copy(rec, cmd)
	j.recs = append(j.recs, rec)
	return binary.BigEndian.AppendUint32(nil, uint32(len(j.recs)-1))
}

// Snapshot serializes every record.
func (j *JournalMachine) Snapshot() []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(j.recs)))
	for _, rec := range j.recs {
		buf = appendBytes(buf, rec)
	}
	return buf
}

// Restore replaces the log from a snapshot.
func (j *JournalMachine) Restore(snap []byte) {
	d := &decoder{buf: snap}
	n := int(d.u32())
	recs := make([][]byte, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		b := d.bytes()
		if d.err != nil {
			break
		}
		rec := make([]byte, len(b))
		copy(rec, b)
		recs = append(recs, rec)
	}
	j.recs = recs
}

// Journal is the client side of a replicated JournalMachine, shaped to
// the batch engine's journal interface: Append proposes a record
// through the group (so it survives any single member) and Replay reads
// the committed records back from the current leader.
type Journal struct {
	g       *Group
	machine string
}

// NewJournal returns a client for the named JournalMachine on g.
func NewJournal(g *Group, machine string) *Journal {
	return &Journal{g: g, machine: machine}
}

// Append replicates one record.
func (j *Journal) Append(rec []byte) error {
	_, err := j.g.Propose(j.machine, rec)
	return err
}

// AppendCtx replicates one record with the caller's trace context
// threaded onto the Raft proposal, satisfying core.CtxJournal: the
// stage-completion commit shows up in the job's timeline as a consensus
// span under the stage that journaled it.
func (j *Journal) AppendCtx(rec []byte, tc trace.TraceContext) error {
	_, err := j.g.ProposeCtx(j.machine, rec, tc)
	return err
}

// Replay returns copies of all committed records in append order.
func (j *Journal) Replay() ([][]byte, error) {
	var out [][]byte
	err := j.g.Query(j.machine, func(sm StateMachine) error {
		jm := sm.(*JournalMachine)
		out = make([][]byte, len(jm.recs))
		for i, rec := range jm.recs {
			out[i] = append([]byte(nil), rec...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
