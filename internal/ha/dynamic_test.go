package ha

import (
	"strings"
	"testing"
)

// dynGroup builds a group with no static machines: every machine is
// minted through Dynamic on first committed command.
func dynGroup(seed uint64) *Group {
	return NewGroup(Config{
		Seed:    seed,
		Dynamic: func(string) StateMachine { return &addSM{} },
	})
}

// dynState returns (total, applies, exists) of member id's named machine.
func dynState(t *testing.T, g *Group, id int, name string) (uint64, int, bool) {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := g.reps[id]
	if rep == nil {
		t.Fatalf("member %d has no replica (crashed?)", id)
	}
	sm, ok := rep.machines[name]
	if !ok {
		return 0, 0, false
	}
	a := sm.(*addSM)
	return a.total, a.applies, true
}

func TestDynamicMachineMintedOnAllReplicas(t *testing.T) {
	g := dynGroup(42)
	for _, name := range []string{"range-0", "range-1", "range-7"} {
		if _, err := g.Propose(name, encAdd(3)); err != nil {
			t.Fatalf("Propose(%s): %v", name, err)
		}
	}
	if _, err := g.Propose("range-1", encAdd(4)); err != nil {
		t.Fatalf("Propose(range-1, 4): %v", err)
	}
	settle(g, 20)
	for id := 0; id < 3; id++ {
		for name, want := range map[string]uint64{"range-0": 3, "range-1": 7, "range-7": 3} {
			total, _, ok := dynState(t, g, id, name)
			if !ok {
				t.Fatalf("member %d: machine %q never minted", id, name)
			}
			if total != want {
				t.Fatalf("member %d %s: total = %d, want %d", id, name, total, want)
			}
		}
	}
}

func TestDynamicMachineSurvivesCrashRebuild(t *testing.T) {
	g := dynGroup(7)
	if _, err := g.Propose("range-3", encAdd(11)); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	victim := g.Leader()
	g.CrashMember(victim)
	if _, err := g.Propose("range-3", encAdd(5)); err != nil {
		t.Fatalf("Propose after crash: %v", err)
	}
	// Force compaction so the revived member rebuilds from a snapshot
	// that contains the dynamically minted machine.
	for i := 0; i < 130; i++ {
		if _, err := g.Propose("range-3", encAdd(0)); err != nil {
			t.Fatalf("Propose(fill %d): %v", i, err)
		}
	}
	g.ReviveMember(victim)
	if _, err := g.Propose("range-3", encAdd(1)); err != nil {
		t.Fatalf("Propose after revive: %v", err)
	}
	settle(g, 40)
	total, _, ok := dynState(t, g, victim, "range-3")
	if !ok {
		t.Fatalf("revived member %d: dynamic machine not rebuilt from snapshot", victim)
	}
	if total != 17 {
		t.Fatalf("revived member total = %d, want 17", total)
	}
}

func TestDynamicQueryOfUnseenMachineIsEmptyAndUnstored(t *testing.T) {
	g := dynGroup(1)
	if _, err := g.Propose("range-0", encAdd(2)); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	var total uint64
	if err := g.Query("range-99", func(sm StateMachine) error {
		total = sm.(*addSM).total
		return nil
	}); err != nil {
		t.Fatalf("Query of unseen dynamic machine: %v", err)
	}
	if total != 0 {
		t.Fatalf("unseen machine total = %d, want 0 (fresh instance)", total)
	}
	// The throwaway instance must not be stored: storing it only on the
	// queried member would diverge that replica's snapshot.
	for id := 0; id < 3; id++ {
		if _, _, ok := dynState(t, g, id, "range-99"); ok {
			t.Fatalf("member %d stored a query-created machine", id)
		}
	}
}

func TestUnknownMachineStillRejectedWithoutDynamic(t *testing.T) {
	g := addGroup(t, Config{})
	if _, err := g.Propose("nope", encAdd(1)); err == nil ||
		!strings.Contains(err.Error(), "unknown machine") {
		t.Fatalf("Propose(nope) err = %v, want unknown machine", err)
	}
	if err := g.Query("nope", func(StateMachine) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "unknown machine") {
		t.Fatalf("Query(nope) err = %v, want unknown machine", err)
	}
}
