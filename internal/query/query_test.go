package query_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/topology"
)

func testEngine() *core.Engine {
	fab := netsim.NewFabric(topology.TwoTier(2, 2, 2), netsim.RDMA40G)
	cl := cluster.New(cluster.Config{Fabric: fab, SlotsPerNode: 2})
	return core.NewEngine(core.Config{Cluster: cl})
}

func starEnv(t *testing.T, factRows int) *query.Env {
	t.Helper()
	env := query.NewEnv(testEngine(), nil)
	if err := query.RegisterStar(env, query.GenStar(7, factRows, 60, 25, 48), 4); err != nil {
		t.Fatal(err)
	}
	return env
}

func runSQL(t *testing.T, env *query.Env, sql string, opts query.Options) (*query.Plan, []table.Row) {
	t.Helper()
	plan, err := env.SQL(sql, opts)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	rows, err := plan.Execute()
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return plan, rows
}

// TestStarSuiteDifferential runs every E-SQL query with the optimizer
// on and off and checks both against the naive reference evaluator.
func TestStarSuiteDifferential(t *testing.T) {
	env := starEnv(t, 800)
	for _, q := range query.StarQueries() {
		for _, optimize := range []bool{false, true} {
			plan, rows := runSQL(t, env, q.SQL, query.Options{Optimize: optimize})
			d := check.DiffQueryEnv(q.ID, rows, plan.Logical, env)
			if !d.OK {
				t.Errorf("optimize=%v %s: %s\n%s", optimize, q.ID, d, plan.Explain())
			}
		}
	}
}

// TestJoinStrategySelection asserts the cost-based choices the ISSUE
// calls for: broadcast for a small dimension, shuffle for large-large.
func TestJoinStrategySelection(t *testing.T) {
	env := starEnv(t, 800)
	dimJoin := "SELECT prod_category, SUM(units) AS total_units FROM sales JOIN product ON prod_id = prod_id GROUP BY prod_category ORDER BY prod_category"
	plan, _ := runSQL(t, env, dimJoin, query.Options{Optimize: true})
	if n := plan.FindNodes("join[broadcast]"); len(n) != 1 {
		t.Fatalf("small dimension join should broadcast:\n%s", plan.Explain())
	}
	factJoin := "SELECT cust_id, SUM(ship_cost) AS cost FROM sales JOIN shipments ON cust_id = cust_id GROUP BY cust_id ORDER BY cost DESC LIMIT 10"
	plan, _ = runSQL(t, env, factJoin, query.Options{Optimize: true, BroadcastRows: 100})
	if n := plan.FindNodes("join[shuffle]"); len(n) != 1 {
		t.Fatalf("large-large join should shuffle:\n%s", plan.Explain())
	}
	// Optimizer off: always shuffle.
	plan, _ = runSQL(t, env, dimJoin, query.Options{Optimize: false})
	if n := plan.FindNodes("join[broadcast]"); len(n) != 0 {
		t.Fatalf("optimizer off must not broadcast:\n%s", plan.Explain())
	}
}

// TestPushdownReducesDecode asserts the obs counters show predicate +
// projection pushdown decoding fewer bytes and rows than the naive
// plan for the same query.
func TestPushdownReducesDecode(t *testing.T) {
	sql := "SELECT cust_id, units FROM sales WHERE units >= 8"
	naiveEnv := starEnv(t, 800)
	_, naiveRows := runSQL(t, naiveEnv, sql, query.Options{Optimize: false})
	optEnv := starEnv(t, 800)
	_, optRows := runSQL(t, optEnv, sql, query.Options{Optimize: true})
	if len(naiveRows) != len(optRows) {
		t.Fatalf("row counts diverge: %d vs %d", len(naiveRows), len(optRows))
	}
	naiveDecoded := naiveEnv.Reg.Counter(table.CtrBytesDecoded).Value()
	optDecoded := optEnv.Reg.Counter(table.CtrBytesDecoded).Value()
	if optDecoded >= naiveDecoded {
		t.Fatalf("pushdown decoded %d bytes, naive %d", optDecoded, naiveDecoded)
	}
	if optEnv.Reg.Counter(table.CtrBytesSkipped).Value() == 0 {
		t.Fatal("pushdown skipped no bytes")
	}
	if naiveEnv.Reg.Counter(table.CtrBytesSkipped).Value() != 0 {
		t.Fatal("naive plan should decode everything")
	}
}

// TestZonePruning: a range predicate on a clustered column prunes
// whole partitions via zone maps.
func TestZonePruning(t *testing.T) {
	env := query.NewEnv(testEngine(), nil)
	schema := table.Schema{Cols: []table.Col{
		{Name: "ts", Type: table.Int64},
		{Name: "v", Type: table.Int64},
	}}
	var rows []table.Row
	for i := 0; i < 400; i++ {
		rows = append(rows, table.Row{int64(i % 4 * 1000), int64(i)})
	}
	if err := env.Register("events", schema, rows, 4); err != nil {
		t.Fatal(err)
	}
	plan, got := runSQL(t, env, "SELECT v FROM events WHERE ts >= 3000", query.Options{Optimize: true})
	if len(got) != 100 {
		t.Fatalf("got %d rows, want 100", len(got))
	}
	if pruned := env.Reg.Counter(table.CtrRowsPruned).Value(); pruned != 300 {
		t.Fatalf("pruned %d rows, want 300\n%s", pruned, plan.Explain())
	}
}

// TestExplainShape: EXPLAIN carries estimates before execution and
// actuals after.
func TestExplainShape(t *testing.T) {
	env := starEnv(t, 400)
	plan, err := env.SQL("SELECT cust_id, units FROM sales WHERE units >= 8", query.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	before := plan.Explain()
	if !strings.Contains(before, "est=") || !strings.Contains(before, "actual=-") {
		t.Fatalf("pre-run explain:\n%s", before)
	}
	if _, err := plan.Execute(); err != nil {
		t.Fatal(err)
	}
	after := plan.Explain()
	if strings.Contains(after, "actual=-") {
		t.Fatalf("post-run explain still has unexecuted nodes:\n%s", after)
	}
	if !strings.Contains(after, "scan sales") {
		t.Fatalf("explain lost the scan:\n%s", after)
	}
	scans := plan.FindNodes("scan")
	if len(scans) != 1 || scans[0].Actual() == 0 {
		t.Fatalf("scan actuals missing:\n%s", after)
	}
}

// TestJoinReorder: a star join whose big dimension is written first
// gets reordered so the small one joins first.
func TestJoinReorder(t *testing.T) {
	env := starEnv(t, 800)
	// shipments (large) written before product (small): optimizer should
	// join product first. Both probe columns live on the fact table.
	sql := "SELECT prod_category, SUM(ship_cost) AS cost FROM sales JOIN shipments ON cust_id = cust_id JOIN product ON prod_id = prod_id GROUP BY prod_category ORDER BY prod_category"
	plan, rows := runSQL(t, env, sql, query.Options{Optimize: true, BroadcastRows: 100})
	d := check.DiffQueryEnv("reorder", rows, plan.Logical, env)
	if !d.OK {
		t.Fatalf("reordered join diverged: %s\n%s", d, plan.Explain())
	}
	joins := plan.FindNodes("join[broadcast]")
	if len(joins) == 0 {
		t.Fatalf("expected the small product dimension to broadcast after reorder:\n%s", plan.Explain())
	}
	// The product join must sit below the shipments join (deeper in the
	// tree) after reordering: its subtree should not contain the other join.
	var contains func(n *query.Node, kind string) bool
	contains = func(n *query.Node, kind string) bool {
		if n.Kind == kind {
			return true
		}
		for _, c := range n.Children {
			if contains(c, kind) {
				return true
			}
		}
		return false
	}
	shuffles := plan.FindNodes("join[shuffle]")
	if len(shuffles) != 1 {
		t.Fatalf("expected one shuffle join for shipments:\n%s", plan.Explain())
	}
	if contains(joins[0], "join[shuffle]") {
		t.Fatalf("small join should be below the large join after reorder:\n%s", plan.Explain())
	}
}

// TestFluentAPI builds a plan without SQL and checks it against the
// oracle.
func TestFluentAPI(t *testing.T) {
	env := starEnv(t, 400)
	lp := query.Scan("sales").
		Where(query.And(query.Cmp("units", query.Ge, int64(3)), query.Cmp("amount", query.Lt, 5000.0))).
		Join(query.Scan("customer"), "cust_id", "cust_id").
		GroupBy([]string{"cust_region"}, table.Agg{Op: table.Sum, Col: "amount", As: "revenue"}, table.Agg{Op: table.Count}).
		OrderBy("revenue", true)
	plan, err := env.Build(lp, query.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if d := check.DiffQueryEnv("fluent", rows, lp, env); !d.OK {
		t.Fatalf("%s\n%s", d, plan.Explain())
	}
	if len(rows) == 0 {
		t.Fatal("no output rows")
	}
}

// TestParseErrors: malformed queries fail cleanly.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT a b FROM t",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a ==",
		"SELECT * FROM t WHERE a = ",
		"SELECT * FROM t LIMIT 5",         // LIMIT without ORDER BY
		"SELECT a FROM t GROUP BY a",      // GROUP BY without aggregates
		"SELECT a, SUM(b) AS s FROM t",    // bare column not grouped
		"SELECT SUM(*) FROM t",            // SUM(*)
		"SELECT COUNT(x) FROM t",          // COUNT(col)
		"SELECT a FROM t ORDER BY b",      // ORDER BY not in select list
		"SELECT * FROM t WHERE a = 'oops", // unterminated string
		"SELECT * FROM t extra",           // trailing tokens
		"SELECT a AS x, b AS x FROM t",    // duplicate aliases surface at Build
	}
	env := starEnv(t, 10)
	for _, sql := range bad {
		if sql == "SELECT a AS x, b AS x FROM t" {
			continue // checked below via Build
		}
		if _, err := query.Parse(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
	if _, err := env.SQL("SELECT cust_id AS x, units AS x FROM sales", query.Options{}); err == nil {
		t.Error("duplicate aliases accepted")
	}
	if _, err := env.SQL("SELECT nope FROM sales", query.Options{}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := env.SQL("SELECT cust_id FROM nope", query.Options{}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := env.SQL("SELECT cust_id FROM sales WHERE cust_id = 'x'", query.Options{}); err == nil {
		t.Error("type-mismatched literal accepted")
	}
}

// TestEmptyTables: every operator behaves over zero-row inputs.
func TestEmptyTables(t *testing.T) {
	env := query.NewEnv(testEngine(), nil)
	schema := table.Schema{Cols: []table.Col{
		{Name: "k", Type: table.Int64},
		{Name: "v", Type: table.Float64},
	}}
	if err := env.Register("empty", schema, nil, 3); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT * FROM empty",
		"SELECT k FROM empty WHERE v > 1.5",
		"SELECT k, SUM(v) AS s FROM empty GROUP BY k ORDER BY s DESC LIMIT 3",
		"SELECT COUNT(*) AS n, SUM(v) AS s FROM empty",
		"SELECT k FROM empty JOIN empty ON k = k",
	} {
		for _, optimize := range []bool{false, true} {
			plan, rows := runSQL(t, env, sql, query.Options{Optimize: optimize})
			if d := check.DiffQueryEnv(sql, rows, plan.Logical, env); !d.OK {
				t.Errorf("optimize=%v %s: %s", optimize, sql, d)
			}
			if len(rows) != 0 {
				t.Errorf("optimize=%v %s: %d rows from empty input", optimize, sql, len(rows))
			}
		}
	}
}

// TestAnalyzeStats sanity-checks the statistics the optimizer costs
// plans with.
func TestAnalyzeStats(t *testing.T) {
	schema := table.Schema{Cols: []table.Col{
		{Name: "a", Type: table.Int64},
		{Name: "s", Type: table.String},
	}}
	rows := []table.Row{
		{int64(1), "x"}, {int64(2), "x"}, {int64(2), "y"}, {int64(9), "x"},
	}
	st := query.Analyze(schema, rows)
	if st.Rows != 4 {
		t.Fatalf("rows = %d", st.Rows)
	}
	a := st.Cols["a"]
	if a.Distinct != 3 || a.Min.(int64) != 1 || a.Max.(int64) != 9 {
		t.Fatalf("a stats = %+v", a)
	}
	s := st.Cols["s"]
	if s.Distinct != 2 || s.Min.(string) != "x" || s.Max.(string) != "y" {
		t.Fatalf("s stats = %+v", s)
	}
}
