package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/table"
)

// Parse turns a SQL-ish query into a logical plan:
//
//	SELECT item [, item]... FROM tbl
//	  [JOIN tbl2 ON col = col]...
//	  [WHERE pred]
//	  [GROUP BY col [, col]...]
//	  [ORDER BY col [ASC|DESC]]
//	  [LIMIT n]
//
// where item is *, col, col AS name, or SUM/COUNT/MIN/MAX/AVG(col|*)
// [AS name]; pred is AND/OR over col <op> literal comparisons with
// (), =, !=, <>, <, <=, >, >=; literals are integers, decimals and
// 'single-quoted' strings. Qualified names (t.col) drop the qualifier.
// The plan resolves table and column names at Build time, not here.
func Parse(sql string) (*Logical, error) {
	toks, err := tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	lp, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("query: parse: %w", err)
	}
	return lp, nil
}

// MustParse is Parse for static query text; it panics on error.
func MustParse(sql string) *Logical {
	lp, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return lp
}

// SQL parses, optimizes and compiles a query in one call.
func (e *Env) SQL(sql string, opts Options) (*Plan, error) {
	lp, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Build(lp, opts)
}

// ---------------------------------------------------------------------------
// Tokenizer

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokSymbol
	tokEOF
)

type token struct {
	kind tokKind
	text string // idents uppercased for keywords? no — raw; keyword match is case-insensitive
	num  any    // int64 or float64 for tokNumber
}

func tokenize(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("query: parse: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: s[i+1 : j]})
			i = j + 1
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=':
			toks = append(toks, token{kind: tokSymbol, text: string(c)})
			i++
		case c == '!' || c == '<' || c == '>':
			op := string(c)
			if i+1 < len(s) && (s[i+1] == '=' || (c == '<' && s[i+1] == '>')) {
				op += string(s[i+1])
				i++
			}
			if op == "<>" {
				op = "!="
			}
			if op == "!" {
				return nil, fmt.Errorf("query: parse: stray '!' at %d", i)
			}
			toks = append(toks, token{kind: tokSymbol, text: op})
			i++
		case c == '-' || c >= '0' && c <= '9':
			j := i
			if c == '-' {
				j++
			}
			dot := false
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' && !dot) {
				if s[j] == '.' {
					dot = true
				}
				j++
			}
			text := s[i:j]
			if text == "-" {
				return nil, fmt.Errorf("query: parse: stray '-' at %d", i)
			}
			var num any
			if dot {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("query: parse: bad number %q", text)
				}
				num = f
			} else {
				n, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("query: parse: bad number %q", text)
				}
				num = n
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: num})
			i = j
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i
			for j < len(s) && (s[j] == '_' || s[j] == '.' ||
				unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j]))) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("query: parse: unexpected character %q at %d", c, i)
		}
	}
	return append(toks, token{kind: tokEOF}), nil
}

// ---------------------------------------------------------------------------
// Parser

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// column reads a possibly qualified column reference, dropping the
// qualifier: "sales.units" -> "units".
func (p *parser) column() (string, error) {
	id, err := p.ident()
	if err != nil {
		return "", err
	}
	if i := strings.LastIndexByte(id, '.'); i >= 0 {
		id = id[i+1:]
	}
	if id == "" {
		return "", fmt.Errorf("empty column name")
	}
	return id, nil
}

var aggOps = map[string]table.AggOp{
	"SUM": table.Sum, "COUNT": table.Count, "MIN": table.Min, "MAX": table.Max, "AVG": table.Avg,
}

type selectItem struct {
	star  bool      // bare *
	col   string    // plain column
	alias string    // AS name ("" = default)
	isAgg bool      // aggregate function
	agg   table.Agg // when isAgg
}

func (p *parser) parseQuery() (*Logical, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	base, err := p.ident()
	if err != nil {
		return nil, err
	}
	lp := Scan(base)
	for p.keyword("JOIN") {
		right, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		leftCol, err := p.column()
		if err != nil {
			return nil, err
		}
		if !p.symbol("=") {
			return nil, fmt.Errorf("expected = in ON clause, got %q", p.peek().text)
		}
		rightCol, err := p.column()
		if err != nil {
			return nil, err
		}
		lp = lp.Join(Scan(right), leftCol, rightCol)
	}
	if p.keyword("WHERE") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		lp = lp.Where(pred)
	}
	var groupKeys []string
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.column()
			if err != nil {
				return nil, err
			}
			groupKeys = append(groupKeys, col)
			if !p.symbol(",") {
				break
			}
		}
	}
	lp, outCols, err := applySelect(lp, items, groupKeys)
	if err != nil {
		return nil, err
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.column()
		if err != nil {
			return nil, err
		}
		desc := false
		if p.keyword("DESC") {
			desc = true
		} else {
			p.keyword("ASC")
		}
		found := false
		for _, c := range outCols {
			if c == col {
				found = true
				break
			}
		}
		if !found && outCols != nil {
			return nil, fmt.Errorf("ORDER BY %s is not in the select list", col)
		}
		lp = lp.OrderBy(col, desc)
	}
	if p.keyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("expected LIMIT count, got %q", t.text)
		}
		n, ok := t.num.(int64)
		if !ok || n < 0 {
			return nil, fmt.Errorf("bad LIMIT %q", t.text)
		}
		if lp.Op != OpSort {
			return nil, fmt.Errorf("LIMIT requires ORDER BY (unordered limits are nondeterministic)")
		}
		lp = lp.Limit(int(n))
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("trailing input at %q", p.peek().text)
	}
	return lp, nil
}

func (p *parser) parseSelectList() ([]selectItem, error) {
	var items []selectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.symbol(",") {
			break
		}
	}
	return items, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.symbol("*") {
		return selectItem{star: true}, nil
	}
	t := p.peek()
	if t.kind == tokIdent {
		if op, isAgg := aggOps[strings.ToUpper(t.text)]; isAgg && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2 // fn (
			agg := table.Agg{Op: op}
			if p.symbol("*") {
				if op != table.Count {
					return selectItem{}, fmt.Errorf("%s(*) is not supported", strings.ToUpper(t.text))
				}
			} else {
				col, err := p.column()
				if err != nil {
					return selectItem{}, err
				}
				if op == table.Count {
					return selectItem{}, fmt.Errorf("COUNT takes * (COUNT(%s) is not supported)", col)
				}
				agg.Col = col
			}
			if !p.symbol(")") {
				return selectItem{}, fmt.Errorf("expected ) after aggregate, got %q", p.peek().text)
			}
			item := selectItem{isAgg: true, agg: agg}
			if p.keyword("AS") {
				alias, err := p.ident()
				if err != nil {
					return selectItem{}, err
				}
				item.agg.As = alias
				item.alias = alias
			}
			return item, nil
		}
	}
	col, err := p.column()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{col: col, alias: col}
	if p.keyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return selectItem{}, err
		}
		item.alias = alias
	}
	return item, nil
}

// applySelect turns the select list + GROUP BY into Agg/Project nodes
// above lp. Returns the output column names (nil means SELECT * — any
// ORDER BY column is accepted and validated at Build).
func applySelect(lp *Logical, items []selectItem, groupKeys []string) (*Logical, []string, error) {
	hasAgg := false
	for _, it := range items {
		if it.star && len(items) > 1 {
			return nil, nil, fmt.Errorf("* must be the only select item")
		}
		if it.isAgg {
			hasAgg = true
		}
	}
	if items[0].star {
		if len(groupKeys) > 0 {
			return nil, nil, fmt.Errorf("SELECT * with GROUP BY is not supported")
		}
		return lp, nil, nil
	}
	if !hasAgg {
		if len(groupKeys) > 0 {
			return nil, nil, fmt.Errorf("GROUP BY without aggregates is not supported")
		}
		cols := make([]string, len(items))
		aliases := make([]string, len(items))
		for i, it := range items {
			cols[i] = it.col
			aliases[i] = it.alias
		}
		return lp.Project(cols, aliases), aliases, nil
	}
	// Aggregate query: plain select items must be group keys.
	keySet := map[string]bool{}
	for _, k := range groupKeys {
		keySet[k] = true
	}
	var aggs []table.Agg
	for _, it := range items {
		if it.isAgg {
			aggs = append(aggs, it.agg)
			continue
		}
		if !keySet[it.col] {
			return nil, nil, fmt.Errorf("column %s must appear in GROUP BY or an aggregate", it.col)
		}
	}
	lp = lp.GroupBy(groupKeys, aggs...)
	// Project to the select order (the Agg node emits keys first).
	cols := make([]string, len(items))
	aliases := make([]string, len(items))
	for i, it := range items {
		if it.isAgg {
			cols[i] = aggName(it.agg)
			aliases[i] = cols[i]
		} else {
			cols[i] = it.col
			aliases[i] = it.alias
		}
	}
	return lp.Project(cols, aliases), aliases, nil
}

func (p *parser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (*Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

var cmpOps = map[string]CmpOp{"=": Eq, "!=": Ne, "<": Lt, "<=": Le, ">": Gt, ">=": Ge}

func (p *parser) parseCmp() (*Expr, error) {
	if p.symbol("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.symbol(")") {
			return nil, fmt.Errorf("expected ), got %q", p.peek().text)
		}
		return e, nil
	}
	col, err := p.column()
	if err != nil {
		return nil, err
	}
	t := p.next()
	op, ok := cmpOps[t.text]
	if t.kind != tokSymbol || !ok {
		return nil, fmt.Errorf("expected comparison operator, got %q", t.text)
	}
	lit := p.next()
	switch lit.kind {
	case tokNumber:
		return Cmp(col, op, lit.num), nil
	case tokString:
		return Cmp(col, op, lit.text), nil
	}
	return nil, fmt.Errorf("expected literal, got %q", lit.text)
}
