// Package query is a SQL-ish query layer over internal/table and
// internal/core: a logical plan (scan, filter, project, join,
// aggregate, sort, limit) parsed from text or built with a fluent API,
// compiled onto the dataflow engine by a cost-based optimizer that
// pushes predicates and projections into the columnar scan, reorders
// star joins, and picks broadcast vs shuffle join strategies from
// per-table statistics.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/table"
)

// CmpOp is a comparison operator in a predicate leaf.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// ExprKind discriminates predicate nodes.
type ExprKind int

// Predicate node kinds.
const (
	ExprCmp ExprKind = iota
	ExprAnd
	ExprOr
)

// Expr is a boolean predicate over one row: a comparison of a column
// against a literal, or AND/OR of two sub-predicates. Exprs are plain
// data so the optimizer can split conjuncts, the columnar scan can
// derive zone-map ranges, and the differential oracle can evaluate the
// same predicate on its own rows.
type Expr struct {
	Kind        ExprKind
	Left, Right *Expr // And/Or children

	// Cmp leaf: Col <op> Val with Val an int64, float64 or string.
	Col string
	Cmp CmpOp
	Val any
}

// Cmp builds a comparison leaf.
func Cmp(col string, op CmpOp, val any) *Expr {
	return &Expr{Kind: ExprCmp, Col: col, Cmp: op, Val: val}
}

// And conjoins two predicates.
func And(a, b *Expr) *Expr { return &Expr{Kind: ExprAnd, Left: a, Right: b} }

// Or disjoins two predicates.
func Or(a, b *Expr) *Expr { return &Expr{Kind: ExprOr, Left: a, Right: b} }

// Cols returns the distinct column names the predicate reads, sorted.
func (e *Expr) Cols() []string {
	set := map[string]bool{}
	e.walk(func(leaf *Expr) { set[leaf.Col] = true })
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func (e *Expr) walk(f func(leaf *Expr)) {
	if e == nil {
		return
	}
	if e.Kind == ExprCmp {
		f(e)
		return
	}
	e.Left.walk(f)
	e.Right.walk(f)
}

// String renders the predicate in SQL-ish syntax.
func (e *Expr) String() string {
	if e == nil {
		return "true"
	}
	switch e.Kind {
	case ExprCmp:
		if s, ok := e.Val.(string); ok {
			return fmt.Sprintf("%s %s '%s'", e.Col, e.Cmp, s)
		}
		if f, ok := e.Val.(float64); ok {
			return fmt.Sprintf("%s %s %s", e.Col, e.Cmp, strconv.FormatFloat(f, 'g', -1, 64))
		}
		return fmt.Sprintf("%s %s %v", e.Col, e.Cmp, e.Val)
	case ExprAnd:
		return fmt.Sprintf("(%s AND %s)", e.Left, e.Right)
	default:
		return fmt.Sprintf("(%s OR %s)", e.Left, e.Right)
	}
}

// conjuncts splits a top-level AND tree into its factors.
func (e *Expr) conjuncts() []*Expr {
	if e == nil {
		return nil
	}
	if e.Kind == ExprAnd {
		return append(e.Left.conjuncts(), e.Right.conjuncts()...)
	}
	return []*Expr{e}
}

// conjoin rebuilds an AND tree from factors (nil when empty).
func conjoin(es []*Expr) *Expr {
	var out *Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = And(out, e)
		}
	}
	return out
}

// renamed returns a deep copy with column names mapped through m
// (names absent from m are kept).
func (e *Expr) renamed(m map[string]string) *Expr {
	if e == nil {
		return nil
	}
	cp := *e
	if e.Kind == ExprCmp {
		if n, ok := m[e.Col]; ok {
			cp.Col = n
		}
		return &cp
	}
	cp.Left = e.Left.renamed(m)
	cp.Right = e.Right.renamed(m)
	return &cp
}

// coerce adapts a literal to a column type: int literals promote to
// Float64 columns; everything else must match exactly.
func coerce(typ table.Type, val any) (any, error) {
	switch typ {
	case table.Int64:
		if v, ok := val.(int64); ok {
			return v, nil
		}
	case table.Float64:
		switch v := val.(type) {
		case float64:
			return v, nil
		case int64:
			return float64(v), nil
		}
	case table.String:
		if v, ok := val.(string); ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("query: literal %v (%T) does not match column type %v", val, val, typ)
}

// keepFunc builds the per-value predicate for a comparison leaf against
// an already-coerced literal. Float comparisons use Go semantics (every
// comparison with NaN is false except col != NaN, which is true for
// non-NaN values) — the oracle evaluates predicates through this same
// function, so both sides agree by construction.
func keepFunc(op CmpOp, typ table.Type, lit any) func(v any) bool {
	switch typ {
	case table.Int64:
		l := lit.(int64)
		switch op {
		case Eq:
			return func(v any) bool { return v.(int64) == l }
		case Ne:
			return func(v any) bool { return v.(int64) != l }
		case Lt:
			return func(v any) bool { return v.(int64) < l }
		case Le:
			return func(v any) bool { return v.(int64) <= l }
		case Gt:
			return func(v any) bool { return v.(int64) > l }
		default:
			return func(v any) bool { return v.(int64) >= l }
		}
	case table.Float64:
		l := lit.(float64)
		switch op {
		case Eq:
			return func(v any) bool { return v.(float64) == l }
		case Ne:
			return func(v any) bool { return v.(float64) != l }
		case Lt:
			return func(v any) bool { return v.(float64) < l }
		case Le:
			return func(v any) bool { return v.(float64) <= l }
		case Gt:
			return func(v any) bool { return v.(float64) > l }
		default:
			return func(v any) bool { return v.(float64) >= l }
		}
	default:
		l := lit.(string)
		switch op {
		case Eq:
			return func(v any) bool { return v.(string) == l }
		case Ne:
			return func(v any) bool { return v.(string) != l }
		case Lt:
			return func(v any) bool { return v.(string) < l }
		case Le:
			return func(v any) bool { return v.(string) <= l }
		case Gt:
			return func(v any) bool { return v.(string) > l }
		default:
			return func(v any) bool { return v.(string) >= l }
		}
	}
}

// Bind resolves the predicate against a schema and returns a row
// filter. Errors on unknown columns or literal/column type mismatches.
func (e *Expr) Bind(s table.Schema) (func(table.Row) bool, error) {
	if e == nil {
		return func(table.Row) bool { return true }, nil
	}
	switch e.Kind {
	case ExprCmp:
		i, err := s.MustIndex(e.Col)
		if err != nil {
			return nil, err
		}
		typ := s.Cols[i].Type
		lit, err := coerce(typ, e.Val)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", e.Col, err)
		}
		keep := keepFunc(e.Cmp, typ, lit)
		return func(r table.Row) bool { return keep(r[i]) }, nil
	case ExprAnd:
		l, err := e.Left.Bind(s)
		if err != nil {
			return nil, err
		}
		r, err := e.Right.Bind(s)
		if err != nil {
			return nil, err
		}
		return func(row table.Row) bool { return l(row) && r(row) }, nil
	default:
		l, err := e.Left.Bind(s)
		if err != nil {
			return nil, err
		}
		r, err := e.Right.Bind(s)
		if err != nil {
			return nil, err
		}
		return func(row table.Row) bool { return l(row) || r(row) }, nil
	}
}

// cmpAny totally orders two same-typed values (floats by value with
// NaN high, used only for zone-map math where NaN never appears).
func cmpAny(a, b any) int {
	switch av := a.(type) {
	case int64:
		bv := b.(int64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case float64:
		bv := b.(float64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	default:
		return strings.Compare(a.(string), b.(string))
	}
}

// skipAllFunc derives a zone-map pruning function for a simple
// comparison leaf: given a partition's [min, max] for the column, it
// reports that no value can satisfy the predicate. Returns nil when the
// leaf has no usable range form (Ne, or non-Cmp nodes).
func skipAllFunc(op CmpOp, typ table.Type, val any) func(min, max any) bool {
	lit, err := coerce(typ, val)
	if err != nil {
		return nil
	}
	if f, ok := lit.(float64); ok && f != f {
		return nil // NaN never orders against a zone map
	}
	switch op {
	case Eq:
		return func(min, max any) bool { return cmpAny(lit, min) < 0 || cmpAny(lit, max) > 0 }
	case Lt:
		return func(min, _ any) bool { return cmpAny(min, lit) >= 0 }
	case Le:
		return func(min, _ any) bool { return cmpAny(min, lit) > 0 }
	case Gt:
		return func(_, max any) bool { return cmpAny(max, lit) <= 0 }
	case Ge:
		return func(_, max any) bool { return cmpAny(max, lit) < 0 }
	}
	return nil
}
