package query_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/query"
	"repro/internal/table"
)

// fuzzGen consumes fuzz bytes as a decision stream: every structural
// choice (schema shape, row values, plan operators, predicates) is a
// deterministic function of the input, so any failure reproduces from
// its corpus entry.
type fuzzGen struct {
	data []byte
	pos  int
}

func (g *fuzzGen) byte() byte {
	if g.pos >= len(g.data) {
		g.pos++
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *fuzzGen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.byte()) % n
}

// Small value domains force key collisions, empty filter results and
// duplicate join keys. Floats are multiples of 0.25 so sums are exact
// in any combination order.
func (g *fuzzGen) value(typ table.Type) any {
	switch typ {
	case table.Int64:
		return int64(g.intn(13) - 4)
	case table.Float64:
		return float64(g.intn(25)-8) * 0.25
	default:
		return string(rune('a' + g.intn(4)))
	}
}

var fuzzTypes = []table.Type{table.Int64, table.String, table.Float64, table.Int64}

func (g *fuzzGen) schema(prefix string) table.Schema {
	n := 2 + g.intn(3)
	cols := make([]table.Col, n)
	for i := range cols {
		cols[i] = table.Col{
			Name: prefix + string(rune('a'+i)),
			Type: fuzzTypes[(i+g.intn(2))%len(fuzzTypes)],
		}
	}
	return table.Schema{Cols: cols}
}

func (g *fuzzGen) rows(s table.Schema, max int) []table.Row {
	n := g.intn(max + 1)
	rows := make([]table.Row, n)
	for i := range rows {
		r := make(table.Row, len(s.Cols))
		for c, col := range s.Cols {
			r[c] = g.value(col.Type)
		}
		rows[i] = r
	}
	return rows
}

func (g *fuzzGen) pred(s table.Schema, depth int) *query.Expr {
	if depth > 0 && g.intn(3) == 0 {
		l := g.pred(s, depth-1)
		r := g.pred(s, depth-1)
		if g.intn(2) == 0 {
			return query.And(l, r)
		}
		return query.Or(l, r)
	}
	col := s.Cols[g.intn(len(s.Cols))]
	op := query.CmpOp(g.intn(6))
	return query.Cmp(col.Name, op, g.value(col.Type))
}

// plan grows a valid logical plan over the current schema, tracking
// the schema as operators stack.
func (g *fuzzGen) plan(scan *query.Logical, schema table.Schema, joinable *query.Logical, joinSchema table.Schema) *query.Logical {
	lp := scan
	steps := g.intn(4)
	for i := 0; i < steps; i++ {
		switch g.intn(3) {
		case 0:
			lp = lp.Where(g.pred(schema, 1))
		case 1:
			// Project a random non-empty subset, possibly renamed.
			var cols, aliases []string
			for _, c := range schema.Cols {
				if g.intn(2) == 0 {
					cols = append(cols, c.Name)
					aliases = append(aliases, c.Name)
				}
			}
			if len(cols) == 0 {
				cols = []string{schema.Cols[0].Name}
				aliases = []string{schema.Cols[0].Name}
			}
			if g.intn(3) == 0 {
				aliases[0] = "r_" + aliases[0]
			}
			lp = lp.Project(cols, aliases)
			out := make([]table.Col, len(cols))
			for k, c := range cols {
				out[k] = table.Col{Name: aliases[k], Type: schema.Cols[schema.Index(c)].Type}
			}
			schema = table.Schema{Cols: out}
		case 2:
			if joinable == nil {
				continue
			}
			// Join on a type-compatible column pair, if any exists.
			var pairs [][2]string
			for _, lc := range schema.Cols {
				for _, rc := range joinSchema.Cols {
					if lc.Type == rc.Type {
						pairs = append(pairs, [2]string{lc.Name, rc.Name})
					}
				}
			}
			if len(pairs) == 0 {
				continue
			}
			p := pairs[g.intn(len(pairs))]
			lp = lp.Join(joinable, p[0], p[1])
			out := append([]table.Col(nil), schema.Cols...)
			for _, c := range joinSchema.Cols {
				name := c.Name
				if (table.Schema{Cols: out}).Index(name) >= 0 {
					name = "right_" + name
				}
				out = append(out, table.Col{Name: name, Type: c.Type})
			}
			schema = table.Schema{Cols: out}
			joinable = nil
		}
	}
	// Optional aggregate.
	if g.intn(2) == 0 {
		var keys []string
		for _, c := range schema.Cols {
			if g.intn(3) == 0 {
				keys = append(keys, c.Name)
			}
		}
		var aggs []table.Agg
		out := make([]table.Col, 0, len(keys)+4)
		for _, k := range keys {
			out = append(out, schema.Cols[schema.Index(k)])
		}
		aggs = append(aggs, table.Agg{Op: table.Count})
		out = append(out, table.Col{Name: "count", Type: table.Int64})
		for _, c := range schema.Cols {
			isKey := false
			for _, k := range keys {
				if k == c.Name {
					isKey = true
				}
			}
			if isKey || g.intn(2) == 0 {
				continue
			}
			ops := []table.AggOp{table.Min, table.Max}
			if c.Type != table.String {
				ops = append(ops, table.Sum, table.Avg)
			}
			op := ops[g.intn(len(ops))]
			aggs = append(aggs, table.Agg{Op: op, Col: c.Name, As: "agg_" + c.Name})
			typ := c.Type
			if op == table.Avg {
				typ = table.Float64
			}
			out = append(out, table.Col{Name: "agg_" + c.Name, Type: typ})
		}
		lp = lp.GroupBy(keys, aggs...)
		schema = table.Schema{Cols: out}
	}
	// Optional sort (+ limit). The sort column must come from the
	// current schema; after an aggregate keys and aggregate outputs
	// both survive.
	if len(schema.Cols) > 0 && g.intn(2) == 0 {
		col := schema.Cols[g.intn(len(schema.Cols))].Name
		lp = lp.OrderBy(col, g.intn(2) == 0)
		if g.intn(2) == 0 {
			lp = lp.Limit(g.intn(9))
		}
	}
	return lp
}

// FuzzPlanEquivalence generates random schemas, rows and logical plans
// and checks three-way agreement: optimizer-on output == optimizer-off
// output == the naive reference evaluator, as multisets (ordered when
// the plan sorts).
func FuzzPlanEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{7, 0, 7, 0, 7, 0, 7, 0, 200, 100, 50, 25, 12, 6, 3, 1, 7, 0, 7, 0})
	f.Add([]byte{255, 254, 253, 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6})
	f.Add([]byte{42, 42, 42, 42, 0, 0, 0, 0, 42, 42, 42, 42, 17, 17, 17, 17, 99, 99})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		s0 := g.schema("")
		s1 := g.schema("q")
		r0 := g.rows(s0, 24)
		r1 := g.rows(s1, 12)

		env := query.NewEnv(testEngine(), nil)
		if err := env.Register("t0", s0, r0, 1+g.intn(4)); err != nil {
			t.Fatal(err)
		}
		if err := env.Register("t1", s1, r1, 1+g.intn(4)); err != nil {
			t.Fatal(err)
		}
		lp := g.plan(query.Scan("t0"), s0, query.Scan("t1"), s1)
		if _, err := lp.OutSchema(env.Schema); err != nil {
			return // generator built an invalid plan (duplicate aliases etc.)
		}

		var outputs [][]table.Row
		for _, optimize := range []bool{false, true} {
			plan, err := env.Build(lp, query.Options{Optimize: optimize, BroadcastRows: int64(g.intn(2) * 1000)})
			if err != nil {
				t.Fatalf("build optimize=%v: %v", optimize, err)
			}
			rows, err := plan.Execute()
			if err != nil {
				t.Fatalf("execute optimize=%v: %v\n%s", optimize, err, plan.Explain())
			}
			if d := check.DiffQueryEnv("fuzz", rows, lp, env); !d.OK {
				t.Fatalf("optimize=%v diverges from oracle: %s\n%s", optimize, d, plan.Explain())
			}
			outputs = append(outputs, rows)
		}
		var d check.Diff
		if lp.Ordered() {
			d = check.DiffOrdered("on-vs-off", outputs[1], outputs[0], check.FormatRow)
		} else {
			d = check.DiffMultiset("on-vs-off", outputs[1], outputs[0], check.FormatRow)
		}
		if !d.OK {
			t.Fatalf("optimizer changed the result: %s", d)
		}
	})
}
