package query

import (
	"fmt"
	"strings"
)

// Explain renders the physical plan tree with per-operator estimated
// rows and, once the plan has executed, the actual rows observed.
func (p *Plan) Explain() string {
	var b strings.Builder
	mode := "optimizer=off"
	if p.Opts.Optimize {
		mode = "optimizer=on"
	}
	fmt.Fprintf(&b, "plan (%s)\n", mode)
	var walk func(n *Node, prefix string, last bool)
	walk = func(n *Node, prefix string, last bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		actual := "-"
		if n.Ran() {
			actual = fmt.Sprintf("%d", n.Actual())
		}
		fmt.Fprintf(&b, "%s%s%s %s est=%.0f actual=%s\n", prefix, branch, n.Kind, n.Detail, n.Est, actual)
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1)
		}
	}
	walk(p.Root, "", true)
	return b.String()
}

// FindNodes returns every node of the given kind, depth-first — test
// hooks assert on join strategy and scan pushdown without parsing the
// rendered tree.
func (p *Plan) FindNodes(kind string) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == kind {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}
