package query

import (
	"fmt"

	"repro/internal/table"
)

// Op is a logical plan operator kind.
type Op int

// Logical operators.
const (
	OpScan Op = iota
	OpFilter
	OpProject
	OpJoin
	OpAgg
	OpSort
	OpLimit
)

func (o Op) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpFilter:
		return "Filter"
	case OpProject:
		return "Project"
	case OpJoin:
		return "Join"
	case OpAgg:
		return "Aggregate"
	case OpSort:
		return "Sort"
	case OpLimit:
		return "Limit"
	}
	return "?"
}

// Logical is one node of a logical query plan. It is deliberately a
// plain exported struct: the optimizer rewrites it, the differential
// oracle in internal/check re-evaluates it naively, and the fuzzer
// generates random instances of it.
type Logical struct {
	Op    Op
	Input *Logical // nil only for OpScan
	Right *Logical // OpJoin build side

	TableName string   // OpScan
	Pred      *Expr    // OpFilter
	Cols      []string // OpProject: input column names, in output order
	Aliases   []string // OpProject: output names (len == len(Cols))

	LeftCol, RightCol string // OpJoin equi-join columns

	Keys []string    // OpAgg group keys (empty = global aggregate)
	Aggs []table.Agg // OpAgg aggregate specs

	SortCol string // OpSort primary column (of the input schema)
	Desc    bool   // OpSort direction
	N       int    // OpLimit row cap
}

// Scan starts a fluent plan reading the named registered table.
func Scan(name string) *Logical { return &Logical{Op: OpScan, TableName: name} }

// Where appends a filter.
func (l *Logical) Where(pred *Expr) *Logical {
	return &Logical{Op: OpFilter, Input: l, Pred: pred}
}

// Project appends a projection; aliases nil keeps source names.
func (l *Logical) Project(cols []string, aliases []string) *Logical {
	if aliases == nil {
		aliases = append([]string(nil), cols...)
	}
	return &Logical{Op: OpProject, Input: l, Cols: cols, Aliases: aliases}
}

// Join appends an inner equi-join with right as the build side.
func (l *Logical) Join(right *Logical, leftCol, rightCol string) *Logical {
	return &Logical{Op: OpJoin, Input: l, Right: right, LeftCol: leftCol, RightCol: rightCol}
}

// GroupBy appends a grouped aggregation.
func (l *Logical) GroupBy(keys []string, aggs ...table.Agg) *Logical {
	return &Logical{Op: OpAgg, Input: l, Keys: keys, Aggs: aggs}
}

// OrderBy appends a sort on one output column. Ties break
// deterministically on all remaining columns ascending, so a sorted
// result has one valid order.
func (l *Logical) OrderBy(col string, desc bool) *Logical {
	return &Logical{Op: OpSort, Input: l, SortCol: col, Desc: desc}
}

// Limit appends a row cap.
func (l *Logical) Limit(n int) *Logical {
	return &Logical{Op: OpLimit, Input: l, N: n}
}

// aggName mirrors table.Agg naming: As, or "count" / "<op>_<col>".
func aggName(a table.Agg) string {
	if a.As != "" {
		return a.As
	}
	if a.Op == table.Count {
		return "count"
	}
	return fmt.Sprintf("%s_%s", a.Op, a.Col)
}

// aggOutType mirrors internal/table's aggregate result typing.
func aggOutType(a table.Agg, in table.Type) table.Type {
	switch a.Op {
	case table.Count:
		return table.Int64
	case table.Avg:
		return table.Float64
	default:
		return in
	}
}

// joinSchema reproduces table.HashJoin's output schema: left columns
// then right columns, "right_"-prefixed on name collisions.
func joinSchema(left, right table.Schema) table.Schema {
	out := append([]table.Col(nil), left.Cols...)
	for _, c := range right.Cols {
		name := c.Name
		if (table.Schema{Cols: out}).Index(name) >= 0 {
			name = "right_" + name
		}
		out = append(out, table.Col{Name: name, Type: c.Type})
	}
	return table.Schema{Cols: out}
}

// OutSchema computes the plan's output schema against a resolver for
// base-table schemas, validating column references along the way. The
// differential oracle and the planner share it so both agree on shape.
func (l *Logical) OutSchema(base func(name string) (table.Schema, error)) (table.Schema, error) {
	switch l.Op {
	case OpScan:
		return base(l.TableName)
	case OpFilter:
		in, err := l.Input.OutSchema(base)
		if err != nil {
			return table.Schema{}, err
		}
		for _, c := range l.Pred.Cols() {
			if in.Index(c) < 0 {
				return table.Schema{}, fmt.Errorf("query: filter references unknown column %q", c)
			}
		}
		return in, nil
	case OpProject:
		in, err := l.Input.OutSchema(base)
		if err != nil {
			return table.Schema{}, err
		}
		if len(l.Cols) == 0 || len(l.Cols) != len(l.Aliases) {
			return table.Schema{}, fmt.Errorf("query: project has %d cols, %d aliases", len(l.Cols), len(l.Aliases))
		}
		cols := make([]table.Col, len(l.Cols))
		seen := map[string]bool{}
		for i, c := range l.Cols {
			j, err := in.MustIndex(c)
			if err != nil {
				return table.Schema{}, err
			}
			if seen[l.Aliases[i]] {
				return table.Schema{}, fmt.Errorf("query: duplicate output column %q", l.Aliases[i])
			}
			seen[l.Aliases[i]] = true
			cols[i] = table.Col{Name: l.Aliases[i], Type: in.Cols[j].Type}
		}
		return table.Schema{Cols: cols}, nil
	case OpJoin:
		left, err := l.Input.OutSchema(base)
		if err != nil {
			return table.Schema{}, err
		}
		right, err := l.Right.OutSchema(base)
		if err != nil {
			return table.Schema{}, err
		}
		li, err := left.MustIndex(l.LeftCol)
		if err != nil {
			return table.Schema{}, fmt.Errorf("query: join left column: %w", err)
		}
		ri, err := right.MustIndex(l.RightCol)
		if err != nil {
			return table.Schema{}, fmt.Errorf("query: join right column: %w", err)
		}
		if left.Cols[li].Type != right.Cols[ri].Type {
			return table.Schema{}, fmt.Errorf("query: join column types differ: %v vs %v",
				left.Cols[li].Type, right.Cols[ri].Type)
		}
		return joinSchema(left, right), nil
	case OpAgg:
		in, err := l.Input.OutSchema(base)
		if err != nil {
			return table.Schema{}, err
		}
		if len(l.Aggs) == 0 {
			return table.Schema{}, fmt.Errorf("query: aggregate with no aggregate functions")
		}
		cols := make([]table.Col, 0, len(l.Keys)+len(l.Aggs))
		for _, k := range l.Keys {
			j, err := in.MustIndex(k)
			if err != nil {
				return table.Schema{}, fmt.Errorf("query: group key: %w", err)
			}
			cols = append(cols, in.Cols[j])
		}
		for _, a := range l.Aggs {
			inType := table.Int64
			if a.Op != table.Count {
				j, err := in.MustIndex(a.Col)
				if err != nil {
					return table.Schema{}, fmt.Errorf("query: aggregate input: %w", err)
				}
				inType = in.Cols[j].Type
				if inType == table.String && a.Op != table.Min && a.Op != table.Max {
					return table.Schema{}, fmt.Errorf("query: %s over string column %q", a.Op, a.Col)
				}
			}
			cols = append(cols, table.Col{Name: aggName(a), Type: aggOutType(a, inType)})
		}
		seen := map[string]bool{}
		for _, c := range cols {
			if seen[c.Name] {
				return table.Schema{}, fmt.Errorf("query: duplicate aggregate output column %q", c.Name)
			}
			seen[c.Name] = true
		}
		return table.Schema{Cols: cols}, nil
	case OpSort:
		in, err := l.Input.OutSchema(base)
		if err != nil {
			return table.Schema{}, err
		}
		if in.Index(l.SortCol) < 0 {
			return table.Schema{}, fmt.Errorf("query: sort references unknown column %q", l.SortCol)
		}
		return in, nil
	case OpLimit:
		if l.N < 0 {
			return table.Schema{}, fmt.Errorf("query: LIMIT %d", l.N)
		}
		if l.Input.Op != OpSort {
			return table.Schema{}, fmt.Errorf("query: LIMIT requires ORDER BY directly below it")
		}
		return l.Input.OutSchema(base)
	}
	return table.Schema{}, fmt.Errorf("query: unknown operator %d", l.Op)
}

// Ordered reports whether the plan's output has a defined total order
// (a Sort at the top, possibly under a Limit). Differential checks use
// it to choose ordered vs multiset comparison.
func (l *Logical) Ordered() bool {
	switch l.Op {
	case OpSort:
		return true
	case OpLimit:
		return l.Input.Ordered()
	}
	return false
}

// clone deep-copies the plan tree (Exprs are shared — rewrites copy
// them on change).
func (l *Logical) clone() *Logical {
	if l == nil {
		return nil
	}
	cp := *l
	cp.Input = l.Input.clone()
	cp.Right = l.Right.clone()
	cp.Cols = append([]string(nil), l.Cols...)
	cp.Aliases = append([]string(nil), l.Aliases...)
	cp.Keys = append([]string(nil), l.Keys...)
	cp.Aggs = append([]table.Agg(nil), l.Aggs...)
	return &cp
}
