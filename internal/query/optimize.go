package query

import (
	"sort"
	"strings"

	"repro/internal/table"
)

// optimize rewrites a logical plan: filters pushed toward scans, star
// joins reordered cheapest-dimension-first. The rewritten plan is
// validated against the original's output schema; any failure falls
// back to the unrewritten plan, so optimization can only change cost,
// never results.
func (e *Env) optimize(lp *Logical) *Logical {
	resolver := e.Schema
	orig, err := lp.OutSchema(resolver)
	if err != nil {
		return lp
	}
	rw := e.pushFilters(lp.clone(), nil)
	rw = e.reorderJoins(rw)
	rw = e.narrowProjects(rw, orig.Names(), true)
	got, err := rw.OutSchema(resolver)
	if err != nil {
		return lp
	}
	if !sameSchema(orig, got) {
		return lp
	}
	return rw
}

func sameSchema(a, b table.Schema) bool {
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	return true
}

// pushFilters pushes the pending conjuncts (plus any Filter nodes met
// on the way) as close to the scans as possible.
func (e *Env) pushFilters(l *Logical, pending []*Expr) *Logical {
	wrap := func(node *Logical, stuck []*Expr) *Logical {
		if len(stuck) == 0 {
			return node
		}
		return &Logical{Op: OpFilter, Input: node, Pred: conjoin(stuck)}
	}
	switch l.Op {
	case OpFilter:
		return e.pushFilters(l.Input, append(append([]*Expr(nil), pending...), l.Pred.conjuncts()...))
	case OpScan:
		return wrap(l, pending)
	case OpSort:
		l.Input = e.pushFilters(l.Input, pending)
		return l
	case OpLimit:
		// A filter above LIMIT changes which rows survive the cap; never
		// push through it.
		l.Input = e.pushFilters(l.Input, nil)
		return wrap(l, pending)
	case OpProject:
		// A conjunct referencing only aliased pass-through columns moves
		// below the projection under the source names.
		toSource := map[string]string{}
		for i, c := range l.Cols {
			toSource[l.Aliases[i]] = c
		}
		var push, stuck []*Expr
		for _, c := range pending {
			ok := true
			for _, col := range c.Cols() {
				if _, mapped := toSource[col]; !mapped {
					ok = false
					break
				}
			}
			if ok {
				push = append(push, c.renamed(toSource))
			} else {
				stuck = append(stuck, c)
			}
		}
		l.Input = e.pushFilters(l.Input, push)
		return wrap(l, stuck)
	case OpAgg:
		// Conjuncts over group keys commute with aggregation.
		keys := map[string]bool{}
		for _, k := range l.Keys {
			keys[k] = true
		}
		var push, stuck []*Expr
		for _, c := range pending {
			ok := true
			for _, col := range c.Cols() {
				if !keys[col] {
					ok = false
					break
				}
			}
			if ok {
				push = append(push, c)
			} else {
				stuck = append(stuck, c)
			}
		}
		l.Input = e.pushFilters(l.Input, push)
		return wrap(l, stuck)
	case OpJoin:
		left, lerr := l.Input.OutSchema(e.Schema)
		right, rerr := l.Right.OutSchema(e.Schema)
		if lerr != nil || rerr != nil {
			l.Input = e.pushFilters(l.Input, nil)
			l.Right = e.pushFilters(l.Right, nil)
			return wrap(l, pending)
		}
		var toLeft, toRight, stuck []*Expr
		for _, c := range pending {
			if side, ok := joinSide(c, left, right); ok {
				if side == 0 {
					toLeft = append(toLeft, c)
				} else {
					toRight = append(toRight, stripRightPrefix(c, left, right))
				}
			} else {
				stuck = append(stuck, c)
			}
		}
		l.Input = e.pushFilters(l.Input, toLeft)
		l.Right = e.pushFilters(l.Right, toRight)
		return wrap(l, stuck)
	}
	return wrap(l, pending)
}

// joinSide classifies a conjunct against a join's inputs: 0 if every
// column resolves in the left schema, 1 if every column resolves in
// the right schema under the join's output naming ("right_"-prefixed
// on collision), not-ok otherwise.
func joinSide(c *Expr, left, right table.Schema) (int, bool) {
	inLeft, inRight := true, true
	for _, col := range c.Cols() {
		if left.Index(col) < 0 {
			inLeft = false
		}
		if rightSource(col, left, right) == "" {
			inRight = false
		}
	}
	if inLeft {
		return 0, true
	}
	if inRight {
		return 1, true
	}
	return 0, false
}

// rightSource maps a join-output column name back to the right input's
// column name, or "" if it does not come from the right side.
func rightSource(col string, left, right table.Schema) string {
	if strings.HasPrefix(col, "right_") {
		base := strings.TrimPrefix(col, "right_")
		if left.Index(base) >= 0 && right.Index(base) >= 0 {
			return base
		}
	}
	if left.Index(col) < 0 && right.Index(col) >= 0 {
		return col
	}
	return ""
}

func stripRightPrefix(c *Expr, left, right table.Schema) *Expr {
	m := map[string]string{}
	for _, col := range c.Cols() {
		if src := rightSource(col, left, right); src != "" && src != col {
			m[col] = src
		}
	}
	if len(m) == 0 {
		return c
	}
	return c.renamed(m)
}

// reorderJoins rewrites left-deep star-join chains so the smallest
// (post-filter) build sides join first, shrinking every intermediate
// result. Only chains whose probe columns all come from the base fact
// input are eligible — those joins commute. A projection restoring the
// original column order is added on top, and any rewrite that changes
// the output name set is abandoned.
func (e *Env) reorderJoins(l *Logical) *Logical {
	if l == nil {
		return nil
	}
	if l.Op != OpJoin {
		l.Input = e.reorderJoins(l.Input)
		l.Right = e.reorderJoins(l.Right)
		return l
	}
	// Collect the left-deep chain.
	type link struct {
		right             *Logical
		leftCol, rightCol string
	}
	var chain []link
	cur := l
	for cur.Op == OpJoin {
		chain = append(chain, link{cur.Right, cur.LeftCol, cur.RightCol})
		cur = cur.Input
	}
	reverse := func(in []link) []link {
		out := make([]link, len(in))
		for i, ln := range in {
			out[len(in)-1-i] = ln
		}
		return out
	}
	base := e.reorderJoins(cur)
	for i := range chain {
		chain[i].right = e.reorderJoins(chain[i].right)
	}
	rebuild := func(order []link) *Logical {
		out := base
		for _, ln := range order {
			out = out.Join(ln.right, ln.leftCol, ln.rightCol)
		}
		return out
	}
	if len(chain) < 2 {
		return rebuild(reverse(chain))
	}
	baseSchema, err := base.OutSchema(e.Schema)
	if err != nil {
		return rebuild(reverse(chain))
	}
	for _, ln := range chain {
		if baseSchema.Index(ln.leftCol) < 0 {
			return rebuild(reverse(chain)) // probe col from an earlier join: order is load-bearing
		}
	}
	origSchema, err := rebuild(reverse(chain)).OutSchema(e.Schema)
	if err != nil {
		return rebuild(reverse(chain))
	}
	ordered := reverse(chain)
	sort.SliceStable(ordered, func(i, j int) bool {
		return e.chainEst(ordered[i].right) < e.chainEst(ordered[j].right)
	})
	rw := rebuild(ordered)
	rwSchema, err := rw.OutSchema(e.Schema)
	if err != nil || !sameNameSet(origSchema, rwSchema) {
		return rebuild(reverse(chain))
	}
	if sameSchema(origSchema, rwSchema) {
		return rw
	}
	names := origSchema.Names()
	return rw.Project(names, names)
}

func (e *Env) chainEst(l *Logical) float64 {
	est, err := e.estimatePlan(l)
	if err != nil {
		return 0
	}
	return est.rows
}

// narrowProjects drops projection items nothing above consumes — the
// projection-pruning half of pushdown. demanded lists the output
// columns the parent reads; the root keeps its full output. In-place
// on an already-cloned tree.
func (e *Env) narrowProjects(l *Logical, demanded []string, root bool) *Logical {
	switch l.Op {
	case OpScan:
		return l
	case OpProject:
		if !root {
			set := map[string]bool{}
			for _, d := range demanded {
				set[d] = true
			}
			var cols, aliases []string
			for i, a := range l.Aliases {
				if set[a] {
					cols = append(cols, l.Cols[i])
					aliases = append(aliases, a)
				}
			}
			if len(cols) == 0 && len(l.Cols) > 0 {
				// Keep one column so the relation still has rows (a parent
				// may count them without reading any column).
				cols, aliases = l.Cols[:1], l.Aliases[:1]
			}
			l.Cols, l.Aliases = cols, aliases
		}
		l.Input = e.narrowProjects(l.Input, appendMissing(nil, l.Cols), false)
		return l
	case OpFilter:
		next := appendMissing(demanded, l.Pred.Cols())
		l.Input = e.narrowProjects(l.Input, next, false)
		return l
	case OpJoin:
		left, lerr := l.Input.OutSchema(e.Schema)
		right, rerr := l.Right.OutSchema(e.Schema)
		if lerr != nil || rerr != nil {
			return l
		}
		var toLeft, toRight []string
		for _, d := range demanded {
			if left.Index(d) >= 0 {
				toLeft = append(toLeft, d)
			} else if src := rightSource(d, left, right); src != "" {
				toRight = append(toRight, src)
				if src != d {
					// "right_x" exists only while the left side also emits x.
					toLeft = append(toLeft, src)
				}
			}
		}
		l.Input = e.narrowProjects(l.Input, appendMissing(toLeft, []string{l.LeftCol}), false)
		l.Right = e.narrowProjects(l.Right, appendMissing(toRight, []string{l.RightCol}), false)
		return l
	case OpAgg:
		next := append([]string(nil), l.Keys...)
		for _, a := range l.Aggs {
			if a.Op != table.Count {
				next = appendMissing(next, []string{a.Col})
			}
		}
		l.Input = e.narrowProjects(l.Input, next, false)
		return l
	case OpSort:
		// The compiled sort tiebreaks on every input column, so it
		// consumes its whole input schema.
		if in, err := l.Input.OutSchema(e.Schema); err == nil {
			l.Input = e.narrowProjects(l.Input, in.Names(), false)
		}
		return l
	case OpLimit:
		l.Input = e.narrowProjects(l.Input, demanded, root)
		return l
	}
	return l
}

func sameNameSet(a, b table.Schema) bool {
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	set := map[string]int{}
	for _, c := range a.Cols {
		set[c.Name]++
	}
	for _, c := range b.Cols {
		set[c.Name]--
		if set[c.Name] < 0 {
			return false
		}
	}
	return true
}
