package query

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/table"
)

// Relation is one generated base table.
type Relation struct {
	Name   string
	Schema table.Schema
	Rows   []table.Row
}

// GenStar builds a TPC-style star schema: a sales fact plus customer,
// product and dates dimensions, and a shipments side-fact sized with
// the fact table (so fact-to-fact joins are genuinely large-large and
// the optimizer must shuffle them while broadcasting the small
// dimensions). Money amounts are multiples of 0.25 with bounded
// magnitude, so float sums are exact in any summation order — the
// property the differential oracle relies on.
func GenStar(seed uint64, factRows, custN, prodN, dateN int) []Relation {
	gen := rng.New(seed)
	customer := Relation{
		Name: "customer",
		Schema: table.Schema{Cols: []table.Col{
			{Name: "cust_id", Type: table.Int64},
			{Name: "cust_region", Type: table.String},
			{Name: "cust_segment", Type: table.String},
		}},
	}
	regions := []string{"amer", "emea", "apac", "latam"}
	segments := []string{"consumer", "corporate", "home_office"}
	for i := 0; i < custN; i++ {
		customer.Rows = append(customer.Rows, table.Row{
			int64(i), regions[gen.Intn(len(regions))], segments[gen.Intn(len(segments))],
		})
	}
	product := Relation{
		Name: "product",
		Schema: table.Schema{Cols: []table.Col{
			{Name: "prod_id", Type: table.Int64},
			{Name: "prod_category", Type: table.String},
			{Name: "prod_brand", Type: table.String},
		}},
	}
	categories := []string{"tools", "toys", "food", "books", "garden"}
	for i := 0; i < prodN; i++ {
		product.Rows = append(product.Rows, table.Row{
			int64(i), categories[gen.Intn(len(categories))], fmt.Sprintf("b%d", gen.Intn(8)),
		})
	}
	dates := Relation{
		Name: "dates",
		Schema: table.Schema{Cols: []table.Col{
			{Name: "date_id", Type: table.Int64},
			{Name: "date_month", Type: table.Int64},
			{Name: "date_quarter", Type: table.String},
		}},
	}
	for i := 0; i < dateN; i++ {
		month := int64(i % 12)
		dates.Rows = append(dates.Rows, table.Row{
			int64(i), month, fmt.Sprintf("Q%d", month/3+1),
		})
	}
	sales := Relation{
		Name: "sales",
		Schema: table.Schema{Cols: []table.Col{
			{Name: "cust_id", Type: table.Int64},
			{Name: "prod_id", Type: table.Int64},
			{Name: "date_id", Type: table.Int64},
			{Name: "units", Type: table.Int64},
			{Name: "amount", Type: table.Float64},
		}},
	}
	for i := 0; i < factRows; i++ {
		sales.Rows = append(sales.Rows, table.Row{
			int64(gen.Intn(custN)),
			int64(gen.Intn(prodN)),
			int64(gen.Intn(dateN)),
			int64(1 + gen.Intn(10)),
			float64(gen.Intn(40000)) * 0.25,
		})
	}
	shipments := Relation{
		Name: "shipments",
		Schema: table.Schema{Cols: []table.Col{
			{Name: "cust_id", Type: table.Int64},
			{Name: "carrier", Type: table.String},
			{Name: "ship_cost", Type: table.Float64},
		}},
	}
	carriers := []string{"air", "ground", "sea"}
	for i := 0; i < factRows/2; i++ {
		shipments.Rows = append(shipments.Rows, table.Row{
			int64(gen.Intn(custN)),
			carriers[gen.Intn(len(carriers))],
			float64(gen.Intn(4000)) * 0.25,
		})
	}
	return []Relation{customer, product, dates, sales, shipments}
}

// RegisterStar loads every relation into the environment.
func RegisterStar(env *Env, rels []Relation, parts int) error {
	for _, r := range rels {
		if err := env.Register(r.Name, r.Schema, r.Rows, parts); err != nil {
			return err
		}
	}
	return nil
}

// StarQuery is one entry of the E-SQL differential suite.
type StarQuery struct {
	ID   string
	SQL  string
	Note string
}

// StarQueries is the TPC-derived suite over GenStar's schema: scans
// with pushdown, broadcast and shuffle joins, star joins over several
// dimensions, partial aggregation, top-k sorts and a global aggregate.
func StarQueries() []StarQuery {
	return []StarQuery{
		{
			ID:   "q1_pushdown",
			SQL:  "SELECT cust_id, units FROM sales WHERE units >= 8",
			Note: "predicate+projection pushdown into the columnar scan",
		},
		{
			ID:   "q2_topk_revenue",
			SQL:  "SELECT cust_id, SUM(amount) AS revenue FROM sales GROUP BY cust_id ORDER BY revenue DESC LIMIT 10",
			Note: "partial aggregation before the shuffle, then top-k",
		},
		{
			ID:   "q3_dim_join",
			SQL:  "SELECT prod_category, SUM(units) AS total_units FROM sales JOIN product ON prod_id = prod_id GROUP BY prod_category ORDER BY prod_category",
			Note: "small dimension join: stats pick broadcast",
		},
		{
			ID:   "q4_star_filtered",
			SQL:  "SELECT cust_region, prod_category, SUM(amount) AS revenue FROM sales JOIN customer ON cust_id = cust_id JOIN product ON prod_id = prod_id WHERE prod_brand != 'b0' AND units >= 3 GROUP BY cust_region, prod_category ORDER BY revenue DESC LIMIT 5",
			Note: "two-dimension star join with filters pushed to both scans",
		},
		{
			ID:   "q5_fact_fact",
			SQL:  "SELECT cust_id, SUM(ship_cost) AS cost FROM sales JOIN shipments ON cust_id = cust_id GROUP BY cust_id ORDER BY cost DESC LIMIT 10",
			Note: "large-large join: stats pick a shuffle join",
		},
		{
			ID:   "q6_quarter_segment",
			SQL:  "SELECT date_quarter, cust_segment, SUM(units) AS total_units FROM sales JOIN dates ON date_id = date_id JOIN customer ON cust_id = cust_id WHERE date_quarter = 'Q1' GROUP BY date_quarter, cust_segment ORDER BY cust_segment",
			Note: "three-table star join; the quarter filter lands on the dates dimension scan",
		},
		{
			ID:   "q7_residual_or",
			SQL:  "SELECT prod_id, units, amount FROM sales WHERE units >= 8 OR amount < 100.0 ORDER BY amount DESC LIMIT 20",
			Note: "multi-column OR stays as a residual filter above the scan",
		},
		{
			ID:   "q8_global_agg",
			SQL:  "SELECT COUNT(*) AS n, SUM(amount) AS revenue, MIN(units) AS min_units, MAX(units) AS max_units FROM sales WHERE cust_id >= 10",
			Note: "global aggregate with no group keys",
		},
	}
}
