package query

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/table"
)

// ColStats summarizes one column for the optimizer.
type ColStats struct {
	Distinct int64
	Min, Max any // nil for an empty table
}

// Stats is a per-table statistics block gathered at load time.
type Stats struct {
	Rows int64
	Cols map[string]ColStats
}

// Analyze computes exact row counts, per-column distinct counts and
// min/max over in-memory rows. Floats are keyed by IEEE bits so the
// distinct count matches the engine's join/group equality.
func Analyze(schema table.Schema, rows []table.Row) *Stats {
	st := &Stats{Rows: int64(len(rows)), Cols: make(map[string]ColStats, len(schema.Cols))}
	for c, col := range schema.Cols {
		distinct := map[any]bool{}
		var min, max any
		for _, r := range rows {
			v := r[c]
			if f, ok := v.(float64); ok {
				distinct[math.Float64bits(f)] = true
			} else {
				distinct[v] = true
			}
			if min == nil || cmpAny(v, min) < 0 {
				min = v
			}
			if max == nil || cmpAny(v, max) > 0 {
				max = v
			}
		}
		st.Cols[col.Name] = ColStats{Distinct: int64(len(distinct)), Min: min, Max: max}
	}
	return st
}

// source is one registered base table: columnar storage for the
// engine, raw rows for the differential oracle, stats for the planner.
type source struct {
	schema table.Schema
	data   *table.ColumnarTable
	rows   []table.Row
	stats  *Stats
}

// Env is the query environment: an engine to run on, a metrics
// registry for scan counters, and a catalog of registered tables.
type Env struct {
	Eng    *core.Engine
	Reg    *metrics.Registry
	tables map[string]*source
}

// NewEnv builds an environment. reg may be nil (counters then land on
// the engine's registry, or nowhere if that is nil too).
func NewEnv(eng *core.Engine, reg *metrics.Registry) *Env {
	if reg == nil && eng != nil {
		reg = eng.Reg
	}
	return &Env{Eng: eng, Reg: reg, tables: map[string]*source{}}
}

// Register loads a table into the catalog: validates and encodes the
// rows columnar across parts partitions and analyzes statistics.
func (e *Env) Register(name string, schema table.Schema, rows []table.Row, parts int) error {
	if _, dup := e.tables[name]; dup {
		return fmt.Errorf("query: table %q already registered", name)
	}
	data, err := table.BuildColumnar(schema, rows, parts)
	if err != nil {
		return fmt.Errorf("query: register %q: %w", name, err)
	}
	e.tables[name] = &source{schema: schema, data: data, rows: rows, stats: Analyze(schema, rows)}
	return nil
}

// Schema returns a registered table's schema.
func (e *Env) Schema(name string) (table.Schema, error) {
	s, ok := e.tables[name]
	if !ok {
		return table.Schema{}, fmt.Errorf("query: unknown table %q", name)
	}
	return s.schema, nil
}

// Rows returns a registered table's raw rows (the oracle's input).
func (e *Env) Rows(name string) ([]table.Row, error) {
	s, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("query: unknown table %q", name)
	}
	return s.rows, nil
}

// Tables lists registered table names (unordered).
func (e *Env) Tables() []string {
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	return out
}

// Stats returns a registered table's statistics.
func (e *Env) Stats(name string) (*Stats, error) {
	s, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("query: unknown table %q", name)
	}
	return s.stats, nil
}

// ---------------------------------------------------------------------------
// Cardinality estimation

// estimate is the planner's guess about one plan node's output: a row
// count plus per-output-column stats for downstream selectivity math.
type estimate struct {
	rows float64
	cols map[string]ColStats
}

const defaultSelectivity = 1.0 / 3

// selectivity estimates the fraction of rows a predicate keeps.
func (est *estimate) selectivity(e *Expr) float64 {
	if e == nil {
		return 1
	}
	switch e.Kind {
	case ExprAnd:
		return est.selectivity(e.Left) * est.selectivity(e.Right)
	case ExprOr:
		a, b := est.selectivity(e.Left), est.selectivity(e.Right)
		return a + b - a*b
	}
	cs, ok := est.cols[e.Col]
	if !ok || cs.Distinct == 0 {
		return defaultSelectivity
	}
	switch e.Cmp {
	case Eq:
		return 1 / float64(cs.Distinct)
	case Ne:
		return 1 - 1/float64(cs.Distinct)
	case Lt, Le, Gt, Ge:
		return rangeFraction(e.Cmp, cs.Min, cs.Max, e.Val)
	}
	return defaultSelectivity
}

// rangeFraction interpolates a range predicate against [min, max] for
// numeric columns; strings fall back to the default selectivity.
func rangeFraction(op CmpOp, min, max, val any) float64 {
	lo, okLo := toFloat(min)
	hi, okHi := toFloat(max)
	v, okV := toFloat(val)
	if !okLo || !okHi || !okV || hi <= lo {
		return defaultSelectivity
	}
	frac := (v - lo) / (hi - lo) // fraction below v
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if op == Gt || op == Ge {
		frac = 1 - frac
	}
	return frac
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		if math.IsNaN(x) {
			return 0, false
		}
		return x, true
	}
	return 0, false
}

// estimatePlan walks the logical tree computing row-count estimates.
// It mirrors OutSchema's column naming so post-join and post-project
// references resolve.
func (e *Env) estimatePlan(l *Logical) (estimate, error) {
	switch l.Op {
	case OpScan:
		src, ok := e.tables[l.TableName]
		if !ok {
			return estimate{}, fmt.Errorf("query: unknown table %q", l.TableName)
		}
		cols := make(map[string]ColStats, len(src.stats.Cols))
		for k, v := range src.stats.Cols {
			cols[k] = v
		}
		return estimate{rows: float64(src.stats.Rows), cols: cols}, nil
	case OpFilter:
		in, err := e.estimatePlan(l.Input)
		if err != nil {
			return estimate{}, err
		}
		out := estimate{rows: in.rows * in.selectivity(l.Pred), cols: capDistinct(in.cols, in.rows*in.selectivity(l.Pred))}
		return out, nil
	case OpProject:
		in, err := e.estimatePlan(l.Input)
		if err != nil {
			return estimate{}, err
		}
		cols := make(map[string]ColStats, len(l.Cols))
		for i, c := range l.Cols {
			if cs, ok := in.cols[c]; ok {
				cols[l.Aliases[i]] = cs
			}
		}
		return estimate{rows: in.rows, cols: cols}, nil
	case OpJoin:
		left, err := e.estimatePlan(l.Input)
		if err != nil {
			return estimate{}, err
		}
		right, err := e.estimatePlan(l.Right)
		if err != nil {
			return estimate{}, err
		}
		d := 1.0
		if cs, ok := left.cols[l.LeftCol]; ok && float64(cs.Distinct) > d {
			d = float64(cs.Distinct)
		}
		if cs, ok := right.cols[l.RightCol]; ok && float64(cs.Distinct) > d {
			d = float64(cs.Distinct)
		}
		rows := left.rows * right.rows / d
		cols := make(map[string]ColStats, len(left.cols)+len(right.cols))
		for k, v := range left.cols {
			cols[k] = v
		}
		// Right column names may be prefixed on collision; re-derive from
		// the schema convention: a right column collides iff present left.
		for k, v := range right.cols {
			if _, collides := left.cols[k]; collides {
				cols["right_"+k] = v
			} else {
				cols[k] = v
			}
		}
		return estimate{rows: rows, cols: capDistinct(cols, rows)}, nil
	case OpAgg:
		in, err := e.estimatePlan(l.Input)
		if err != nil {
			return estimate{}, err
		}
		groups := 1.0
		for _, k := range l.Keys {
			if cs, ok := in.cols[k]; ok && cs.Distinct > 0 {
				groups *= float64(cs.Distinct)
			}
		}
		if groups > in.rows {
			groups = in.rows
		}
		if len(l.Keys) == 0 {
			groups = 1
			if in.rows == 0 {
				groups = 0
			}
		}
		cols := make(map[string]ColStats, len(l.Keys)+len(l.Aggs))
		for _, k := range l.Keys {
			if cs, ok := in.cols[k]; ok {
				cols[k] = cs
			}
		}
		for _, a := range l.Aggs {
			cols[aggName(a)] = ColStats{Distinct: int64(groups)}
		}
		return estimate{rows: groups, cols: cols}, nil
	case OpSort:
		return e.estimatePlan(l.Input)
	case OpLimit:
		in, err := e.estimatePlan(l.Input)
		if err != nil {
			return estimate{}, err
		}
		if float64(l.N) < in.rows {
			in.rows = float64(l.N)
		}
		return in, nil
	}
	return estimate{}, fmt.Errorf("query: unknown operator %d", l.Op)
}

// capDistinct bounds every column's distinct count by the row estimate.
func capDistinct(cols map[string]ColStats, rows float64) map[string]ColStats {
	out := make(map[string]ColStats, len(cols))
	cap := int64(rows)
	if rows > 0 && cap == 0 {
		cap = 1
	}
	for k, v := range cols {
		if v.Distinct > cap {
			v.Distinct = cap
		}
		out[k] = v
	}
	return out
}
