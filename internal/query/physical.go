package query

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/table"
)

// Options control planning.
type Options struct {
	// Optimize enables pushdown, join reordering and stats-driven join
	// strategy selection. Off, every operator compiles naively — the
	// baseline the differential and perf suites compare against.
	Optimize bool
	// BroadcastRows is the largest estimated build side broadcast
	// instead of shuffled (0 = DefaultBroadcastRows).
	BroadcastRows int64
	// Parts is the shuffle fan-out for joins, aggregates and sorts
	// (0 = DefaultParts).
	Parts int
}

// Planning defaults.
const (
	DefaultBroadcastRows = 5000
	DefaultParts         = 4
)

// Node is one physical operator with its cost estimate and, after
// execution, the observed row count.
type Node struct {
	Kind     string // "scan", "filter", "project", "join[broadcast]", "join[shuffle]", "agg", "sort", "limit"
	Detail   string
	Est      float64
	Children []*Node

	actual int64
	ran    atomic.Bool
	exec   func() (*table.Table, error)
}

// Actual returns the rows observed flowing out of this operator in the
// last execution (counted on the workers; retried tasks can overcount
// under fault injection).
func (n *Node) Actual() int64 { return atomic.LoadInt64(&n.actual) }

// Ran reports whether the node has executed at least once.
func (n *Node) Ran() bool { return n.ran.Load() }

func (n *Node) snapshotActuals(into map[*Node]int64) {
	into[n] = atomic.LoadInt64(&n.actual)
	for _, c := range n.Children {
		c.snapshotActuals(into)
	}
}

func (n *Node) restoreActuals(from map[*Node]int64) {
	atomic.StoreInt64(&n.actual, from[n])
	for _, c := range n.Children {
		c.restoreActuals(from)
	}
}

// Plan is a compiled query ready to execute.
type Plan struct {
	Root    *Node
	Schema  table.Schema
	Logical *Logical // the original (pre-rewrite) logical plan
	Opts    Options

	env   *Env
	limit int // driver-side row cap; -1 none
}

// Build compiles a logical plan onto the dataflow engine. With
// opts.Optimize set, filters are pushed into the columnar scans (with
// zone-map pruning), projections pruned to the needed columns, star
// joins reordered and broadcast joins chosen for small build sides.
func (e *Env) Build(lp *Logical, opts Options) (*Plan, error) {
	if opts.BroadcastRows == 0 {
		opts.BroadcastRows = DefaultBroadcastRows
	}
	if opts.Parts == 0 {
		opts.Parts = DefaultParts
	}
	want, err := lp.OutSchema(e.Schema)
	if err != nil {
		return nil, err
	}
	run := lp
	if opts.Optimize {
		run = e.optimize(lp)
	}
	needs := map[*Logical][]string{}
	if opts.Optimize {
		runSchema, err := run.OutSchema(e.Schema)
		if err != nil {
			return nil, err
		}
		if err := e.scanNeeds(run, runSchema.Names(), needs); err != nil {
			return nil, err
		}
	}
	c := &compiler{env: e, opts: opts, needs: needs}
	node, schema, err := c.compile(run)
	if err != nil {
		return nil, err
	}
	// Restore the original output schema if rewrites left extra columns
	// or a different order behind.
	if !sameSchema(schema, want) {
		inner := node
		node = &Node{
			Kind:     "project",
			Detail:   "restore output " + strings.Join(want.Names(), ", "),
			Est:      inner.Est,
			Children: []*Node{inner},
		}
		node.exec = c.counted(node, func() (*table.Table, error) {
			t, err := inner.exec()
			if err != nil {
				return nil, err
			}
			return t.Select(want.Names()...)
		})
	}
	limit := -1
	if run.Op == OpLimit {
		limit = run.N
	}
	return &Plan{Root: node, Schema: want, Logical: lp, Opts: opts, env: e, limit: limit}, nil
}

// Execute runs the plan and returns the result rows. Per-node actual
// row counts reset on every call.
func (p *Plan) Execute() ([]table.Row, error) {
	var reset func(n *Node)
	reset = func(n *Node) {
		atomic.StoreInt64(&n.actual, 0)
		n.ran.Store(false)
		for _, c := range n.Children {
			reset(c)
		}
	}
	reset(p.Root)
	t, err := p.Root.exec()
	if err != nil {
		return nil, err
	}
	rows, err := t.Collect()
	if err != nil {
		return nil, err
	}
	if p.limit >= 0 && len(rows) > p.limit {
		rows = rows[:p.limit]
	}
	return rows, nil
}

// Ordered reports whether Execute's row order is meaningful.
func (p *Plan) Ordered() bool { return p.Logical.Ordered() }

type compiler struct {
	env   *Env
	opts  Options
	needs map[*Logical][]string
}

// counted wraps a node's table so every row flowing out bumps the
// node's actual counter — EXPLAIN's "actual" column, measured with the
// public Table API rather than engine hooks.
func (c *compiler) counted(n *Node, build func() (*table.Table, error)) func() (*table.Table, error) {
	return func() (*table.Table, error) {
		t, err := build()
		if err != nil {
			return nil, err
		}
		n.ran.Store(true)
		return t.Where(func(table.Row) bool {
			atomic.AddInt64(&n.actual, 1)
			return true
		}), nil
	}
}

func (c *compiler) est(l *Logical) float64 {
	est, err := c.env.estimatePlan(l)
	if err != nil {
		return 0
	}
	return est.rows
}

func (c *compiler) compile(l *Logical) (*Node, table.Schema, error) {
	schema, err := l.OutSchema(c.env.Schema)
	if err != nil {
		return nil, table.Schema{}, err
	}
	// compile returns the schema the compiled table ACTUALLY has — a
	// pruned scan emits fewer columns than the logical schema, and
	// residual filter columns can ride along. Every returned name still
	// resolves the logical references above (pruning never drops a
	// demanded column), and Build restores the exact output schema at
	// the root.
	switch l.Op {
	case OpScan:
		return c.compileScan(l, nil)
	case OpFilter:
		if c.opts.Optimize && l.Input.Op == OpScan {
			return c.compileScan(l.Input, l.Pred)
		}
		child, childSchema, err := c.compile(l.Input)
		if err != nil {
			return nil, table.Schema{}, err
		}
		pred, err := l.Pred.Bind(childSchema)
		if err != nil {
			return nil, table.Schema{}, err
		}
		n := &Node{Kind: "filter", Detail: l.Pred.String(), Est: c.est(l), Children: []*Node{child}}
		n.exec = c.counted(n, func() (*table.Table, error) {
			t, err := child.exec()
			if err != nil {
				return nil, err
			}
			return t.Where(pred), nil
		})
		return n, childSchema, nil
	case OpProject:
		child, _, err := c.compile(l.Input)
		if err != nil {
			return nil, table.Schema{}, err
		}
		seen := map[string]bool{}
		for _, col := range l.Cols {
			if seen[col] {
				return nil, table.Schema{}, fmt.Errorf("query: column %q selected twice", col)
			}
			seen[col] = true
		}
		rename := map[string]string{}
		for i, col := range l.Cols {
			if l.Aliases[i] != col {
				rename[col] = l.Aliases[i]
			}
		}
		cols := append([]string(nil), l.Cols...)
		n := &Node{Kind: "project", Detail: strings.Join(schema.Names(), ", "), Est: c.est(l), Children: []*Node{child}}
		n.exec = c.counted(n, func() (*table.Table, error) {
			t, err := child.exec()
			if err != nil {
				return nil, err
			}
			t, err = t.Select(cols...)
			if err != nil {
				return nil, err
			}
			if len(rename) == 0 {
				return t, nil
			}
			return t.Renamed(rename)
		})
		return n, schema, nil
	case OpJoin:
		left, leftSchema, err := c.compile(l.Input)
		if err != nil {
			return nil, table.Schema{}, err
		}
		right, rightSchema, err := c.compile(l.Right)
		if err != nil {
			return nil, table.Schema{}, err
		}
		estLeft, estRight := c.est(l.Input), c.est(l.Right)
		broadcast := c.opts.Optimize && estRight <= float64(c.opts.BroadcastRows) && estRight <= estLeft
		kind := "join[shuffle]"
		if broadcast {
			kind = "join[broadcast]"
		}
		leftCol, rightCol, parts := l.LeftCol, l.RightCol, c.opts.Parts
		n := &Node{
			Kind:     kind,
			Detail:   fmt.Sprintf("%s = %s", leftCol, rightCol),
			Est:      c.est(l),
			Children: []*Node{left, right},
		}
		n.exec = c.counted(n, func() (*table.Table, error) {
			lt, err := left.exec()
			if err != nil {
				return nil, err
			}
			rt, err := right.exec()
			if err != nil {
				return nil, err
			}
			if broadcast {
				return lt.BroadcastJoin(rt, leftCol, rightCol)
			}
			return lt.HashJoin(rt, leftCol, rightCol, parts)
		})
		return n, joinSchema(leftSchema, rightSchema), nil
	case OpAgg:
		child, _, err := c.compile(l.Input)
		if err != nil {
			return nil, table.Schema{}, err
		}
		keys, aggs, parts := append([]string(nil), l.Keys...), append([]table.Agg(nil), l.Aggs...), c.opts.Parts
		var details []string
		for _, a := range l.Aggs {
			if a.Op == table.Count {
				details = append(details, "count(*) AS "+aggName(a))
			} else {
				details = append(details, fmt.Sprintf("%s(%s) AS %s", a.Op, a.Col, aggName(a)))
			}
		}
		n := &Node{
			Kind:     "agg",
			Detail:   fmt.Sprintf("keys=[%s] %s", strings.Join(keys, ", "), strings.Join(details, ", ")),
			Est:      c.est(l),
			Children: []*Node{child},
		}
		n.exec = c.counted(n, func() (*table.Table, error) {
			t, err := child.exec()
			if err != nil {
				return nil, err
			}
			return t.GroupBy(keys...).Agg(parts, aggs...)
		})
		return n, schema, nil
	case OpSort:
		child, childSchema, err := c.compile(l.Input)
		if err != nil {
			return nil, table.Schema{}, err
		}
		inWant, err := l.Input.OutSchema(c.env.Schema)
		if err != nil {
			return nil, table.Schema{}, err
		}
		// Sort on the primary column, breaking ties on every remaining
		// column ascending: a total order over distinct rows, so the
		// oracle can compare ordered output deterministically.
		cols := []string{l.SortCol}
		desc := []bool{l.Desc}
		for _, col := range inWant.Names() {
			if col != l.SortCol {
				cols = append(cols, col)
				desc = append(desc, false)
			}
		}
		parts := c.opts.Parts
		dir := "asc"
		if l.Desc {
			dir = "desc"
		}
		n := &Node{Kind: "sort", Detail: fmt.Sprintf("%s %s", l.SortCol, dir), Est: c.est(l), Children: []*Node{child}}
		n.exec = c.counted(n, func() (*table.Table, error) {
			t, err := child.exec()
			if err != nil {
				return nil, err
			}
			if t, err = conform(t, inWant, childSchema); err != nil {
				return nil, err
			}
			// OrderByCols runs an eager range-sampling job over the child
			// before the sorted shuffle; roll the subtree's actual counters
			// back so they report the real pass only.
			saved := map[*Node]int64{}
			child.snapshotActuals(saved)
			sorted, err := t.OrderByCols(cols, desc, parts)
			if err != nil {
				return nil, err
			}
			child.restoreActuals(saved)
			return sorted, nil
		})
		return n, schema, nil
	case OpLimit:
		child, childSchema, err := c.compile(l.Input)
		if err != nil {
			return nil, table.Schema{}, err
		}
		limit := l.N
		n := &Node{Kind: "limit", Detail: fmt.Sprintf("%d", limit), Est: c.est(l), Children: []*Node{child}}
		n.exec = c.counted(n, func() (*table.Table, error) {
			t, err := child.exec()
			if err != nil {
				return nil, err
			}
			return t.Head(limit)
		})
		return n, childSchema, nil
	}
	return nil, table.Schema{}, fmt.Errorf("query: unknown operator %d", l.Op)
}

// conform projects t down to want's columns when the compiled child
// carries extras (residual-filter columns kept by a pruned scan).
func conform(t *table.Table, want, got table.Schema) (*table.Table, error) {
	if sameSchema(want, got) {
		return t, nil
	}
	return t.Select(want.Names()...)
}

// compileScan fuses a filter into a columnar scan: single-column
// conjuncts run against the encoded columns (zone maps pruning whole
// partitions, RLE runs and dictionary entries evaluated once), the
// rest stays as a residual row filter, and only the needed columns are
// decoded.
func (c *compiler) compileScan(l *Logical, pred *Expr) (*Node, table.Schema, error) {
	src, ok := c.env.tables[l.TableName]
	if !ok {
		return nil, table.Schema{}, fmt.Errorf("query: unknown table %q", l.TableName)
	}
	schema := src.schema

	var colPreds []table.ColPredicate
	var residual []*Expr
	if pred != nil {
		if _, err := pred.Bind(schema); err != nil {
			return nil, table.Schema{}, err
		}
	}
	for _, conj := range pred.conjuncts() {
		cols := conj.Cols()
		if !c.opts.Optimize || len(cols) != 1 {
			residual = append(residual, conj)
			continue
		}
		idx, err := schema.MustIndex(cols[0])
		if err != nil {
			return nil, table.Schema{}, err
		}
		typ := schema.Cols[idx].Type
		keep, err := valuePredicate(conj, typ)
		if err != nil {
			residual = append(residual, conj)
			continue
		}
		cp := table.ColPredicate{Col: idx, Keep: keep}
		if conj.Kind == ExprCmp {
			cp.SkipAll = skipAllFunc(conj.Cmp, typ, conj.Val)
		}
		colPreds = append(colPreds, cp)
	}

	// Columns the scan must materialize: what the plan above demands
	// plus residual filter inputs. Pushed predicate columns filter on
	// the encoded form and need no decode unless also demanded.
	needed := c.needs[l]
	if needed == nil {
		needed = schema.Names()
	}
	needSet := map[string]bool{}
	for _, n := range needed {
		needSet[n] = true
	}
	scanCols := append([]string(nil), needed...)
	for _, conj := range residual {
		for _, col := range conj.Cols() {
			if !needSet[col] {
				needSet[col] = true
				scanCols = append(scanCols, col)
			}
		}
	}
	sort.SliceStable(scanCols, func(i, j int) bool { return schema.Index(scanCols[i]) < schema.Index(scanCols[j]) })
	neededIdx := make([]int, len(scanCols))
	outCols := make([]table.Col, len(scanCols))
	for i, name := range scanCols {
		j := schema.Index(name)
		neededIdx[i] = j
		outCols[i] = schema.Cols[j]
	}
	outSchema := table.Schema{Cols: outCols}
	residualPred := conjoin(residual)
	var residualFn func(table.Row) bool
	if residualPred != nil {
		var err error
		residualFn, err = residualPred.Bind(outSchema)
		if err != nil {
			return nil, table.Schema{}, err
		}
	}

	detail := fmt.Sprintf("%s cols=[%s]", l.TableName, strings.Join(scanCols, ", "))
	if len(colPreds) > 0 {
		var pushed []string
		for _, conj := range pred.conjuncts() {
			if len(conj.Cols()) == 1 {
				pushed = append(pushed, conj.String())
			}
		}
		detail += " pushed=(" + strings.Join(pushed, " AND ") + ")"
	}
	if residualPred != nil {
		detail += " residual=(" + residualPred.String() + ")"
	}
	est := c.est(l)
	if pred != nil {
		est = c.est(&Logical{Op: OpFilter, Input: l, Pred: pred})
	}
	n := &Node{Kind: "scan", Detail: detail, Est: est}
	env := c.env
	n.exec = c.counted(n, func() (*table.Table, error) {
		t, err := src.data.Scan(env.Eng, colPreds, neededIdx, env.Reg)
		if err != nil {
			return nil, err
		}
		if residualFn != nil {
			t = t.Where(residualFn)
		}
		return t, nil
	})
	return n, outSchema, nil
}

// valuePredicate compiles a single-column predicate (possibly an
// AND/OR tree over one column) into a typed value test.
func valuePredicate(e *Expr, typ table.Type) (func(any) bool, error) {
	switch e.Kind {
	case ExprCmp:
		lit, err := coerce(typ, e.Val)
		if err != nil {
			return nil, err
		}
		return keepFunc(e.Cmp, typ, lit), nil
	case ExprAnd:
		l, err := valuePredicate(e.Left, typ)
		if err != nil {
			return nil, err
		}
		r, err := valuePredicate(e.Right, typ)
		if err != nil {
			return nil, err
		}
		return func(v any) bool { return l(v) && r(v) }, nil
	default:
		l, err := valuePredicate(e.Left, typ)
		if err != nil {
			return nil, err
		}
		r, err := valuePredicate(e.Right, typ)
		if err != nil {
			return nil, err
		}
		return func(v any) bool { return l(v) || r(v) }, nil
	}
}

// scanNeeds computes, for every scan in the plan, the column set the
// operators above actually consume — the projection-pushdown analysis.
// demanded is the list of output columns the parent needs, in the
// scan's (or node's) output naming.
func (e *Env) scanNeeds(l *Logical, demanded []string, out map[*Logical][]string) error {
	switch l.Op {
	case OpScan:
		schema, err := e.Schema(l.TableName)
		if err != nil {
			return err
		}
		set := map[string]bool{}
		for _, d := range demanded {
			set[d] = true
		}
		var cols []string
		for _, c := range schema.Cols {
			if set[c.Name] {
				cols = append(cols, c.Name)
			}
		}
		out[l] = cols
		return nil
	case OpFilter:
		// A filter fused into a scan pushes its single-column conjuncts
		// onto the encoded columns; only residual (multi-column) conjunct
		// inputs must be decoded.
		next := appendMissing(demanded, nil)
		for _, conj := range l.Pred.conjuncts() {
			cols := conj.Cols()
			if l.Input.Op == OpScan && len(cols) == 1 {
				continue
			}
			next = appendMissing(next, cols)
		}
		return e.scanNeeds(l.Input, next, out)
	case OpProject:
		// A projection consumes exactly its source columns — narrowing
		// projections to what parents demand is the optimizer's job
		// (narrowProjects), not this analysis's.
		return e.scanNeeds(l.Input, appendMissing(nil, l.Cols), out)
	case OpJoin:
		left, err := l.Input.OutSchema(e.Schema)
		if err != nil {
			return err
		}
		right, err := l.Right.OutSchema(e.Schema)
		if err != nil {
			return err
		}
		var toLeft, toRight []string
		for _, d := range demanded {
			if left.Index(d) >= 0 {
				toLeft = append(toLeft, d)
			} else if src := rightSource(d, left, right); src != "" {
				toRight = append(toRight, src)
				if src != d {
					// "right_x" is only named that because the left side also
					// emits x; keep x on the left so the prefix survives.
					toLeft = append(toLeft, src)
				}
			}
		}
		toLeft = appendMissing(toLeft, []string{l.LeftCol})
		toRight = appendMissing(toRight, []string{l.RightCol})
		if err := e.scanNeeds(l.Input, toLeft, out); err != nil {
			return err
		}
		return e.scanNeeds(l.Right, toRight, out)
	case OpAgg:
		next := append([]string(nil), l.Keys...)
		for _, a := range l.Aggs {
			if a.Op != table.Count {
				next = appendMissing(next, []string{a.Col})
			}
		}
		return e.scanNeeds(l.Input, appendMissing(nil, next), out)
	case OpSort:
		// The compiled sort breaks ties on every input column, so a sort
		// demands its whole input schema.
		in, err := l.Input.OutSchema(e.Schema)
		if err != nil {
			return err
		}
		return e.scanNeeds(l.Input, in.Names(), out)
	case OpLimit:
		return e.scanNeeds(l.Input, demanded, out)
	}
	return fmt.Errorf("query: unknown operator %d", l.Op)
}

func appendMissing(dst []string, add []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range dst {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range add {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
