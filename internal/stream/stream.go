// Package stream is an event-time stream processing engine: keyed events
// flow through hash-partitioned parallel workers into tumbling or sliding
// windows; low watermarks drive window firing; allowed lateness bounds how
// long closed windows accept stragglers; and bounded worker queues provide
// backpressure (the ablation of experiment E7 — unbounded queues let
// latency grow without limit as offered load approaches capacity).
package stream

import (
	"errors"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Event is one keyed, event-timestamped element.
type Event struct {
	Key       string
	Value     float64
	EventTime time.Duration
}

// Result is one fired window pane.
type Result struct {
	WindowStart time.Duration
	WindowEnd   time.Duration
	Key         string
	Sum         float64
	Count       int64
}

// Config configures a pipeline.
type Config struct {
	// Workers is the keyed parallelism. Default 4.
	Workers int
	// Buffer is each worker's queue capacity. Values <= 0 mean effectively
	// unbounded (the no-backpressure ablation).
	Buffer int
	// Window is the window width; required.
	Window time.Duration
	// Slide enables sliding windows when 0 < Slide < Window (each event
	// lands in Window/Slide panes). 0 means tumbling.
	Slide time.Duration
	// AllowedLateness keeps a fired window's state around to absorb late
	// events; events later than that are dropped (counted).
	AllowedLateness time.Duration
	// WorkSpin burns roughly this many iterations of CPU per event to
	// model per-event processing cost in load experiments.
	WorkSpin int
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("stream: pipeline closed")

type message struct {
	ev        Event
	watermark time.Duration // >= 0 means watermark message, ev ignored
	ingest    time.Time
}

type paneKey struct {
	start time.Duration
	key   string
}

type paneAgg struct {
	sum   float64
	count int64
	fired bool
}

// Pipeline is a running streaming job. Create with New, feed with Send and
// Advance, terminate with Close.
type Pipeline struct {
	cfg     Config
	queues  []chan message
	wg      sync.WaitGroup
	results struct {
		mu  sync.Mutex
		out []Result
	}
	closed bool
	mu     sync.Mutex

	// Reg exposes latency/lateness metrics: sojourn_ns histogram,
	// late_dropped counter, queue_depth gauge.
	Reg *metrics.Registry
}

// New starts a pipeline's workers.
func New(cfg Config) *Pipeline {
	if cfg.Window <= 0 {
		panic("stream: Config.Window is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	buf := cfg.Buffer
	if buf <= 0 {
		buf = 1 << 20 // "unbounded": larger than any test load
	}
	p := &Pipeline{cfg: cfg, Reg: metrics.NewRegistry()}
	p.queues = make([]chan message, cfg.Workers)
	for i := range p.queues {
		p.queues[i] = make(chan message, buf)
		p.wg.Add(1)
		go p.worker(p.queues[i])
	}
	return p
}

func hashKey(k string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k))
	return h.Sum32()
}

// Send routes one event to its key's worker. With a bounded buffer this
// blocks when the worker is saturated — that wait is the backpressure the
// experiments measure (it is included in the event's sojourn time).
func (p *Pipeline) Send(ev Event) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	q := p.queues[int(hashKey(ev.Key))%len(p.queues)]
	q <- message{ev: ev, watermark: -1, ingest: time.Now()}
	return nil
}

// Advance broadcasts a low watermark: every window whose end is at or
// before wm fires on each worker. Negative watermarks are clamped to zero
// (they carry no information and would collide with the event encoding).
func (p *Pipeline) Advance(wm time.Duration) error {
	if wm < 0 {
		wm = 0
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	for _, q := range p.queues {
		q <- message{watermark: wm, ingest: time.Now()}
	}
	return nil
}

// Close flushes all remaining windows (as if a final +inf watermark
// arrived), stops the workers, and returns every result fired over the
// pipeline's lifetime, ordered by (window start, key).
func (p *Pipeline) Close() []Result {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.snapshotResults()
	}
	p.closed = true
	p.mu.Unlock()
	for _, q := range p.queues {
		q <- message{watermark: 1<<62 - 1, ingest: time.Now()}
		close(q)
	}
	p.wg.Wait()
	return p.snapshotResults()
}

func (p *Pipeline) snapshotResults() []Result {
	p.results.mu.Lock()
	defer p.results.mu.Unlock()
	out := append([]Result(nil), p.results.out...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].WindowStart != out[j].WindowStart {
			return out[i].WindowStart < out[j].WindowStart
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// panesFor returns the window starts an event-time belongs to.
func (p *Pipeline) panesFor(t time.Duration) []time.Duration {
	w := p.cfg.Window
	if p.cfg.Slide <= 0 || p.cfg.Slide >= w {
		return []time.Duration{(t / w) * w}
	}
	s := p.cfg.Slide
	var starts []time.Duration
	first := (t / s) * s
	for start := first; start > t-w && start >= 0; start -= s {
		if t >= start && t < start+w {
			starts = append(starts, start)
		}
		if start == 0 {
			break
		}
	}
	return starts
}

func (p *Pipeline) worker(q chan message) {
	defer p.wg.Done()
	panes := map[paneKey]*paneAgg{}
	var watermark time.Duration
	sojourn := p.Reg.Histogram("sojourn_ns")
	late := p.Reg.Counter("late_dropped")
	processed := p.Reg.Counter("events_processed")

	spinSink := 0
	for m := range q {
		if m.watermark >= 0 {
			if m.watermark > watermark {
				watermark = m.watermark
				p.fire(panes, watermark)
			}
			continue
		}
		// Simulated per-event processing cost.
		for i := 0; i < p.cfg.WorkSpin; i++ {
			spinSink += i ^ (spinSink << 1)
		}
		ev := m.ev
		if ev.EventTime+p.cfg.AllowedLateness < watermark-p.cfg.Window {
			// Beyond lateness horizon for every possible pane: drop.
			late.Inc()
			sojourn.ObserveDuration(time.Since(m.ingest))
			continue
		}
		accepted := false
		for _, start := range p.panesFor(ev.EventTime) {
			end := start + p.cfg.Window
			if end+p.cfg.AllowedLateness <= watermark {
				continue // this pane is closed for good
			}
			pk := paneKey{start: start, key: ev.Key}
			agg, ok := panes[pk]
			if !ok {
				agg = &paneAgg{}
				panes[pk] = agg
			}
			agg.sum += ev.Value
			agg.count++
			accepted = true
		}
		if !accepted {
			late.Inc()
		}
		processed.Inc()
		sojourn.ObserveDuration(time.Since(m.ingest))
	}
	_ = spinSink
}

// fire emits panes whose lateness horizon passed and emits (once) panes
// whose end passed; a pane that receives late events before its horizon is
// re-emitted with the updated aggregate at horizon time.
func (p *Pipeline) fire(panes map[paneKey]*paneAgg, wm time.Duration) {
	var fired []Result
	for pk, agg := range panes {
		end := pk.start + p.cfg.Window
		if end+p.cfg.AllowedLateness <= wm {
			fired = append(fired, Result{
				WindowStart: pk.start,
				WindowEnd:   end,
				Key:         pk.key,
				Sum:         agg.sum,
				Count:       agg.count,
			})
			delete(panes, pk)
		}
	}
	if len(fired) > 0 {
		p.results.mu.Lock()
		p.results.out = append(p.results.out, fired...)
		p.results.mu.Unlock()
	}
}

// QueueDepth reports the total buffered events across workers (for the
// backpressure experiments).
func (p *Pipeline) QueueDepth() int {
	total := 0
	for _, q := range p.queues {
		total += len(q)
	}
	return total
}
