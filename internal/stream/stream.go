// Package stream is an event-time stream processing engine: keyed events
// flow through hash-partitioned parallel workers into tumbling or sliding
// windows; low watermarks drive window firing; allowed lateness bounds how
// long closed windows accept stragglers; and bounded worker queues provide
// backpressure (the ablation of experiment E7 — unbounded queues let
// latency grow without limit as offered load approaches capacity).
//
// The engine is fault tolerant with exactly-once output: aligned
// checkpoint barriers (checkpoint.go) snapshot worker state, a replayable
// Source (source.go) rewinds to the last committed checkpoint's offset on
// failure, and per-worker output sequence numbers let the result sink
// deduplicate panes re-fired during replay, so a run that crashes and
// recovers produces output byte-identical to a fault-free run. See
// DESIGN.md "Exactly-once streaming fault tolerance".
package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Event is one keyed, event-timestamped element.
type Event struct {
	Key       string
	Value     float64
	EventTime time.Duration
}

// Result is one fired window pane.
type Result struct {
	WindowStart time.Duration
	WindowEnd   time.Duration
	Key         string
	Sum         float64
	Count       int64
}

// Config configures a pipeline.
type Config struct {
	// Workers is the keyed parallelism. Default 4.
	Workers int
	// Buffer is each worker's queue capacity. Values <= 0 mean effectively
	// unbounded (the no-backpressure ablation).
	Buffer int
	// Window is the window width; required.
	Window time.Duration
	// Slide enables sliding windows when 0 < Slide < Window (each event
	// lands in Window/Slide panes). 0 means tumbling.
	Slide time.Duration
	// AllowedLateness keeps a fired window's state around to absorb late
	// events; events later than that are dropped (counted).
	AllowedLateness time.Duration
	// WorkSpin burns roughly this many iterations of CPU per event to
	// model per-event processing cost in load experiments.
	WorkSpin int
	// Tracer, when set, records checkpoint and recovery spans.
	Tracer *trace.Recorder
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("stream: pipeline closed")

// errWorkerDown aborts a checkpoint whose barrier reached a crashed
// worker: a down task cannot contribute a snapshot, so the coordinator
// must not commit (mirrors Flink's checkpoint-decline path).
var errWorkerDown = errors.New("stream: worker is down, checkpoint aborted")

type message struct {
	ev        Event
	watermark time.Duration // >= 0 means watermark message, ev ignored
	ingest    time.Time
	ctl       *control // non-nil: control-plane message (barrier/crash/restore)
}

type paneKey struct {
	start time.Duration
	key   string
}

type paneAgg struct {
	sum   float64
	count int64
}

// pipeState is one worker's volatile state: the open panes, the watermark
// high-water, and the output sequence number of the last pane this worker
// fired (the exactly-once cursor the sink dedups against).
type pipeState struct {
	watermark time.Duration
	seq       int64
	panes     map[paneKey]*paneAgg
}

func newPipeState() *pipeState {
	return &pipeState{panes: map[paneKey]*paneAgg{}}
}

// Pipeline is a running streaming job. Create with New, feed with Send and
// Advance, terminate with Close. For fault-tolerant runs use a Runner
// (checkpoint.go), which layers checkpointing and recovery on top.
type Pipeline struct {
	cfg     Config
	queues  []chan message
	wg      sync.WaitGroup
	results struct {
		mu  sync.Mutex
		out []Result
		// hwm is the per-worker delivered output sequence high-water.
		// It models a durable, idempotent sink: it survives worker
		// crash/rollback, so panes re-fired during replay (seq <= hwm)
		// are recognized as duplicates and dropped.
		hwm []int64
	}
	closed bool
	// mu guards the queue lifecycle: senders (Send/Advance/control
	// injection) hold the read lock across the channel send, Close takes
	// the write lock to flip closed, so a send can never race the channel
	// close (the old TOCTOU released the lock before `q <-` and a
	// concurrent Close could panic the send).
	mu sync.RWMutex

	nextCkpt int64 // checkpoint id allocator (guarded by ckptMu)
	ckptMu   sync.Mutex

	// Reg exposes latency/lateness metrics (sojourn_ns, late_dropped,
	// events_processed) plus the fault-tolerance counters:
	// checkpoints_committed, checkpoints_aborted, checkpoint_bytes,
	// checkpoint_duration_ns, panes_deduped, stream_worker_crashes,
	// stream_recoveries, crashed_dropped_events.
	Reg *metrics.Registry

	deduped        *metrics.Counter
	crashedDropped *metrics.Counter
}

// New starts a pipeline's workers.
func New(cfg Config) *Pipeline {
	if cfg.Window <= 0 {
		panic("stream: Config.Window is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	buf := cfg.Buffer
	if buf <= 0 {
		buf = 1 << 20 // "unbounded": larger than any test load
	}
	p := &Pipeline{cfg: cfg, Reg: metrics.NewRegistry()}
	p.deduped = p.Reg.Counter("panes_deduped")
	p.crashedDropped = p.Reg.Counter("crashed_dropped_events")
	p.queues = make([]chan message, cfg.Workers)
	p.results.hwm = make([]int64, cfg.Workers)
	for i := range p.queues {
		p.queues[i] = make(chan message, buf)
		p.wg.Add(1)
		go p.worker(i, p.queues[i])
	}
	return p
}

// Workers returns the keyed parallelism the pipeline runs with.
func (p *Pipeline) Workers() int { return len(p.queues) }

func hashKey(k string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k))
	return h.Sum32()
}

// Send routes one event to its key's worker. With a bounded buffer this
// blocks when the worker is saturated — that wait is the backpressure the
// experiments measure (it is included in the event's sojourn time).
func (p *Pipeline) Send(ev Event) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	q := p.queues[int(hashKey(ev.Key))%len(p.queues)]
	q <- message{ev: ev, watermark: -1, ingest: time.Now()}
	return nil
}

// Advance broadcasts a low watermark: every window whose end is at or
// before wm fires on each worker. Negative watermarks are clamped to zero
// (they carry no information and would collide with the event encoding).
func (p *Pipeline) Advance(wm time.Duration) error {
	if wm < 0 {
		wm = 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	for _, q := range p.queues {
		q <- message{watermark: wm, ingest: time.Now()}
	}
	return nil
}

// Close flushes all remaining windows (as if a final +inf watermark
// arrived), stops the workers, and returns every result fired over the
// pipeline's lifetime, ordered by (window start, key).
func (p *Pipeline) Close() []Result {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.snapshotResults()
	}
	p.closed = true
	// The write lock was held until every in-flight sender (read lock)
	// drained, and new senders observe closed, so closing the channels
	// below cannot race a send.
	p.mu.Unlock()
	for _, q := range p.queues {
		q <- message{watermark: 1<<62 - 1, ingest: time.Now()}
		close(q)
	}
	p.wg.Wait()
	return p.snapshotResults()
}

func (p *Pipeline) snapshotResults() []Result {
	p.results.mu.Lock()
	defer p.results.mu.Unlock()
	out := append([]Result(nil), p.results.out...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].WindowStart != out[j].WindowStart {
			return out[i].WindowStart < out[j].WindowStart
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// panesFor returns the window starts an event-time belongs to.
func (p *Pipeline) panesFor(t time.Duration) []time.Duration {
	w := p.cfg.Window
	if p.cfg.Slide <= 0 || p.cfg.Slide >= w {
		return []time.Duration{(t / w) * w}
	}
	s := p.cfg.Slide
	var starts []time.Duration
	first := (t / s) * s
	for start := first; start > t-w && start >= 0; start -= s {
		if t >= start && t < start+w {
			starts = append(starts, start)
		}
		if start == 0 {
			break
		}
	}
	return starts
}

func (p *Pipeline) worker(idx int, q chan message) {
	defer p.wg.Done()
	st := newPipeState()
	dead := false
	sojourn := p.Reg.Histogram("sojourn_ns")
	late := p.Reg.Counter("late_dropped")
	processed := p.Reg.Counter("events_processed")

	spinSink := 0
	for m := range q {
		if m.ctl != nil {
			st, dead = p.handleControl(idx, st, dead, m.ctl)
			continue
		}
		if dead {
			// A crashed worker loses everything delivered to it; the
			// replay after recovery re-reads these events from the
			// source, so dropping here is safe (and counted).
			if m.watermark < 0 {
				p.crashedDropped.Inc()
			}
			continue
		}
		if m.watermark >= 0 {
			if m.watermark > st.watermark {
				st.watermark = m.watermark
				p.fire(idx, st)
			}
			continue
		}
		// Simulated per-event processing cost.
		for i := 0; i < p.cfg.WorkSpin; i++ {
			spinSink += i ^ (spinSink << 1)
		}
		ev := m.ev
		if ev.EventTime+p.cfg.AllowedLateness < st.watermark-p.cfg.Window {
			// Beyond lateness horizon for every possible pane: drop.
			late.Inc()
			sojourn.ObserveDuration(time.Since(m.ingest))
			continue
		}
		accepted := false
		for _, start := range p.panesFor(ev.EventTime) {
			end := start + p.cfg.Window
			if end+p.cfg.AllowedLateness <= st.watermark {
				continue // this pane is closed for good
			}
			pk := paneKey{start: start, key: ev.Key}
			agg, ok := st.panes[pk]
			if !ok {
				agg = &paneAgg{}
				st.panes[pk] = agg
			}
			agg.sum += ev.Value
			agg.count++
			accepted = true
		}
		if !accepted {
			late.Inc()
		}
		processed.Inc()
		sojourn.ObserveDuration(time.Since(m.ingest))
	}
	_ = spinSink
}

// handleControl processes a control-plane message on the worker
// goroutine, so snapshots and restores are naturally serialized against
// event processing: a barrier snapshot reflects exactly the events queued
// before it (aligned-barrier semantics with one input channel per worker).
func (p *Pipeline) handleControl(idx int, st *pipeState, dead bool, c *control) (*pipeState, bool) {
	switch c.op {
	case ctlBarrier:
		if dead {
			c.ack <- workerAck{worker: idx, err: errWorkerDown}
			return st, dead
		}
		// The snapshot span parents under the coordinator's checkpoint
		// span carried on the barrier, so each worker's contribution is
		// causally visible in the run timeline.
		end, _ := p.cfg.Tracer.BeginCtx(fmt.Sprintf("snapshot ckpt-%d", c.id),
			"checkpoint", fmt.Sprintf("stream-worker-%02d", idx), c.tc)
		state := st.encode()
		end(map[string]string{"bytes": fmt.Sprint(len(state))})
		c.ack <- workerAck{worker: idx, state: state}
	case ctlCrash:
		c.ack <- workerAck{worker: idx}
		return newPipeState(), true
	case ctlRestore:
		end, _ := p.cfg.Tracer.BeginCtx("restore state",
			"recovery", fmt.Sprintf("stream-worker-%02d", idx), c.tc)
		ns, err := decodePipeState(c.snap)
		if err != nil {
			end(map[string]string{"error": err.Error()})
			c.ack <- workerAck{worker: idx, err: err}
			return st, dead
		}
		end(map[string]string{"bytes": fmt.Sprint(len(c.snap))})
		c.ack <- workerAck{worker: idx}
		return ns, false
	}
	return st, dead
}

// fire emits panes whose lateness horizon passed; each carries the
// worker's next output sequence number. Within one firing batch the map
// iteration order is random, but the sink dedups whole rolled-back
// batches by sequence count, so replay correctness does not depend on
// intra-batch order (see DESIGN.md).
func (p *Pipeline) fire(worker int, st *pipeState) {
	for pk, agg := range st.panes {
		end := pk.start + p.cfg.Window
		if end+p.cfg.AllowedLateness <= st.watermark {
			st.seq++
			p.emit(worker, st.seq, Result{
				WindowStart: pk.start,
				WindowEnd:   end,
				Key:         pk.key,
				Sum:         agg.sum,
				Count:       agg.count,
			})
			delete(st.panes, pk)
		}
	}
}

// emit delivers one fired pane to the result sink. The sink is durable
// and idempotent: a pane whose sequence is at or below the worker's
// delivered high-water was already emitted before a rollback, so the
// replayed copy (identical by determinism) is dropped and counted.
func (p *Pipeline) emit(worker int, seq int64, r Result) {
	p.results.mu.Lock()
	defer p.results.mu.Unlock()
	if seq <= p.results.hwm[worker] {
		p.deduped.Inc()
		return
	}
	p.results.hwm[worker] = seq
	p.results.out = append(p.results.out, r)
}

// QueueDepth reports the total buffered events across workers (for the
// backpressure experiments).
func (p *Pipeline) QueueDepth() int {
	total := 0
	for _, q := range p.queues {
		total += len(q)
	}
	return total
}
