package stream

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/admission"
)

// waitStreamGoroutines polls until the goroutine count falls back to the
// baseline — pipeline workers shut down asynchronously after Close, so a
// plain count right after an abort races the teardown.
func waitStreamGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
}

func deadlineRunner(src Source) *Runner {
	return NewRunner(RunConfig{
		Pipeline:        Config{Workers: 4, Window: 200 * time.Millisecond},
		CheckpointEvery: 1000,
		WatermarkEvery:  100,
		WatermarkLag:    5 * time.Millisecond,
	}, src)
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	a, err := deadlineRunner(NewGeneratorSource(5, 3000, 16, time.Millisecond, 4*time.Millisecond)).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := deadlineRunner(NewGeneratorSource(5, 3000, 16, time.Millisecond, 4*time.Millisecond)).RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("RunCtx(Background) diverged from Run: %d vs %d results", len(b), len(a))
	}
}

func TestRunCtxAbortsOnBudget(t *testing.T) {
	baseline := runtime.NumGoroutine()
	src := NewGeneratorSource(5, 6000, 16, time.Millisecond, 4*time.Millisecond)
	r := deadlineRunner(src)
	// 6000 events at 1ms/step run to ~6s of event time; a 1s budget must
	// cut the run short with the typed deadline error.
	res, err := r.RunCtx(admission.WithBudget(context.Background(), time.Second))
	if err == nil {
		t.Fatal("run with a 1s event-time budget completed")
	}
	if !errors.Is(err, ErrRunDeadline) || !admission.IsDeadline(err) {
		t.Fatalf("error = %v, want ErrRunDeadline wrapping admission.ErrDeadline", err)
	}
	if res != nil {
		t.Fatalf("aborted run returned %d results, want none", len(res))
	}
	if got := r.Metrics().Counter("stream_run_aborted").Value(); got != 1 {
		t.Fatalf("stream_run_aborted = %d, want 1", got)
	}
	// The abort only stopped the driver between records.
	if off := src.Offset(); off <= 0 || off >= 6000 {
		t.Fatalf("source offset %d, want a partial read", off)
	}
	waitStreamGoroutines(t, baseline)
}

func TestRunCtxCancelPassesThrough(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := deadlineRunner(NewGeneratorSource(5, 3000, 16, time.Millisecond, 0)).RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if admission.IsDeadline(err) {
		t.Fatal("cancellation must not read as a deadline")
	}
	waitStreamGoroutines(t, baseline)
}

func TestDeadlineSourceGracefulDrain(t *testing.T) {
	inner := NewGeneratorSource(5, 6000, 16, time.Millisecond, 0)
	src := NewDeadlineSource(inner, time.Second)
	res, err := deadlineRunner(src).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !src.Tripped() {
		t.Fatal("budget never tripped on a 6s stream")
	}
	if len(res) == 0 {
		t.Fatal("graceful drain discarded all results")
	}
	// Only the in-budget prefix was read; the over-budget event was left
	// unread (offsets stay honest for replay).
	if off := inner.Offset(); off != 1001 {
		t.Fatalf("inner offset = %d, want 1001 (events 0..1000 fit a 1s budget at 1ms steps)", off)
	}
	for _, w := range res {
		if w.WindowStart > time.Second {
			t.Fatalf("result window at %v past the 1s budget", w.WindowStart)
		}
	}
}

func TestDeadlineSourceUnlimitedAndReplay(t *testing.T) {
	// budget <= 0 is a no-op wrapper.
	plain, err := deadlineRunner(NewGeneratorSource(5, 3000, 16, time.Millisecond, 4*time.Millisecond)).Run()
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := deadlineRunner(NewDeadlineSource(
		NewGeneratorSource(5, 3000, 16, time.Millisecond, 4*time.Millisecond), 0)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) == 0 || len(plain) != len(wrapped) {
		t.Fatalf("unlimited DeadlineSource diverged: %d vs %d results", len(wrapped), len(plain))
	}

	// A crash forces recovery to rewind through the wrapper; the replayed
	// run must still drain exactly at the budget.
	src := NewDeadlineSource(NewGeneratorSource(5, 6000, 16, time.Millisecond, 0), time.Second)
	r := deadlineRunner(src)
	tick := 0
	r.OnTick(func() {
		tick++
		if tick == 2 {
			_ = r.CrashWorker(1)
		}
		if tick == 4 {
			_ = r.RestoreWorker(1)
		}
	})
	r.cfg.TickEvery = 200
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !src.Tripped() {
		t.Fatal("budget never tripped after replay")
	}
	if len(res) == 0 {
		t.Fatal("no results after crash + budget drain")
	}
}
