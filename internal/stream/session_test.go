package stream

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func sessSend(t *testing.T, s *Sessionizer, key string, at time.Duration) {
	t.Helper()
	if err := s.Send(Event{Key: key, Value: 1, EventTime: at}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSession(t *testing.T) {
	s := NewSessionizer(SessionConfig{Gap: 10 * time.Second, Workers: 1})
	sessSend(t, s, "u", 0)
	sessSend(t, s, "u", 5*time.Second)
	sessSend(t, s, "u", 12*time.Second)
	out := s.Close()
	if len(out) != 1 {
		t.Fatalf("sessions = %+v", out)
	}
	if out[0].Count != 3 || out[0].Start != 0 || out[0].End != 12*time.Second {
		t.Fatalf("session = %+v", out[0])
	}
}

func TestGapSplitsSessions(t *testing.T) {
	s := NewSessionizer(SessionConfig{Gap: 5 * time.Second, Workers: 1})
	sessSend(t, s, "u", 0)
	sessSend(t, s, "u", 3*time.Second)
	sessSend(t, s, "u", 20*time.Second) // > 5s after previous: new session
	out := s.Close()
	if len(out) != 2 {
		t.Fatalf("sessions = %+v", out)
	}
	if out[0].Count != 2 || out[1].Count != 1 {
		t.Fatalf("counts = %d, %d", out[0].Count, out[1].Count)
	}
}

func TestLateEventBridgesSessions(t *testing.T) {
	// Two bursts 8s apart with gap 5s are separate — until a late event
	// lands between them and merges everything into one session.
	s := NewSessionizer(SessionConfig{Gap: 5 * time.Second, Workers: 1})
	sessSend(t, s, "u", 0)
	sessSend(t, s, "u", 8*time.Second)
	sessSend(t, s, "u", 4*time.Second) // bridges [0] and [8]
	out := s.Close()
	if len(out) != 1 {
		t.Fatalf("bridging failed: %+v", out)
	}
	if out[0].Count != 3 || out[0].End != 8*time.Second {
		t.Fatalf("merged session = %+v", out[0])
	}
}

func TestWatermarkClosesOnlyExpiredSessions(t *testing.T) {
	s := NewSessionizer(SessionConfig{Gap: 5 * time.Second, Workers: 1})
	sessSend(t, s, "old", 0)
	sessSend(t, s, "new", 20*time.Second)
	if err := s.Advance(10 * time.Second); err != nil { // closes "old" (end 0 + 5 <= 10)
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.out.Lock()
		n := len(s.out.sessions)
		s.out.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired session did not fire")
		}
		time.Sleep(time.Millisecond)
	}
	out := s.Close()
	if len(out) != 2 {
		t.Fatalf("sessions = %+v", out)
	}
}

func TestSessionsPerKeyIndependent(t *testing.T) {
	s := NewSessionizer(SessionConfig{Gap: 5 * time.Second, Workers: 4})
	for i := 0; i < 10; i++ {
		sessSend(t, s, "a", time.Duration(i)*time.Second)
		sessSend(t, s, "b", time.Duration(i*20)*time.Second)
	}
	out := s.Close()
	byKey := map[string]int{}
	for _, r := range out {
		byKey[r.Key]++
	}
	if byKey["a"] != 1 {
		t.Fatalf("key a has %d sessions, want 1", byKey["a"])
	}
	if byKey["b"] != 10 {
		t.Fatalf("key b has %d sessions, want 10", byKey["b"])
	}
}

func TestSessionizerClickstream(t *testing.T) {
	clicks := workload.Clickstream(5000, 50, 10, 500, 0, 31)
	s := NewSessionizer(SessionConfig{Gap: 2 * time.Second, Workers: 4})
	for _, c := range clicks {
		if err := s.Send(Event{Key: c.User, Value: 1, EventTime: c.EventTime}); err != nil {
			t.Fatal(err)
		}
	}
	out := s.Close()
	var total int64
	for _, r := range out {
		total += r.Count
		if r.End < r.Start {
			t.Fatalf("inverted session %+v", r)
		}
	}
	if total != 5000 {
		t.Fatalf("sessions cover %d events, want 5000", total)
	}
}

func TestSessionizerSendAfterClose(t *testing.T) {
	s := NewSessionizer(SessionConfig{Gap: time.Second})
	s.Close()
	if err := s.Send(Event{Key: "k"}); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	if err := s.Advance(time.Second); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	s.Close() // idempotent
}
