// Checkpointing and recovery for the stream engine: aligned barriers flow
// through the worker queues like watermarks, each worker snapshots its
// state when the barrier arrives, and the coordinator commits a
// checkpoint only once every worker has acked. On failure the Runner
// rolls every worker back to the last committed checkpoint, rewinds the
// replayable source to the checkpoint's offset, and replays the tail; the
// result sink's per-worker sequence high-water drops the panes the replay
// re-fires, so recovered output is byte-identical to a fault-free run.
package stream

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/metrics"
	"repro/internal/trace"
)

type ctlOp int

const (
	ctlBarrier ctlOp = iota // snapshot state and ack
	ctlCrash                // drop state, enter dead mode
	ctlRestore              // load snapshot, leave dead mode
)

// control is one control-plane message. It rides the same per-worker
// queues as events and watermarks, which is what makes barrier alignment
// trivial here: each worker has exactly one ordered input channel, so a
// barrier cleanly splits the stream into pre- and post-checkpoint events.
type control struct {
	op   ctlOp
	id   int64  // checkpoint id (barrier)
	snap []byte // encoded worker state (restore)
	ack  chan workerAck
	// tc is the coordinator-side barrier/restore span: worker-side
	// snapshot and restore spans parent under it, linking each worker's
	// contribution into the run's cross-node timeline.
	tc trace.TraceContext
}

type workerAck struct {
	worker int
	state  []byte // encoded snapshot (barrier acks)
	err    error
}

// Checkpoint is one committed, globally consistent snapshot: the source
// offset the barrier was injected at, the source-side watermark
// high-water, and every worker's encoded state. Offset and Watermark
// belong to the driver (Runner) side of the snapshot; States to the
// worker side.
type Checkpoint struct {
	ID        int64
	Offset    int64
	Watermark time.Duration
	States    [][]byte
	Bytes     int64
}

// ---- binary state encoding ------------------------------------------------

// Snapshots cross the worker/coordinator boundary as flat byte blobs, the
// same way they would cross a process boundary to durable storage: the
// encoding both isolates the snapshot from later mutation and makes the
// checkpoint_bytes metric honest. Panes are sorted before encoding so a
// given state always produces identical bytes.

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func readU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("stream: truncated snapshot")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readU64(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("stream: truncated snapshot string")
	}
	return string(rest[:n]), rest[n:], nil
}

func (st *pipeState) encode() []byte {
	keys := make([]paneKey, 0, len(st.panes))
	for pk := range st.panes {
		keys = append(keys, pk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].start != keys[j].start {
			return keys[i].start < keys[j].start
		}
		return keys[i].key < keys[j].key
	})
	b := make([]byte, 0, 24+len(keys)*40)
	b = appendU64(b, uint64(st.watermark))
	b = appendU64(b, uint64(st.seq))
	b = appendU64(b, uint64(len(keys)))
	for _, pk := range keys {
		agg := st.panes[pk]
		b = appendU64(b, uint64(pk.start))
		b = appendU64(b, uint64(len(pk.key)))
		b = append(b, pk.key...)
		b = appendU64(b, math.Float64bits(agg.sum))
		b = appendU64(b, uint64(agg.count))
	}
	return b
}

func decodePipeState(b []byte) (*pipeState, error) {
	st := newPipeState()
	var v uint64
	var err error
	if v, b, err = readU64(b); err != nil {
		return nil, err
	}
	st.watermark = time.Duration(v)
	if v, b, err = readU64(b); err != nil {
		return nil, err
	}
	st.seq = int64(v)
	var n uint64
	if n, b, err = readU64(b); err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var start uint64
		if start, b, err = readU64(b); err != nil {
			return nil, err
		}
		var key string
		if key, b, err = readString(b); err != nil {
			return nil, err
		}
		var sum, count uint64
		if sum, b, err = readU64(b); err != nil {
			return nil, err
		}
		if count, b, err = readU64(b); err != nil {
			return nil, err
		}
		st.panes[paneKey{start: time.Duration(start), key: key}] = &paneAgg{
			sum:   math.Float64frombits(sum),
			count: int64(count),
		}
	}
	return st, nil
}

// ---- coordinator methods on Pipeline --------------------------------------

// sendCtl injects one control message per target queue under the
// lifecycle read lock, so the injection can never race Close closing the
// channels. The acks arrive on mk's channel after the lock is released.
func sendCtl(mu *sync.RWMutex, closed *bool, queues []chan message, targets []int, mk func(i int) *control) error {
	mu.RLock()
	defer mu.RUnlock()
	if *closed {
		return ErrClosed
	}
	for _, i := range targets {
		queues[i] <- message{watermark: -1, ctl: mk(i)}
	}
	return nil
}

func allWorkers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TriggerCheckpoint injects an aligned barrier into every worker queue
// and blocks until all workers ack with their snapshots, then commits.
// offset and wm are the driver-side cut (source offset and watermark
// high-water at injection time). A barrier reaching a crashed worker
// aborts the whole checkpoint — a down task cannot snapshot — and counts
// checkpoints_aborted; the caller keeps its previous committed checkpoint.
func (p *Pipeline) TriggerCheckpoint(offset int64, wm time.Duration) (*Checkpoint, error) {
	return p.TriggerCheckpointCtx(offset, wm, trace.TraceContext{})
}

// TriggerCheckpointCtx is TriggerCheckpoint with causal linkage: the
// coordinator's checkpoint span parents under the caller (normally the
// Runner's run-root span), and the barrier carries the checkpoint
// span's context to every worker, whose snapshot spans parent under it.
func (p *Pipeline) TriggerCheckpointCtx(offset int64, wm time.Duration, parent trace.TraceContext) (*Checkpoint, error) {
	p.ckptMu.Lock()
	p.nextCkpt++
	id := p.nextCkpt
	p.ckptMu.Unlock()

	start := time.Now()
	end, ckptTC := p.cfg.Tracer.BeginCtx(fmt.Sprintf("checkpoint-%d", id), "checkpoint", "stream-coordinator", parent)
	ack := make(chan workerAck, len(p.queues))
	if err := sendCtl(&p.mu, &p.closed, p.queues, allWorkers(len(p.queues)), func(int) *control {
		return &control{op: ctlBarrier, id: id, ack: ack, tc: ckptTC}
	}); err != nil {
		end(map[string]string{"error": err.Error()})
		return nil, err
	}
	states := make([][]byte, len(p.queues))
	var total int64
	var firstErr error
	for range p.queues {
		a := <-ack
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		states[a.worker] = a.state
		total += int64(len(a.state))
	}
	if firstErr != nil {
		p.Reg.Counter("checkpoints_aborted").Inc()
		end(map[string]string{"aborted": firstErr.Error()})
		return nil, firstErr
	}
	p.Reg.Counter("checkpoints_committed").Inc()
	p.Reg.Counter("checkpoint_bytes").Add(total)
	p.Reg.Histogram("checkpoint_duration_ns").ObserveDuration(time.Since(start))
	end(map[string]string{"bytes": fmt.Sprint(total), "offset": fmt.Sprint(offset)})
	return &Checkpoint{ID: id, Offset: offset, Watermark: wm, States: states, Bytes: total}, nil
}

// GenesisCheckpoint is the implicit empty checkpoint every run starts
// from: recovery before the first commit rolls back to empty state and
// offset zero (replay from the beginning).
func (p *Pipeline) GenesisCheckpoint() *Checkpoint {
	states := make([][]byte, len(p.queues))
	for i := range states {
		states[i] = newPipeState().encode()
	}
	return &Checkpoint{States: states}
}

// CrashWorker simulates the loss of one worker process: its in-memory
// pane state is dropped and it stops processing events and watermarks
// (replay after RestoreFrom re-reads what it misses from the source).
// The call blocks until the worker has acked the transition.
func (p *Pipeline) CrashWorker(i int) error {
	if i < 0 || i >= len(p.queues) {
		return fmt.Errorf("stream: no worker %d (have %d)", i, len(p.queues))
	}
	ack := make(chan workerAck, 1)
	if err := sendCtl(&p.mu, &p.closed, p.queues, []int{i}, func(int) *control {
		return &control{op: ctlCrash, ack: ack}
	}); err != nil {
		return err
	}
	<-ack
	p.Reg.Counter("stream_worker_crashes").Inc()
	return nil
}

// RestoreFrom rolls every worker back to the given committed checkpoint
// (a global rollback, like Flink's full-restart strategy): each worker —
// crashed or healthy — replaces its state with its snapshot and leaves
// dead mode. The result sink's sequence high-waters are deliberately NOT
// rolled back; they are what dedups the re-fired panes during replay.
func (p *Pipeline) RestoreFrom(ck *Checkpoint) error {
	return p.RestoreFromCtx(ck, trace.TraceContext{})
}

// RestoreFromCtx is RestoreFrom with causal linkage: the restore span
// parents under the caller's recovery span, and each worker's restore
// parents under the coordinator restore span.
func (p *Pipeline) RestoreFromCtx(ck *Checkpoint, parent trace.TraceContext) error {
	if len(ck.States) != len(p.queues) {
		return fmt.Errorf("stream: checkpoint has %d worker states, pipeline has %d workers",
			len(ck.States), len(p.queues))
	}
	end, restTC := p.cfg.Tracer.BeginCtx(fmt.Sprintf("restore-ckpt-%d", ck.ID), "recovery", "stream-coordinator", parent)
	ack := make(chan workerAck, len(p.queues))
	if err := sendCtl(&p.mu, &p.closed, p.queues, allWorkers(len(p.queues)), func(i int) *control {
		return &control{op: ctlRestore, snap: ck.States[i], ack: ack, tc: restTC}
	}); err != nil {
		end(map[string]string{"error": err.Error()})
		return err
	}
	var firstErr error
	for range p.queues {
		if a := <-ack; a.err != nil && firstErr == nil {
			firstErr = a.err
		}
	}
	if firstErr != nil {
		end(map[string]string{"error": firstErr.Error()})
		return firstErr
	}
	p.Reg.Counter("stream_recoveries").Inc()
	end(map[string]string{"offset": fmt.Sprint(ck.Offset)})
	return nil
}

// ---- Runner ----------------------------------------------------------------

// RunConfig drives a checkpointed pipeline run from a replayable source.
type RunConfig struct {
	Pipeline Config
	// CheckpointEvery injects an aligned barrier every N source records;
	// 0 disables checkpointing (recovery then replays from offset zero).
	CheckpointEvery int
	// WatermarkEvery advances the watermark every N records. Default 256.
	WatermarkEvery int
	// WatermarkLag is subtracted from the maximum seen event time when
	// advancing; set it at or above the source's disorder bound to avoid
	// late drops.
	WatermarkLag time.Duration
	// TickEvery is how many records pass between Tick callbacks (the
	// chaos virtual-time hook). Default 1000.
	TickEvery int
	// Tick, when set, is called every TickEvery records — wire a chaos
	// controller's Tick here. Prefer OnTick for post-construction wiring.
	Tick func()
}

// Runner owns the driver loop of a fault-tolerant streaming job: it pulls
// events from a replayable Source, paces watermarks and checkpoint
// barriers, ticks chaos virtual time, and performs recovery (global
// rollback + source rewind + tail replay) when chaos crashes a worker.
// It implements the chaos StreamTarget surface (CrashWorker /
// RestoreWorker); faults requested from inside a Tick are deferred to the
// next record boundary so the driver loop stays the only thread touching
// the source.
type Runner struct {
	cfg RunConfig
	src Source
	p   *Pipeline

	mu             sync.Mutex
	pendingCrash   []int
	pendingRestore bool

	dead   map[int]bool
	last   *Checkpoint // latest committed checkpoint (genesis at start)
	wmHigh time.Duration
	runTC  trace.TraceContext // run-root span; checkpoints and recoveries parent under it
}

// NewRunner builds a runner over a fresh pipeline.
func NewRunner(cfg RunConfig, src Source) *Runner {
	if cfg.WatermarkEvery <= 0 {
		cfg.WatermarkEvery = 256
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 1000
	}
	p := New(cfg.Pipeline)
	return &Runner{cfg: cfg, src: src, p: p, dead: map[int]bool{}, last: p.GenesisCheckpoint()}
}

// Pipeline exposes the underlying pipeline (for QueueDepth etc).
func (r *Runner) Pipeline() *Pipeline { return r.p }

// Metrics exposes the pipeline registry, including the checkpoint and
// recovery counters the Runner maintains.
func (r *Runner) Metrics() *metrics.Registry { return r.p.Reg }

// Tracer exposes the pipeline's span recorder (nil when tracing is off).
func (r *Runner) Tracer() *trace.Recorder { return r.p.cfg.Tracer }

// CrashWorker implements the chaos stream target: the crash is applied at
// the next record boundary of the driver loop. Safe to call from a chaos
// Tick. Crashing an already-dead worker is a no-op.
func (r *Runner) CrashWorker(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pendingCrash = append(r.pendingCrash, i)
	return nil
}

// RestoreWorker implements the chaos stream target: at the next record
// boundary the runner restores ALL workers from the last committed
// checkpoint and replays the source tail (recovery is global under
// aligned checkpoints). The worker id is accepted for schedule symmetry
// with stream-crash. A restore with no dead workers is a no-op.
func (r *Runner) RestoreWorker(int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pendingRestore = true
	return nil
}

// OnTick wires the chaos virtual-time hook after construction (the
// controller needs the Runner as its target, so it is built second).
func (r *Runner) OnTick(fn func()) { r.cfg.Tick = fn }

// ErrRunDeadline is returned by RunCtx when the run overruns its
// context deadline or virtual admission budget. It wraps
// admission.ErrDeadline, so admission.IsDeadline matches it the same
// way it matches kvstore deadline overruns.
var ErrRunDeadline = fmt.Errorf("stream: run deadline exceeded: %w", admission.ErrDeadline)

// Run drives the source to exhaustion and returns the pipeline's final
// results. If workers are still dead when the source runs dry (a schedule
// with a crash but no restore), Run recovers once more before closing, so
// a crashed run never silently loses data.
func (r *Runner) Run() ([]Result, error) {
	return r.RunCtx(context.Background())
}

// RunCtx is Run with cancellation and deadline propagation: the context
// is checked at every record boundary (never mid-record, so aborts leave
// no half-applied event). A cancelled context aborts with ctx.Err(); a
// context deadline, or a virtual admission budget (admission.WithBudget)
// that the stream's event-time progress has exhausted, aborts with
// ErrRunDeadline. Aborting closes the pipeline so its worker goroutines
// never outlive the run; partial results are discarded — callers who
// want a graceful drain at a deadline should wrap the source in a
// DeadlineSource instead.
func (r *Runner) RunCtx(ctx context.Context) ([]Result, error) {
	// One Run = one trace: the run-root span on the coordinator track is
	// what checkpoint barriers (and through them worker snapshots) and
	// recoveries causally chain back to.
	endRun, runTC := r.cfg.Pipeline.Tracer.BeginCtx("stream run", "job", "stream-coordinator", trace.TraceContext{})
	r.runTC = runTC
	res, err := r.run(ctx)
	outcome := "ok"
	if err != nil {
		outcome = err.Error()
	}
	endRun(map[string]string{"outcome": outcome})
	return res, err
}

// gate reports whether the run may process another record: real
// cancellation and deadline from ctx, plus the virtual budget measured
// against how far the run's event time has advanced.
func (r *Runner) gate(ctx context.Context) error {
	select {
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ErrRunDeadline
		}
		return ctx.Err()
	default:
	}
	if b, ok := admission.Budget(ctx); ok && r.wmHigh > b {
		return ErrRunDeadline
	}
	return nil
}

func (r *Runner) run(ctx context.Context) ([]Result, error) {
	for {
		if err := r.gate(ctx); err != nil {
			r.p.Reg.Counter("stream_run_aborted").Inc()
			r.p.Close()
			return nil, err
		}
		if err := r.applyPending(); err != nil {
			return nil, err
		}
		ev, ok := r.src.Next()
		if !ok {
			if len(r.dead) > 0 {
				if err := r.recoverNow(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		off := r.src.Offset()
		if ev.EventTime > r.wmHigh {
			r.wmHigh = ev.EventTime
		}
		if err := r.p.Send(ev); err != nil {
			return nil, err
		}
		if off%int64(r.cfg.WatermarkEvery) == 0 {
			if wm := r.wmHigh - r.cfg.WatermarkLag; wm > 0 {
				if err := r.p.Advance(wm); err != nil {
					return nil, err
				}
			}
		}
		if r.cfg.CheckpointEvery > 0 && off%int64(r.cfg.CheckpointEvery) == 0 {
			// An abort (dead worker mid-crash-window) keeps the previous
			// committed checkpoint; the aborted counter tracks it.
			if ck, err := r.p.TriggerCheckpointCtx(off, r.wmHigh, r.runTC); err == nil {
				r.last = ck
			}
		}
		if r.cfg.Tick != nil && off%int64(r.cfg.TickEvery) == 0 {
			r.cfg.Tick()
		}
	}
	return r.p.Close(), nil
}

// applyPending applies chaos faults queued by CrashWorker/RestoreWorker
// at a record boundary.
func (r *Runner) applyPending() error {
	r.mu.Lock()
	crashes := r.pendingCrash
	restore := r.pendingRestore
	r.pendingCrash, r.pendingRestore = nil, false
	r.mu.Unlock()
	for _, i := range crashes {
		if i < 0 || i >= r.p.Workers() || r.dead[i] {
			continue
		}
		if err := r.p.CrashWorker(i); err != nil {
			return err
		}
		r.dead[i] = true
	}
	if restore && len(r.dead) > 0 {
		return r.recoverNow()
	}
	return nil
}

// recoverNow performs recovery: global rollback to the last committed
// checkpoint, source rewind to its offset, and driver-state rollback (the
// watermark high-water), after which the main loop replays the tail.
func (r *Runner) recoverNow() error {
	end, recTC := r.cfg.Pipeline.Tracer.BeginCtx(
		fmt.Sprintf("recovery-from-ckpt-%d", r.last.ID), "recovery", "stream-coordinator", r.runTC)
	if err := r.p.RestoreFromCtx(r.last, recTC); err != nil {
		end(map[string]string{"error": err.Error()})
		return err
	}
	replayed := r.src.Offset() - r.last.Offset
	if err := r.src.SeekTo(r.last.Offset); err != nil {
		end(map[string]string{"error": err.Error()})
		return err
	}
	r.wmHigh = r.last.Watermark
	r.dead = map[int]bool{}
	r.p.Reg.Counter("recovery_replayed_events").Add(replayed)
	end(map[string]string{"replayed": fmt.Sprint(replayed)})
	return nil
}
