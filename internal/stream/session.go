package stream

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// SessionResult is one closed session: a burst of activity for a key with
// no gap larger than the configured timeout.
type SessionResult struct {
	Key        string
	Start, End time.Duration // [first event, last event]
	Sum        float64
	Count      int64
}

// SessionConfig configures a Sessionizer.
type SessionConfig struct {
	// Gap is the inactivity timeout that closes a session; required.
	Gap time.Duration
	// Workers is the keyed parallelism. Default 4.
	Workers int
	// Buffer is each worker's queue capacity (<= 0: effectively
	// unbounded).
	Buffer int
}

// Sessionizer groups keyed events into gap-separated sessions in event
// time: events within Gap of an open session extend it (in any arrival
// order, merging sessions that a late event bridges); watermarks close
// sessions whose end precedes wm - Gap. This is the sessionization
// workload behind funnel/engagement analytics. Like Pipeline, it
// supports aligned checkpoint barriers, worker crash/restore, and
// exactly-once output via per-worker sequence dedup at the sink — a
// session's identity is not unique (the same (key, start) can close
// twice in one run), so sequences, not content, are the dedup key.
type Sessionizer struct {
	cfg    SessionConfig
	queues []chan message
	wg     sync.WaitGroup
	mu     sync.RWMutex // queue lifecycle; see Pipeline.mu
	closed bool

	nextCkpt int64
	ckptMu   sync.Mutex

	out struct {
		sync.Mutex
		sessions []SessionResult
		hwm      []int64 // per-worker delivered sequence high-water
	}

	// Reg exposes the sessionizer's fault-tolerance counters
	// (sessions_deduped, checkpoints_committed, checkpoint_bytes, ...).
	Reg *metrics.Registry

	deduped        *metrics.Counter
	crashedDropped *metrics.Counter
}

type session struct {
	start, end time.Duration
	sum        float64
	count      int64
}

// sessState is one session worker's volatile state.
type sessState struct {
	watermark time.Duration
	seq       int64
	open      map[string][]*session
}

func newSessState() *sessState {
	return &sessState{open: map[string][]*session{}}
}

// NewSessionizer starts the workers.
func NewSessionizer(cfg SessionConfig) *Sessionizer {
	if cfg.Gap <= 0 {
		panic("stream: SessionConfig.Gap is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	buf := cfg.Buffer
	if buf <= 0 {
		buf = 1 << 20
	}
	s := &Sessionizer{cfg: cfg, Reg: metrics.NewRegistry()}
	s.deduped = s.Reg.Counter("sessions_deduped")
	s.crashedDropped = s.Reg.Counter("crashed_dropped_events")
	s.queues = make([]chan message, cfg.Workers)
	s.out.hwm = make([]int64, cfg.Workers)
	for i := range s.queues {
		s.queues[i] = make(chan message, buf)
		s.wg.Add(1)
		go s.worker(i, s.queues[i])
	}
	return s
}

// Workers returns the keyed parallelism.
func (s *Sessionizer) Workers() int { return len(s.queues) }

// Send routes one event to its key's worker.
func (s *Sessionizer) Send(ev Event) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	q := s.queues[int(hashKey(ev.Key))%len(s.queues)]
	q <- message{ev: ev, watermark: -1}
	return nil
}

// Advance broadcasts a watermark: sessions whose last event precedes
// wm - Gap can no longer be extended and are emitted.
func (s *Sessionizer) Advance(wm time.Duration) error {
	if wm < 0 {
		wm = 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for _, q := range s.queues {
		q <- message{watermark: wm}
	}
	return nil
}

// Close flushes every open session and returns all sessions, ordered by
// (key, start).
func (s *Sessionizer) Close() []SessionResult {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
	} else {
		s.closed = true
		s.mu.Unlock()
		for _, q := range s.queues {
			q <- message{watermark: 1<<62 - 1}
			close(q)
		}
		s.wg.Wait()
	}
	s.out.Lock()
	defer s.out.Unlock()
	out := append([]SessionResult(nil), s.out.sessions...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// TriggerCheckpoint injects an aligned barrier and commits once every
// worker acked its snapshot; see Pipeline.TriggerCheckpoint.
func (s *Sessionizer) TriggerCheckpoint(offset int64, wm time.Duration) (*Checkpoint, error) {
	s.ckptMu.Lock()
	s.nextCkpt++
	id := s.nextCkpt
	s.ckptMu.Unlock()

	start := time.Now()
	ack := make(chan workerAck, len(s.queues))
	if err := sendCtl(&s.mu, &s.closed, s.queues, allWorkers(len(s.queues)), func(int) *control {
		return &control{op: ctlBarrier, id: id, ack: ack}
	}); err != nil {
		return nil, err
	}
	states := make([][]byte, len(s.queues))
	var total int64
	var firstErr error
	for range s.queues {
		a := <-ack
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		states[a.worker] = a.state
		total += int64(len(a.state))
	}
	if firstErr != nil {
		s.Reg.Counter("checkpoints_aborted").Inc()
		return nil, firstErr
	}
	s.Reg.Counter("checkpoints_committed").Inc()
	s.Reg.Counter("checkpoint_bytes").Add(total)
	s.Reg.Histogram("checkpoint_duration_ns").ObserveDuration(time.Since(start))
	return &Checkpoint{ID: id, Offset: offset, Watermark: wm, States: states, Bytes: total}, nil
}

// GenesisCheckpoint is the empty checkpoint a run implicitly starts from.
func (s *Sessionizer) GenesisCheckpoint() *Checkpoint {
	states := make([][]byte, len(s.queues))
	for i := range states {
		states[i] = newSessState().encode()
	}
	return &Checkpoint{States: states}
}

// CrashWorker drops one worker's open sessions and stops it processing
// until RestoreFrom; see Pipeline.CrashWorker.
func (s *Sessionizer) CrashWorker(i int) error {
	if i < 0 || i >= len(s.queues) {
		return fmt.Errorf("stream: no worker %d (have %d)", i, len(s.queues))
	}
	ack := make(chan workerAck, 1)
	if err := sendCtl(&s.mu, &s.closed, s.queues, []int{i}, func(int) *control {
		return &control{op: ctlCrash, ack: ack}
	}); err != nil {
		return err
	}
	<-ack
	s.Reg.Counter("stream_worker_crashes").Inc()
	return nil
}

// RestoreFrom rolls every worker back to the checkpoint; the sink's
// sequence high-waters stay put and dedup the replay. See
// Pipeline.RestoreFrom.
func (s *Sessionizer) RestoreFrom(ck *Checkpoint) error {
	if len(ck.States) != len(s.queues) {
		return fmt.Errorf("stream: checkpoint has %d worker states, sessionizer has %d workers",
			len(ck.States), len(s.queues))
	}
	ack := make(chan workerAck, len(s.queues))
	if err := sendCtl(&s.mu, &s.closed, s.queues, allWorkers(len(s.queues)), func(i int) *control {
		return &control{op: ctlRestore, snap: ck.States[i], ack: ack}
	}); err != nil {
		return err
	}
	var firstErr error
	for range s.queues {
		if a := <-ack; a.err != nil && firstErr == nil {
			firstErr = a.err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	s.Reg.Counter("stream_recoveries").Inc()
	return nil
}

func (s *Sessionizer) worker(idx int, q chan message) {
	defer s.wg.Done()
	st := newSessState()
	dead := false
	for m := range q {
		if m.ctl != nil {
			st, dead = s.handleControl(idx, st, dead, m.ctl)
			continue
		}
		if dead {
			if m.watermark < 0 {
				s.crashedDropped.Inc()
			}
			continue
		}
		if m.watermark >= 0 {
			if m.watermark > st.watermark {
				st.watermark = m.watermark
				s.fire(idx, st)
			}
			continue
		}
		ev := m.ev
		sess := st.open[ev.Key]
		// Find all sessions this event touches ([start-Gap, end+Gap]).
		var touched []*session
		var rest []*session
		for _, x := range sess {
			if ev.EventTime >= x.start-s.cfg.Gap && ev.EventTime <= x.end+s.cfg.Gap {
				touched = append(touched, x)
			} else {
				rest = append(rest, x)
			}
		}
		merged := &session{start: ev.EventTime, end: ev.EventTime, sum: ev.Value, count: 1}
		for _, x := range touched {
			if x.start < merged.start {
				merged.start = x.start
			}
			if x.end > merged.end {
				merged.end = x.end
			}
			merged.sum += x.sum
			merged.count += x.count
		}
		st.open[ev.Key] = append(rest, merged)
	}
}

func (s *Sessionizer) handleControl(idx int, st *sessState, dead bool, c *control) (*sessState, bool) {
	switch c.op {
	case ctlBarrier:
		if dead {
			c.ack <- workerAck{worker: idx, err: errWorkerDown}
			return st, dead
		}
		c.ack <- workerAck{worker: idx, state: st.encode()}
	case ctlCrash:
		c.ack <- workerAck{worker: idx}
		return newSessState(), true
	case ctlRestore:
		ns, err := decodeSessState(c.snap)
		if err != nil {
			c.ack <- workerAck{worker: idx, err: err}
			return st, dead
		}
		c.ack <- workerAck{worker: idx}
		return ns, false
	}
	return st, dead
}

// fire emits sessions that can no longer grow, each carrying the worker's
// next output sequence for sink-side dedup.
func (s *Sessionizer) fire(worker int, st *sessState) {
	for key, sess := range st.open {
		var keep []*session
		for _, x := range sess {
			if x.end+s.cfg.Gap <= st.watermark {
				st.seq++
				s.emit(worker, st.seq, SessionResult{
					Key: key, Start: x.start, End: x.end, Sum: x.sum, Count: x.count,
				})
			} else {
				keep = append(keep, x)
			}
		}
		if len(keep) == 0 {
			delete(st.open, key)
		} else {
			st.open[key] = keep
		}
	}
}

func (s *Sessionizer) emit(worker int, seq int64, r SessionResult) {
	s.out.Lock()
	defer s.out.Unlock()
	if seq <= s.out.hwm[worker] {
		s.deduped.Inc()
		return
	}
	s.out.hwm[worker] = seq
	s.out.sessions = append(s.out.sessions, r)
}

// encode serializes a session worker's state; keys and sessions are
// sorted so identical state yields identical bytes.
func (st *sessState) encode() []byte {
	keys := make([]string, 0, len(st.open))
	for k := range st.open {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := make([]byte, 0, 24)
	b = appendU64(b, uint64(st.watermark))
	b = appendU64(b, uint64(st.seq))
	b = appendU64(b, uint64(len(keys)))
	for _, k := range keys {
		sess := append([]*session(nil), st.open[k]...)
		sort.Slice(sess, func(i, j int) bool { return sess[i].start < sess[j].start })
		b = appendU64(b, uint64(len(k)))
		b = append(b, k...)
		b = appendU64(b, uint64(len(sess)))
		for _, x := range sess {
			b = appendU64(b, uint64(x.start))
			b = appendU64(b, uint64(x.end))
			b = appendU64(b, math.Float64bits(x.sum))
			b = appendU64(b, uint64(x.count))
		}
	}
	return b
}

func decodeSessState(b []byte) (*sessState, error) {
	st := newSessState()
	var v uint64
	var err error
	if v, b, err = readU64(b); err != nil {
		return nil, err
	}
	st.watermark = time.Duration(v)
	if v, b, err = readU64(b); err != nil {
		return nil, err
	}
	st.seq = int64(v)
	var nKeys uint64
	if nKeys, b, err = readU64(b); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nKeys; i++ {
		var key string
		if key, b, err = readString(b); err != nil {
			return nil, err
		}
		var n uint64
		if n, b, err = readU64(b); err != nil {
			return nil, err
		}
		sess := make([]*session, 0, n)
		for j := uint64(0); j < n; j++ {
			var start, end, sum, count uint64
			if start, b, err = readU64(b); err != nil {
				return nil, err
			}
			if end, b, err = readU64(b); err != nil {
				return nil, err
			}
			if sum, b, err = readU64(b); err != nil {
				return nil, err
			}
			if count, b, err = readU64(b); err != nil {
				return nil, err
			}
			sess = append(sess, &session{
				start: time.Duration(start),
				end:   time.Duration(end),
				sum:   math.Float64frombits(sum),
				count: int64(count),
			})
		}
		st.open[key] = sess
	}
	return st, nil
}
