package stream

import (
	"sort"
	"sync"
	"time"
)

// SessionResult is one closed session: a burst of activity for a key with
// no gap larger than the configured timeout.
type SessionResult struct {
	Key        string
	Start, End time.Duration // [first event, last event]
	Sum        float64
	Count      int64
}

// SessionConfig configures a Sessionizer.
type SessionConfig struct {
	// Gap is the inactivity timeout that closes a session; required.
	Gap time.Duration
	// Workers is the keyed parallelism. Default 4.
	Workers int
	// Buffer is each worker's queue capacity (<= 0: effectively
	// unbounded).
	Buffer int
}

// Sessionizer groups keyed events into gap-separated sessions in event
// time: events within Gap of an open session extend it (in any arrival
// order, merging sessions that a late event bridges); watermarks close
// sessions whose end precedes wm - Gap. This is the sessionization
// workload behind funnel/engagement analytics.
type Sessionizer struct {
	cfg    SessionConfig
	queues []chan message
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool

	out struct {
		sync.Mutex
		sessions []SessionResult
	}
}

type session struct {
	start, end time.Duration
	sum        float64
	count      int64
}

// NewSessionizer starts the workers.
func NewSessionizer(cfg SessionConfig) *Sessionizer {
	if cfg.Gap <= 0 {
		panic("stream: SessionConfig.Gap is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	buf := cfg.Buffer
	if buf <= 0 {
		buf = 1 << 20
	}
	s := &Sessionizer{cfg: cfg}
	s.queues = make([]chan message, cfg.Workers)
	for i := range s.queues {
		s.queues[i] = make(chan message, buf)
		s.wg.Add(1)
		go s.worker(s.queues[i])
	}
	return s
}

// Send routes one event to its key's worker.
func (s *Sessionizer) Send(ev Event) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	q := s.queues[int(hashKey(ev.Key))%len(s.queues)]
	q <- message{ev: ev, watermark: -1}
	return nil
}

// Advance broadcasts a watermark: sessions whose last event precedes
// wm - Gap can no longer be extended and are emitted.
func (s *Sessionizer) Advance(wm time.Duration) error {
	if wm < 0 {
		wm = 0
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	for _, q := range s.queues {
		q <- message{watermark: wm}
	}
	return nil
}

// Close flushes every open session and returns all sessions, ordered by
// (key, start).
func (s *Sessionizer) Close() []SessionResult {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
	} else {
		s.closed = true
		s.mu.Unlock()
		for _, q := range s.queues {
			q <- message{watermark: 1<<62 - 1}
			close(q)
		}
		s.wg.Wait()
	}
	s.out.Lock()
	defer s.out.Unlock()
	out := append([]SessionResult(nil), s.out.sessions...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Start < out[j].Start
	})
	return out
}

func (s *Sessionizer) worker(q chan message) {
	defer s.wg.Done()
	// Open sessions per key, kept sorted by start (few per key).
	open := map[string][]*session{}
	for m := range q {
		if m.watermark >= 0 {
			s.fire(open, m.watermark)
			continue
		}
		ev := m.ev
		sess := open[ev.Key]
		// Find all sessions this event touches ([start-Gap, end+Gap]).
		var touched []*session
		var rest []*session
		for _, x := range sess {
			if ev.EventTime >= x.start-s.cfg.Gap && ev.EventTime <= x.end+s.cfg.Gap {
				touched = append(touched, x)
			} else {
				rest = append(rest, x)
			}
		}
		merged := &session{start: ev.EventTime, end: ev.EventTime, sum: ev.Value, count: 1}
		for _, x := range touched {
			if x.start < merged.start {
				merged.start = x.start
			}
			if x.end > merged.end {
				merged.end = x.end
			}
			merged.sum += x.sum
			merged.count += x.count
		}
		open[ev.Key] = append(rest, merged)
	}
}

// fire emits sessions that can no longer grow.
func (s *Sessionizer) fire(open map[string][]*session, wm time.Duration) {
	var done []SessionResult
	for key, sess := range open {
		var keep []*session
		for _, x := range sess {
			if x.end+s.cfg.Gap <= wm {
				done = append(done, SessionResult{
					Key: key, Start: x.start, End: x.end, Sum: x.sum, Count: x.count,
				})
			} else {
				keep = append(keep, x)
			}
		}
		if len(keep) == 0 {
			delete(open, key)
		} else {
			open[key] = keep
		}
	}
	if len(done) > 0 {
		s.out.Lock()
		s.out.sessions = append(s.out.sessions, done...)
		s.out.Unlock()
	}
}
