package stream

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

func send(t *testing.T, p *Pipeline, key string, v float64, at time.Duration) {
	t.Helper()
	if err := p.Send(Event{Key: key, Value: v, EventTime: at}); err != nil {
		t.Fatal(err)
	}
}

func TestTumblingWindowSums(t *testing.T) {
	p := New(Config{Workers: 2, Window: 10 * time.Second})
	send(t, p, "a", 1, 1*time.Second)
	send(t, p, "a", 2, 5*time.Second)
	send(t, p, "a", 4, 12*time.Second) // next window
	send(t, p, "b", 8, 3*time.Second)
	results := p.Close()
	if len(results) != 3 {
		t.Fatalf("results = %+v", results)
	}
	byKey := map[string][]Result{}
	for _, r := range results {
		byKey[r.Key] = append(byKey[r.Key], r)
	}
	if byKey["a"][0].Sum != 3 || byKey["a"][0].Count != 2 || byKey["a"][0].WindowStart != 0 {
		t.Fatalf("a window 0 = %+v", byKey["a"][0])
	}
	if byKey["a"][1].Sum != 4 || byKey["a"][1].WindowStart != 10*time.Second {
		t.Fatalf("a window 10 = %+v", byKey["a"][1])
	}
	if byKey["b"][0].Sum != 8 {
		t.Fatalf("b = %+v", byKey["b"][0])
	}
}

func TestWatermarkFiresWindows(t *testing.T) {
	p := New(Config{Workers: 1, Window: 10 * time.Second})
	send(t, p, "k", 5, 2*time.Second)
	if err := p.Advance(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Window [0,10) fired at watermark 15 (lateness 0). Give the worker a
	// moment, then check without closing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := p.snapshotResults()
		if len(got) == 1 {
			if got[0].Sum != 5 {
				t.Fatalf("fired %+v", got[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window did not fire after watermark passed")
		}
		time.Sleep(time.Millisecond)
	}
	p.Close()
}

func TestLateEventWithinLatenessIsAbsorbed(t *testing.T) {
	p := New(Config{Workers: 1, Window: 10 * time.Second, AllowedLateness: 10 * time.Second})
	send(t, p, "k", 1, 2*time.Second)
	_ = p.Advance(12 * time.Second) // window [0,10) past end, within lateness
	send(t, p, "k", 10, 3*time.Second)
	results := p.Close()
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Sum != 11 || results[0].Count != 2 {
		t.Fatalf("late event not absorbed: %+v", results[0])
	}
	if p.Reg.Counter("late_dropped").Value() != 0 {
		t.Fatal("in-lateness event counted as dropped")
	}
}

func TestTooLateEventDropped(t *testing.T) {
	p := New(Config{Workers: 1, Window: 10 * time.Second, AllowedLateness: 5 * time.Second})
	send(t, p, "k", 1, 2*time.Second)
	_ = p.Advance(30 * time.Second) // [0,10) closed at 15
	send(t, p, "k", 99, 3*time.Second)
	results := p.Close()
	if len(results) != 1 || results[0].Sum != 1 {
		t.Fatalf("results = %+v", results)
	}
	if p.Reg.Counter("late_dropped").Value() != 1 {
		t.Fatalf("late_dropped = %d", p.Reg.Counter("late_dropped").Value())
	}
}

func TestSlidingWindows(t *testing.T) {
	// Window 10s sliding by 5s: an event at t=7 belongs to [0,10) and [5,15).
	p := New(Config{Workers: 1, Window: 10 * time.Second, Slide: 5 * time.Second})
	send(t, p, "k", 3, 7*time.Second)
	results := p.Close()
	if len(results) != 2 {
		t.Fatalf("panes = %+v", results)
	}
	if results[0].WindowStart != 0 || results[1].WindowStart != 5*time.Second {
		t.Fatalf("pane starts = %v, %v", results[0].WindowStart, results[1].WindowStart)
	}
	for _, r := range results {
		if r.Sum != 3 || r.Count != 1 {
			t.Fatalf("pane %+v", r)
		}
	}
}

func TestKeysPartitionedConsistently(t *testing.T) {
	p := New(Config{Workers: 4, Window: time.Minute})
	for i := 0; i < 1000; i++ {
		send(t, p, fmt.Sprintf("key-%d", i%10), 1, time.Second)
	}
	results := p.Close()
	if len(results) != 10 {
		t.Fatalf("got %d panes, want 10 (one per key)", len(results))
	}
	for _, r := range results {
		if r.Count != 100 {
			t.Fatalf("key %s count %d, want 100", r.Key, r.Count)
		}
	}
}

func TestSendAfterClose(t *testing.T) {
	p := New(Config{Window: time.Second})
	p.Close()
	if err := p.Send(Event{Key: "k"}); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	if err := p.Advance(time.Second); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	// Double close is safe.
	p.Close()
}

func TestClickstreamEndToEnd(t *testing.T) {
	clicks := workload.Clickstream(20000, 500, 50, 5000, 100*time.Millisecond, 3)
	p := New(Config{Workers: 4, Window: time.Second, AllowedLateness: 500 * time.Millisecond})
	var wm time.Duration
	for i, c := range clicks {
		send(t, p, c.User, 1, c.EventTime)
		if i%1000 == 999 {
			if c.EventTime > wm {
				wm = c.EventTime - 200*time.Millisecond
				_ = p.Advance(wm)
			}
		}
	}
	results := p.Close()
	var total int64
	for _, r := range results {
		total += r.Count
	}
	dropped := p.Reg.Counter("late_dropped").Value()
	if total+dropped != 20000 {
		t.Fatalf("counted %d + dropped %d != 20000", total, dropped)
	}
	if float64(dropped) > 0.05*20000 {
		t.Fatalf("dropped %d events (>5%%)", dropped)
	}
	if p.Reg.Histogram("sojourn_ns").Count() == 0 {
		t.Fatal("no sojourn latencies recorded")
	}
}

func TestBackpressureBoundsQueueDepth(t *testing.T) {
	// Slow consumers (WorkSpin) + fast producer: bounded buffer keeps
	// queue depth at the cap; unbounded lets it grow far beyond.
	const n = 20000
	run := func(buffer int) int {
		p := New(Config{Workers: 1, Buffer: buffer, Window: time.Minute, WorkSpin: 2000})
		maxDepth := 0
		for i := 0; i < n; i++ {
			_ = p.Send(Event{Key: "k", Value: 1, EventTime: time.Duration(i) * time.Millisecond})
			if d := p.QueueDepth(); d > maxDepth {
				maxDepth = d
			}
		}
		p.Close()
		return maxDepth
	}
	bounded := run(64)
	unbounded := run(0)
	if bounded > 64 {
		t.Fatalf("bounded queue reached depth %d > 64", bounded)
	}
	if unbounded < 10*bounded {
		t.Fatalf("unbounded depth %d not clearly larger than bounded %d", unbounded, bounded)
	}
}

func TestSojournLatencyLowerWithBackpressureAtOverload(t *testing.T) {
	// At overload, p99 sojourn with a bounded queue stays near
	// (buffer × service time); unbounded grows with the whole backlog.
	const n = 30000
	run := func(buffer int) int64 {
		p := New(Config{Workers: 1, Buffer: buffer, Window: time.Minute, WorkSpin: 1000})
		for i := 0; i < n; i++ {
			_ = p.Send(Event{Key: "k", Value: 1, EventTime: time.Duration(i) * time.Millisecond})
		}
		p.Close()
		return p.Reg.Histogram("sojourn_ns").Quantile(0.99)
	}
	bounded := run(32)
	unbounded := run(0)
	if unbounded < 2*bounded {
		t.Fatalf("unbounded p99 %v not clearly above bounded p99 %v",
			time.Duration(unbounded), time.Duration(bounded))
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	p := New(Config{Workers: 4, Buffer: 1024, Window: time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Send(Event{Key: fmt.Sprintf("k%d", i%64), Value: 1, EventTime: time.Duration(i) * time.Microsecond})
	}
	b.StopTimer()
	p.Close()
}
