package stream

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestPipeStateEncodeRoundTrip(t *testing.T) {
	st := newPipeState()
	st.watermark = 42 * time.Millisecond
	st.seq = 7
	st.panes[paneKey{start: 100 * time.Millisecond, key: "a"}] = &paneAgg{sum: 3.5, count: 2}
	st.panes[paneKey{start: 200 * time.Millisecond, key: "b"}] = &paneAgg{sum: -1.25, count: 9}
	st.panes[paneKey{start: 100 * time.Millisecond, key: "b"}] = &paneAgg{sum: 0.5, count: 1}
	b := st.encode()
	if !reflect.DeepEqual(b, st.encode()) {
		t.Fatal("encoding is not deterministic")
	}
	got, err := decodePipeState(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, st)
	}
	for cut := 1; cut < len(b); cut += 7 {
		if _, err := decodePipeState(b[:len(b)-cut]); err == nil {
			t.Fatalf("truncated snapshot (-%d bytes) accepted", cut)
		}
	}
}

func TestSessStateEncodeRoundTrip(t *testing.T) {
	st := newSessState()
	st.watermark = time.Second
	st.seq = 3
	st.open["a"] = []*session{
		{start: 10 * time.Millisecond, end: 30 * time.Millisecond, sum: 2, count: 2},
		{start: 500 * time.Millisecond, end: 510 * time.Millisecond, sum: 1, count: 1},
	}
	st.open["zz"] = []*session{{start: 0, end: 5 * time.Millisecond, sum: 4.5, count: 3}}
	b := st.encode()
	if !reflect.DeepEqual(b, st.encode()) {
		t.Fatal("encoding is not deterministic")
	}
	got, err := decodeSessState(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, st)
	}
	if _, err := decodeSessState(b[:len(b)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestCheckpointAbortsOnDeadWorker(t *testing.T) {
	p := New(Config{Workers: 3, Window: 100 * time.Millisecond})
	if err := p.CrashWorker(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TriggerCheckpoint(0, 0); err == nil {
		t.Fatal("checkpoint committed with a dead worker")
	}
	if got := p.Reg.Counter("checkpoints_aborted").Value(); got != 1 {
		t.Fatalf("checkpoints_aborted = %d", got)
	}
	// Recovery brings the worker back; the next checkpoint commits.
	if err := p.RestoreFrom(p.GenesisCheckpoint()); err != nil {
		t.Fatal(err)
	}
	ck, err := p.TriggerCheckpoint(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Offset != 5 || ck.Bytes <= 0 || len(ck.States) != 3 {
		t.Fatalf("bad checkpoint: %+v", ck)
	}
	if got := p.Reg.Counter("checkpoints_committed").Value(); got != 1 {
		t.Fatalf("checkpoints_committed = %d", got)
	}
	if err := p.CrashWorker(99); err == nil {
		t.Fatal("out-of-range crash accepted")
	}
	if err := p.RestoreFrom(&Checkpoint{}); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
	p.Close()
	if _, err := p.TriggerCheckpoint(0, 0); err != ErrClosed {
		t.Fatalf("checkpoint after close: %v", err)
	}
	if err := p.CrashWorker(0); err != ErrClosed {
		t.Fatalf("crash after close: %v", err)
	}
	if err := p.RestoreFrom(ck); err != ErrClosed {
		t.Fatalf("restore after close: %v", err)
	}
}

// runPipelineFT drives a checkpointed generator run; faults, when non-nil,
// builds the chaos tick hook over the runner.
func runPipelineFT(t *testing.T, faults func(r *Runner) func()) ([]Result, *metrics.Registry) {
	t.Helper()
	src := NewGeneratorSource(5, 6000, 16, time.Millisecond, 4*time.Millisecond)
	r := NewRunner(RunConfig{
		Pipeline:        Config{Workers: 4, Window: 200 * time.Millisecond},
		CheckpointEvery: 1000,
		WatermarkEvery:  100,
		WatermarkLag:    5 * time.Millisecond,
		TickEvery:       200,
	}, src)
	if faults != nil {
		r.OnTick(faults(r))
	}
	out, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out, r.Metrics()
}

func TestRunnerExactlyOnceAfterCrashRestore(t *testing.T) {
	clean, cleanReg := runPipelineFT(t, nil)
	if len(clean) == 0 {
		t.Fatal("clean run produced no results")
	}
	if got := cleanReg.Counter("panes_deduped").Value(); got != 0 {
		t.Fatalf("clean run deduped %d panes", got)
	}
	faulted, reg := runPipelineFT(t, func(r *Runner) func() {
		tick := 0
		return func() {
			tick++
			if tick == 5 {
				_ = r.CrashWorker(2)
			}
			if tick == 12 {
				_ = r.RestoreWorker(2)
			}
		}
	})
	if !reflect.DeepEqual(faulted, clean) {
		t.Fatalf("faulted output diverged from clean run: %d vs %d results", len(faulted), len(clean))
	}
	for name, want := range map[string]int64{
		"stream_worker_crashes":    1,
		"stream_recoveries":        1,
		"checkpoints_aborted":      1, // the barrier that hit the dead worker
		"panes_deduped":            1,
		"recovery_replayed_events": 1,
		"crashed_dropped_events":   1,
		"checkpoints_committed":    1,
		"checkpoint_bytes":         1,
	} {
		if got := reg.Counter(name).Value(); got < want {
			t.Errorf("%s = %d, want >= %d", name, got, want)
		}
	}
}

func TestRunnerCrashWithoutRestoreRecoversAtEOF(t *testing.T) {
	clean, _ := runPipelineFT(t, nil)
	faulted, reg := runPipelineFT(t, func(r *Runner) func() {
		tick := 0
		return func() {
			tick++
			if tick == 20 {
				_ = r.CrashWorker(0)
				_ = r.CrashWorker(3)
			}
		}
	})
	if !reflect.DeepEqual(faulted, clean) {
		t.Fatal("crash-without-restore run lost or duplicated data")
	}
	if got := reg.Counter("stream_worker_crashes").Value(); got != 2 {
		t.Fatalf("stream_worker_crashes = %d", got)
	}
	if got := reg.Counter("stream_recoveries").Value(); got < 1 {
		t.Fatalf("stream_recoveries = %d", got)
	}
	if got := reg.Counter("recovery_replayed_events").Value(); got <= 0 {
		t.Fatalf("recovery_replayed_events = %d", got)
	}
}

func TestRunnerWithoutCheckpointsReplaysFromZero(t *testing.T) {
	run := func(fault bool) ([]Result, *metrics.Registry) {
		src := NewGeneratorSource(9, 2000, 8, time.Millisecond, 0)
		r := NewRunner(RunConfig{
			Pipeline:       Config{Workers: 2, Window: 100 * time.Millisecond},
			WatermarkEvery: 100,
			TickEvery:      100,
		}, src)
		if fault {
			tick := 0
			r.OnTick(func() {
				tick++
				if tick == 8 {
					_ = r.CrashWorker(1)
				}
				if tick == 12 {
					_ = r.RestoreWorker(1)
				}
			})
		}
		out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out, r.Metrics()
	}
	clean, _ := run(false)
	faulted, reg := run(true)
	if !reflect.DeepEqual(faulted, clean) {
		t.Fatal("replay-from-genesis run diverged from clean run")
	}
	// Recovery rolled back to the genesis checkpoint: the whole prefix
	// replayed and every previously fired pane was deduped.
	if got := reg.Counter("recovery_replayed_events").Value(); got < 1200 {
		t.Fatalf("recovery_replayed_events = %d, want full prefix", got)
	}
	if got := reg.Counter("panes_deduped").Value(); got <= 0 {
		t.Fatalf("panes_deduped = %d", got)
	}
}

func TestSessionizerCheckpointRecovery(t *testing.T) {
	gap := 100 * time.Millisecond
	var evs []Event
	for b := 0; b < 12; b++ {
		for i := 0; i < 8; i++ {
			evs = append(evs, Event{
				Key:       fmt.Sprintf("k%d", b%5),
				Value:     float64(i + 1),
				EventTime: time.Duration(b*300+i*10) * time.Millisecond,
			})
		}
	}
	send := func(s *Sessionizer, batch []Event) {
		for _, ev := range batch {
			if err := s.Send(ev); err != nil {
				t.Fatal(err)
			}
		}
	}

	clean := NewSessionizer(SessionConfig{Gap: gap, Workers: 4})
	send(clean, evs[:40])
	if err := clean.Advance(1200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	send(clean, evs[40:])
	if err := clean.Advance(3000 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := clean.Close()
	if len(want) == 0 {
		t.Fatal("clean run produced no sessions")
	}

	s := NewSessionizer(SessionConfig{Gap: gap, Workers: 4})
	send(s, evs[:40])
	if err := s.Advance(1200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ck, err := s.TriggerCheckpoint(40, 1200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Bytes <= 0 {
		t.Fatal("checkpoint carried no state")
	}
	// Crash mid-window: worker 1 drops its share of the second phase, the
	// rest fire sessions the replay will re-fire.
	send(s, evs[40:70])
	if err := s.CrashWorker(1); err != nil {
		t.Fatal(err)
	}
	send(s, evs[70:])
	if err := s.Advance(3000 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Recovery: global rollback to the checkpoint, then replay the tail.
	if err := s.RestoreFrom(ck); err != nil {
		t.Fatal(err)
	}
	send(s, evs[40:])
	if err := s.Advance(3000 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got := s.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered sessions diverged from clean run: %d vs %d", len(got), len(want))
	}
	if n := s.Reg.Counter("sessions_deduped").Value(); n <= 0 {
		t.Fatalf("sessions_deduped = %d", n)
	}
	if n := s.Reg.Counter("crashed_dropped_events").Value(); n <= 0 {
		t.Fatalf("crashed_dropped_events = %d", n)
	}
	if n := s.Reg.Counter("stream_recoveries").Value(); n != 1 {
		t.Fatalf("stream_recoveries = %d", n)
	}
}

func TestSessionizerCheckpointAfterCloseErrors(t *testing.T) {
	s := NewSessionizer(SessionConfig{Gap: time.Millisecond, Workers: 2})
	ck, err := s.TriggerCheckpoint(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.TriggerCheckpoint(0, 0); err != ErrClosed {
		t.Fatalf("checkpoint after close: %v", err)
	}
	if err := s.CrashWorker(0); err != ErrClosed {
		t.Fatalf("crash after close: %v", err)
	}
	if err := s.RestoreFrom(ck); err != ErrClosed {
		t.Fatalf("restore after close: %v", err)
	}
}
