package stream

import (
	"reflect"
	"testing"
	"time"
)

func TestGeneratorSourceDeterministic(t *testing.T) {
	mk := func() *GeneratorSource {
		return NewGeneratorSource(42, 500, 8, time.Millisecond, 5*time.Millisecond)
	}
	a, b := mk(), mk()
	for i := 0; ; i++ {
		ea, oka := a.Next()
		eb, okb := b.Next()
		if oka != okb {
			t.Fatalf("length diverged at %d", i)
		}
		if !oka {
			break
		}
		if ea != eb {
			t.Fatalf("event %d diverged: %+v vs %+v", i, ea, eb)
		}
	}
	if a.Offset() != 500 {
		t.Fatalf("offset = %d, want 500", a.Offset())
	}
}

func TestGeneratorSourceSeekReplaysIdentically(t *testing.T) {
	src := NewGeneratorSource(7, 200, 4, time.Millisecond, 0)
	var first []Event
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		first = append(first, ev)
	}
	if err := src.SeekTo(50); err != nil {
		t.Fatal(err)
	}
	if src.Offset() != 50 {
		t.Fatalf("offset = %d after seek", src.Offset())
	}
	var tail []Event
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		tail = append(tail, ev)
	}
	if !reflect.DeepEqual(tail, first[50:]) {
		t.Fatal("replayed tail diverged from first read")
	}
	if err := src.SeekTo(-1); err == nil {
		t.Fatal("negative seek accepted")
	}
	if err := src.SeekTo(201); err == nil {
		t.Fatal("past-end seek accepted")
	}
}

func TestGeneratorSourceBoundedDisorder(t *testing.T) {
	jitter := 10 * time.Millisecond
	src := NewGeneratorSource(3, 1000, 8, time.Millisecond, jitter)
	var prevBase time.Duration
	for i := int64(0); i < 1000; i++ {
		ev := src.At(i)
		base := time.Duration(i) * time.Millisecond
		if ev.EventTime < base || ev.EventTime > base+jitter {
			t.Fatalf("event %d time %v outside [%v,%v]", i, ev.EventTime, base, base+jitter)
		}
		prevBase = base
	}
	_ = prevBase
}

func TestSliceSource(t *testing.T) {
	evs := []Event{{Key: "a"}, {Key: "b"}, {Key: "c"}}
	src := NewSliceSource(evs)
	got := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		got++
	}
	if got != 3 || src.Offset() != 3 {
		t.Fatalf("read %d, offset %d", got, src.Offset())
	}
	if err := src.SeekTo(1); err != nil {
		t.Fatal(err)
	}
	ev, ok := src.Next()
	if !ok || ev.Key != "b" {
		t.Fatalf("after seek got %+v %v", ev, ok)
	}
}
