// Replayable sources for the stream engine. Exactly-once recovery needs
// the input to be rewindable: instead of re-reading events lost inside a
// crashed worker, recovery seeks the source back to the last committed
// checkpoint's offset and replays the tail. Both sources here are pure
// functions of (their construction parameters, offset), so a rewound
// replay delivers byte-identical events in byte-identical order.
package stream

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// Source is a replayable, offset-addressed event stream. Offset reports
// how many events have been read (the offset of the next event); SeekTo
// rewinds (or fast-forwards) the cursor, which is what recovery uses to
// replay the tail after a rollback. Sources are driven from a single
// goroutine (the Runner's loop) and need not be concurrency-safe.
type Source interface {
	Next() (Event, bool)
	Offset() int64
	SeekTo(offset int64) error
}

// GeneratorSource is a deterministic synthetic event stream: event i is a
// pure function of (seed, i), generated from a per-offset SplitMix-seeded
// RNG, so any offset can be re-read at any time. Event times advance by
// Step per record with up to Jitter of seeded disorder, giving the
// bounded out-of-orderness the watermark lag is meant to absorb.
type GeneratorSource struct {
	seed   uint64
	n      int64
	keys   int
	step   time.Duration
	jitter time.Duration
	off    int64
}

// NewGeneratorSource builds a generator of n events over `keys` distinct
// keys. step is the mean event-time advance per record (required > 0);
// jitter adds up to that much seeded event-time disorder per record.
func NewGeneratorSource(seed uint64, n int64, keys int, step, jitter time.Duration) *GeneratorSource {
	if keys <= 0 {
		keys = 16
	}
	if step <= 0 {
		step = time.Millisecond
	}
	return &GeneratorSource{seed: seed, n: n, keys: keys, step: step, jitter: jitter}
}

// At returns event i without moving the cursor.
func (g *GeneratorSource) At(i int64) Event {
	// Decorrelate nearby offsets the same way rng seeds decorrelate:
	// a golden-ratio stride through the seed space.
	r := rng.New(g.seed + uint64(i)*0x9e3779b97f4a7c15)
	t := time.Duration(i) * g.step
	if g.jitter > 0 {
		t += time.Duration(r.Int63n(int64(g.jitter) + 1))
	}
	return Event{
		Key:       fmt.Sprintf("k%03d", r.Intn(g.keys)),
		Value:     float64(1 + r.Intn(100)),
		EventTime: t,
	}
}

// Next returns the event at the cursor and advances it.
func (g *GeneratorSource) Next() (Event, bool) {
	if g.off >= g.n {
		return Event{}, false
	}
	ev := g.At(g.off)
	g.off++
	return ev, true
}

// Offset returns the offset of the next unread event.
func (g *GeneratorSource) Offset() int64 { return g.off }

// SeekTo moves the cursor; used by recovery to replay from a checkpoint.
func (g *GeneratorSource) SeekTo(off int64) error {
	if off < 0 || off > g.n {
		return fmt.Errorf("stream: seek to %d outside [0,%d]", off, g.n)
	}
	g.off = off
	return nil
}

// DeadlineSource caps an inner source at an event-time budget: once the
// next event's time passes the budget, the source reports exhaustion and
// rewinds the unread event, so the run drains gracefully with every
// in-budget event processed exactly once. This is the graceful
// counterpart to Runner.RunCtx's hard abort. Replay after a recovery
// rewind re-trips at the same event, keeping runs deterministic.
type DeadlineSource struct {
	src     Source
	budget  time.Duration
	tripped bool
}

// NewDeadlineSource wraps src with an event-time budget; budget <= 0
// means unlimited.
func NewDeadlineSource(src Source, budget time.Duration) *DeadlineSource {
	return &DeadlineSource{src: src, budget: budget}
}

// Next returns the next event, or false once the inner source is dry or
// the budget is exceeded.
func (d *DeadlineSource) Next() (Event, bool) {
	ev, ok := d.src.Next()
	if !ok {
		return Event{}, false
	}
	if d.budget > 0 && ev.EventTime > d.budget {
		d.tripped = true
		// Leave the over-budget event unread so offsets stay honest for
		// checkpoints and replay.
		_ = d.src.SeekTo(d.src.Offset() - 1)
		return Event{}, false
	}
	return ev, true
}

// Offset returns the offset of the next unread event.
func (d *DeadlineSource) Offset() int64 { return d.src.Offset() }

// SeekTo moves the cursor; used by recovery to replay from a checkpoint.
func (d *DeadlineSource) SeekTo(off int64) error { return d.src.SeekTo(off) }

// Tripped reports whether the budget ever cut the stream short (as
// opposed to the inner source running dry on its own).
func (d *DeadlineSource) Tripped() bool { return d.tripped }

// SliceSource replays a fixed event slice; handy for tests and for
// feeding captured traces through the fault-tolerant runner.
type SliceSource struct {
	evs []Event
	off int64
}

// NewSliceSource wraps evs (not copied) as a replayable source.
func NewSliceSource(evs []Event) *SliceSource { return &SliceSource{evs: evs} }

// Next returns the event at the cursor and advances it.
func (s *SliceSource) Next() (Event, bool) {
	if s.off >= int64(len(s.evs)) {
		return Event{}, false
	}
	ev := s.evs[s.off]
	s.off++
	return ev, true
}

// Offset returns the offset of the next unread event.
func (s *SliceSource) Offset() int64 { return s.off }

// SeekTo moves the cursor; used by recovery to replay from a checkpoint.
func (s *SliceSource) SeekTo(off int64) error {
	if off < 0 || off > int64(len(s.evs)) {
		return fmt.Errorf("stream: seek to %d outside [0,%d]", off, len(s.evs))
	}
	s.off = off
	return nil
}
