package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// These tests exist for the -race build: the old Send/Advance checked
// closed, released the lock, then sent — a concurrent Close could close
// the channel first and panic the send. Senders now hold the read lock
// across the send, so the only acceptable outcomes here are success or
// ErrClosed.

func TestPipelineCloseRace(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		p := New(Config{Workers: 2, Window: 10 * time.Millisecond})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					ev := Event{Key: fmt.Sprintf("k%d", (g*31+i)%8), Value: 1,
						EventTime: time.Duration(i) * time.Millisecond}
					if err := p.Send(ev); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Send: %v", err)
						}
						return
					}
					if i%5 == 0 {
						if err := p.Advance(time.Duration(i) * time.Millisecond); err != nil {
							if !errors.Is(err, ErrClosed) {
								t.Errorf("Advance: %v", err)
							}
							return
						}
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := p.TriggerCheckpoint(0, 0); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("TriggerCheckpoint: %v", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p.Close()
		}()
		close(start)
		wg.Wait()
		p.Close() // idempotent
	}
}

func TestSessionizerCloseRace(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		s := NewSessionizer(SessionConfig{Gap: 10 * time.Millisecond, Workers: 2})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					ev := Event{Key: fmt.Sprintf("k%d", (g*17+i)%8), Value: 1,
						EventTime: time.Duration(i) * time.Millisecond}
					if err := s.Send(ev); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Send: %v", err)
						}
						return
					}
					if i%5 == 0 {
						if err := s.Advance(time.Duration(i) * time.Millisecond); err != nil {
							if !errors.Is(err, ErrClosed) {
								t.Errorf("Advance: %v", err)
							}
							return
						}
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := s.TriggerCheckpoint(0, 0); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("TriggerCheckpoint: %v", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.Close()
		}()
		close(start)
		wg.Wait()
		s.Close()
	}
}
