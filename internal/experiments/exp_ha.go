package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	hpbdc "repro"
	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/workload"
)

// haCfg carries the CLI overrides (-ha with -seed/-chaos) into the E-HA
// experiment.
var haCfg = struct {
	mu   sync.Mutex
	seed uint64
	spec string
}{}

// SetHAConfig overrides the E-HA experiment sweep: a nonzero seed
// replaces the default seed sweep with that single seed, and a non-empty
// chaos spec (a preset name or schedule text) replaces the control-plane
// preset sweep. Zero values keep the defaults.
func SetHAConfig(seed uint64, spec string) {
	haCfg.mu.Lock()
	defer haCfg.mu.Unlock()
	haCfg.seed = seed
	haCfg.spec = spec
}

// EHAControlPlane measures control-plane high availability: a two-stage
// shuffled job (wordcount, then regroup-by-count) runs with the namenode
// replicated on a 3-member Raft group and the coordinator journaling
// stage completions, under schedules that crash the namenode leader, the
// coordinator, or both. Failover latency is the tick count from leader
// crash to replacement election; resumed vs restarted counts show how
// much journaled work a coordinator crash salvaged; the oracle compares
// the post-failover output to the sequential reference.
func EHAControlPlane(s Scale) *Table {
	haCfg.mu.Lock()
	seedOverride, spec := haCfg.seed, haCfg.spec
	haCfg.mu.Unlock()

	t := &Table{
		ID:    "E-HA",
		Title: "Control-plane HA: namenode failover and coordinator crash-resume",
		Note:  "8 nodes, 3-member control-plane group, two-shuffle wordcount; failover-ticks is group ticks from leader crash to replacement; resumed/restarted count journaled stages recovered vs recomputed after a coordinator crash",
		Cols: []string{"schedule", "seed", "wall", "failovers", "failover-ticks",
			"redirects", "coord-crashes", "resumed", "restarted", "oracle"},
	}
	lines := pick(s, 400, 4_000)
	corpus := workload.Text(lines, 10, 500, 0.9, 3)
	const nodes = 8

	// GroupByKey may deliver a count's word list in any order, so the
	// encoding canonicalizes each group before the multiset comparison.
	encodeGroup := func(p hpbdc.Pair[int64, []string]) string {
		words := append([]string(nil), p.Value...)
		sort.Strings(words)
		return fmt.Sprintf("%d=%s", p.Key, strings.Join(words, ","))
	}
	var want []hpbdc.Pair[int64, []string]

	run := func(job string, sched chaos.Schedule, seed uint64) (time.Duration, *hpbdc.Context, check.Diff) {
		ctx := hpbdc.New(hpbdc.Config{
			Racks:         2,
			NodesPerRack:  4,
			Seed:          seed,
			HA:            true,
			Chaos:         sched,
			EnableTracing: true,
		})
		words := hpbdc.FlatMap(hpbdc.Parallelize(ctx, corpus, 16), strings.Fields)
		ones := hpbdc.MapValues(hpbdc.KeyBy(words, func(w string) string { return w }),
			func(string) int64 { return 1 })
		counts := hpbdc.ReduceByKey(ones, hpbdc.StringCodec, hpbdc.Int64Codec, 8,
			func(a, b int64) int64 { return a + b })
		// Second shuffle: invert to count -> words, so the job has two
		// journaled stages and a mid-job coordinator crash can resume one.
		byCount := hpbdc.GroupByKey(
			hpbdc.MapValues(
				hpbdc.KeyBy(counts, func(p hpbdc.Pair[string, int64]) int64 { return p.Value }),
				func(p hpbdc.Pair[string, int64]) string { return p.Key }),
			hpbdc.Int64Codec, hpbdc.StringCodec, 4)
		start := time.Now()
		rows, err := byCount.Collect()
		if err != nil {
			panic(fmt.Sprintf("%s: %v", job, err))
		}
		wall := time.Since(start)
		if want == nil {
			want = hpbdc.ReferenceCollect(byCount)
		}
		diff := recordCheck(check.DiffMultiset(job, rows, want, encodeGroup))
		return wall, ctx, diff
	}

	type entry struct {
		name  string
		sched chaos.Schedule
	}
	var entries []entry
	if spec != "" {
		sched, err := chaos.Load(spec, nodes)
		if err != nil {
			panic(fmt.Sprintf("E-HA: -chaos: %v", err))
		}
		entries = []entry{{"custom", sched}}
	} else {
		for _, name := range []string{"nn-crash", "coord-crash", "ha"} {
			sched, err := chaos.Preset(name, nodes)
			if err != nil {
				panic(err)
			}
			entries = append(entries, entry{name, sched})
		}
	}
	seeds := []uint64{1, 7, 42}
	if seedOverride != 0 {
		seeds = []uint64{seedOverride}
	}

	for _, e := range entries {
		name, sched := e.name, e.sched
		for _, seed := range seeds {
			job := fmt.Sprintf("E-HA/%s/seed-%d", name, seed)
			wall, ctx, diff := run(job, sched, seed)
			reg := ctx.Metrics()
			ticks := "-"
			if h := reg.Histogram("ha_failover_ticks"); h.Count() > 0 {
				ticks = fmt.Sprintf("%.1f", h.Mean())
			}
			t.AddRow(name, fmt.Sprintf("%d", seed),
				wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%d", reg.Counter("ha_failovers").Value()),
				ticks,
				fmt.Sprintf("%d", reg.Counter("ha_redirects").Value()),
				fmt.Sprintf("%d", reg.Counter("coord_crashes").Value()),
				fmt.Sprintf("%d", reg.Counter("coord_stages_resumed").Value()),
				fmt.Sprintf("%d", reg.Counter("coord_stages_restarted").Value()),
				verdictCell(diff))
			if name == entries[len(entries)-1].name && seed == seeds[len(seeds)-1] {
				observe(t, job, ctx)
			}
		}
	}
	return t
}
