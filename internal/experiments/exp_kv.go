package experiments

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// E5KVQuorum sweeps quorum configurations and key skew on the Dynamo-style
// store: real ops/sec plus simulated mean and p99 latency, and the
// consistency machinery's activity (read repairs).
func E5KVQuorum(s Scale) *Table {
	t := &Table{
		ID:    "E5",
		Title: "KV store: throughput and latency vs (R,W) quorum and skew",
		Note: "N=3 replicas on 8 nodes, 90% reads, 128B values, TCP fabric (network-dominated regime); " +
			"linear is a per-config linearizability verdict over a captured concurrent history",
		Cols: []string{"R", "W", "zipf-s", "ops/s", "get-mean", "get-p99", "put-mean", "repairs", "linear"},
	}
	ops := pick(s, 5_000, 50_000)
	quorums := [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, 1}}
	for _, rw := range quorums {
		for _, skew := range []float64{0, 0.99} {
			fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.TCP40G)
			store, err := kvstore.New(kvstore.Config{Fabric: fab, N: 3, R: rw[0], W: rw[1]})
			if err != nil {
				panic(err)
			}
			trace := workload.KVOps(ops, 10_000, skew, 0.9, 128, uint64(rw[0]*10+rw[1]))
			start := time.Now()
			for i, op := range trace {
				coord := topology.NodeID(i % 8)
				switch op.Kind {
				case workload.OpPut:
					if _, err := store.Put(coord, op.Key, op.Value); err != nil {
						panic(err)
					}
				case workload.OpGet:
					if _, _, err := store.Get(coord, op.Key); err != nil && err != kvstore.ErrNotFound {
						panic(err)
					}
				}
			}
			elapsed := time.Since(start)
			getH := store.Reg.Histogram("get_latency_ns").Snapshot()
			putH := store.Reg.Histogram("put_latency_ns").Snapshot()

			// Linearizability check: capture a concurrent client history
			// against the same (already loaded) store and search for a
			// sequential witness. Runs for every quorum config — in this
			// simulation writes reach every live preference replica
			// synchronously, so even R+W <= N configs must check out.
			name := fmt.Sprintf("E5/r%dw%d/zipf-%.2f", rw[0], rw[1], skew)
			h := check.CaptureHistory(store, check.CaptureConfig{
				Clients: 4, Waves: 20, Keys: 6, Nodes: 8,
				ReadFraction: 0.4, DeleteFraction: 0.1,
				Seed:       uint64(rw[0]*10 + rw[1]),
				IsNotFound: func(err error) bool { return err == kvstore.ErrNotFound },
			})
			verdict := check.Linearizable(h)
			diff := check.Diff{Name: name, OK: verdict.OK, Compared: verdict.Ops}
			if !verdict.OK {
				diff.Details = []string{verdict.String()}
			}
			recordCheck(diff)

			t.AddRow(
				fmt.Sprintf("%d", rw[0]), fmt.Sprintf("%d", rw[1]),
				fmt.Sprintf("%.2f", skew),
				fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
				time.Duration(int64(getH.Mean)).Round(time.Microsecond).String(),
				time.Duration(getH.P99).Round(time.Microsecond).String(),
				time.Duration(int64(putH.Mean)).Round(time.Microsecond).String(),
				fmt.Sprintf("%d", store.Reg.Counter("read_repairs").Value()),
				verdictCell(diff),
			)
		}
	}
	return t
}
