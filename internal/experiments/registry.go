package experiments

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Scale) *Table
}

// All returns the full suite in order.
func All() []Runner {
	return []Runner{
		{"E1", "transport microbenchmark", E1Transport},
		{"E2", "shuffle throughput", E2Shuffle},
		{"E3", "terasort weak scaling", E3TeraSort},
		{"E4", "wordcount dataflow vs mapreduce", E4WordCount},
		{"E5", "kv quorum sweep", E5KVQuorum},
		{"E6", "scheduler comparison", E6Scheduler},
		{"E7", "stream load-latency", E7Stream},
		{"E8", "pagerank strong scaling", E8PageRank},
		{"E9", "fault recovery", E9Recovery},
		{"E10", "parameter server modes", E10ParamServer},
		{"E11", "autoscaling", E11Autoscale},
		{"E12", "raft commit latency", E12Raft},
		{"EFT", "fault tolerance under chaos", EFTChaos},
		{"E-SFT", "streaming exactly-once fault tolerance", ESFTStream},
		{"E-HA", "control-plane HA failover", EHAControlPlane},
		{"E-OVL", "overload admission control", EOVLOverload},
		{"E-TXN", "sharded KV transactions under chaos", ETXNTransactions},
		{"E-GRAY", "gray-failure availability", EGRAYGrayFailures},
		{"E-SQL", "sql planner differential suite", ESQLPlanner},
	}
}
