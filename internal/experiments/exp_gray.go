package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/ha"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// grayCfg carries the CLI overrides (-gray with -seed/-chaos) into the
// E-GRAY experiment.
var grayCfg = struct {
	mu   sync.Mutex
	seed uint64
	spec string
}{}

// SetGrayConfig overrides the E-GRAY sweep: a nonzero seed replaces the
// default seed sweep with that single seed, and a non-empty chaos spec (a
// preset name or schedule text) replaces the gray schedule sweep. Zero
// values keep the defaults.
func SetGrayConfig(seed uint64, spec string) {
	grayCfg.mu.Lock()
	defer grayCfg.mu.Unlock()
	grayCfg.seed = seed
	grayCfg.spec = spec
}

const (
	grayNodes   = 5
	grayHorizon = 300

	// Defended bounds: the hardened cluster may lose at most this much
	// availability while a connected majority exists (one step-down plus
	// one election, with margin), and terms may grow by at most a handful
	// of real elections — never the per-tick inflation of the control.
	grayMaxLongest   = 80
	grayMaxTotal     = 120
	grayMaxTermDelta = 8

	// Control teeth: the undefended run must visibly livelock or wedge —
	// either runaway terms or a substantial unavailability total.
	grayCtlTermDelta = 4
	grayCtlUnavail   = 10
)

// graySchedules are the asymmetric fault shapes the sweep covers, sized
// for a 5-node cluster with the leader rigged to node 0.
//
//   - one-way: nodes 0-3 stop reaching node 4 (it still sends) — the
//     inbound-isolated node whose escaping campaigns livelock vanilla Raft.
//   - partial: node 0 is pairwise cut from {2,3,4} both ways while node 1
//     bridges — a non-transitive partition that wedges or deposes an
//     undefended leader and exercises CheckQuorum on a defended one.
//   - flap: every directed link flips with p=0.25 per tick for 100 ticks —
//     the flapping-NIC shape; randomized election backoff keeps the
//     defended cluster from synchronized re-election storms.
func graySchedules() []struct{ name, text string } {
	return []struct{ name, text string }{
		{"one-way", "4 link-cut 0-3 4\n154 link-heal 0-3 4\n"},
		{"partial", "4 partial-partition 0|2-4\n154 heal\n"},
		{"flap", "4 flap 0-4 0-4 0.25\n104 unflap 0-4 0-4\n105 heal\n"},
	}
}

// grayRun drives one cluster through a gray schedule, probing with one
// commit-confirmed proposal per tick, and returns the availability report
// plus the term growth and step-down counts.
func grayRun(hardened bool, sched chaos.Schedule, seed uint64) (check.AvailReport, uint64, uint64) {
	var c *consensus.Cluster
	if hardened {
		c = consensus.NewHardenedCluster(grayNodes, seed)
	} else {
		c = consensus.NewCluster(grayNodes, seed)
	}
	if l := c.RunUntilLeader(400); l < 0 {
		panic("E-GRAY: no boot leader")
	}
	if !c.TransferLeadership(0, 80) {
		panic("E-GRAY: could not rig leader to node 0")
	}
	reg := metrics.NewRegistry()
	ctl := chaos.New(sched, seed, chaos.Targets{Nodes: grayNodes, Consensus: c}, reg)
	boot := c.MaxTerm()

	pts := make([]check.AvailPoint, 0, grayHorizon)
	for tick := int64(1); tick <= grayHorizon; tick++ {
		ctl.AdvanceTo(tick)
		c.Tick()
		_, ok := c.ProposeAndCountRounds([]byte{byte(tick), byte(tick >> 8)})
		pts = append(pts, check.AvailPoint{T: tick, OK: ok, MajorityConnected: c.HasConnectedMajority()})
	}
	return check.Availability(pts), c.MaxTerm() - boot, c.StepDowns()
}

// EGRAYGrayFailures measures gray-failure tolerance: asymmetric faults
// (one-way link cuts, a non-transitive partial partition, link flapping)
// against a 5-node Raft cluster, control (vanilla) vs defended (PreVote +
// CheckQuorum + randomized backoff). One commit-confirmed proposal probes
// every tick; check.Availability charges only failures that happen while
// a connected majority exists. The control must show the livelock
// (runaway terms or a large unavailability total) and the defended run
// must bound both — each gated by a recorded oracle verdict. A final row
// captures a concurrent register history against a default-hardened
// ha.Group under one-way cuts and checks it linearizable.
func EGRAYGrayFailures(s Scale) *Table {
	grayCfg.mu.Lock()
	seedOverride, spec := grayCfg.seed, grayCfg.spec
	grayCfg.mu.Unlock()

	t := &Table{
		ID:    "E-GRAY",
		Title: "Gray-failure tolerance: asymmetric partitions vs Raft liveness hardening",
		Note:  "5 nodes, leader rigged to node 0, one commit-confirmed probe per tick over 300 ticks; failed/longest/unavail count only probes that failed while a connected majority existed; term-delta is MaxTerm growth from boot; defended = PreVote + CheckQuorum + randomized election backoff",
		Cols: []string{"schedule", "mode", "seed", "probes", "failed", "windows",
			"longest", "unavail", "term-delta", "stepdowns", "verdict"},
	}

	type entry struct {
		name  string
		sched chaos.Schedule
	}
	var entries []entry
	if spec != "" {
		sched, err := chaos.Load(spec, grayNodes)
		if err != nil {
			panic(fmt.Sprintf("E-GRAY: -chaos: %v", err))
		}
		entries = []entry{{"custom", sched}}
	} else {
		for _, gs := range graySchedules() {
			sched, err := chaos.Parse(gs.text)
			if err != nil {
				panic(fmt.Sprintf("E-GRAY: %s: %v", gs.name, err))
			}
			entries = append(entries, entry{gs.name, sched})
		}
	}
	seeds := pick(s, []uint64{7}, []uint64{1, 7, 42})
	if seedOverride != 0 {
		seeds = []uint64{seedOverride}
	}

	for _, e := range entries {
		for _, seed := range seeds {
			for _, mode := range []string{"control", "defended"} {
				hardened := mode == "defended"
				rep, termDelta, stepdowns := grayRun(hardened, e.sched, seed)
				job := fmt.Sprintf("E-GRAY/%s/seed-%d/%s", e.name, seed, mode)

				var diff check.Diff
				switch {
				case hardened:
					diff = check.DiffAvailability(job, rep, grayMaxLongest, grayMaxTotal)
					if termDelta > grayMaxTermDelta {
						diff.OK = false
						diff.Details = append(diff.Details,
							fmt.Sprintf("term growth %d > bound %d", termDelta, grayMaxTermDelta))
					}
					diff = recordCheck(diff)
				case e.name == "flap":
					// Flap control runs are informational: vanilla Raft may or
					// may not livelock under a given coin, so nothing is gated.
					diff = check.Diff{Name: job, OK: true, Compared: rep.Probes}
				default:
					// Control teeth: the failure must actually appear, or the
					// defended rows are measuring against a strawman.
					diff = check.Diff{Name: job + "/teeth", OK: true, Compared: rep.Probes}
					if termDelta < grayCtlTermDelta && rep.Total < grayCtlUnavail {
						diff.OK = false
						diff.Details = []string{fmt.Sprintf(
							"control shows no livelock: term growth %d, unavailable %d", termDelta, rep.Total)}
					}
					diff = recordCheck(diff)
				}
				t.AddRow(e.name, mode, fmt.Sprintf("%d", seed),
					fmt.Sprintf("%d", rep.Probes),
					fmt.Sprintf("%d", rep.Failed),
					fmt.Sprintf("%d", rep.Windows),
					fmt.Sprintf("%d", rep.Longest),
					fmt.Sprintf("%d", rep.Total),
					fmt.Sprintf("%d", termDelta),
					fmt.Sprintf("%d", stepdowns),
					verdictCell(diff))
			}
		}
	}

	// Linearizability under gray faults: concurrent clients against a
	// replicated register (every read routed through the log), with both
	// followers' links toward the leader cut mid-capture and healed later.
	for _, seed := range seeds {
		kv, g := newGrayRegKV(seed)
		h := check.CaptureHistory(kv, check.CaptureConfig{
			Clients: 4, Waves: 12, Keys: 6, Nodes: 1,
			ReadFraction: 0.4, DeleteFraction: 0.1,
			Seed:       seed,
			IsNotFound: func(err error) bool { return errors.Is(err, errGrayNotFound) },
			BetweenWaves: func(wave int) {
				switch wave {
				case 2:
					l := g.Leader()
					for i := 0; i < g.Members(); i++ {
						if i != l {
							g.CutLink(i, l)
						}
					}
				case 8:
					g.Heal()
				}
			},
		})
		verdict := check.Linearizable(h)
		job := fmt.Sprintf("E-GRAY/ha-register/seed-%d", seed)
		diff := check.Diff{Name: job, OK: verdict.OK, Compared: verdict.Ops}
		if !verdict.OK {
			diff.Details = []string{verdict.String()}
		}
		diff = recordCheck(diff)
		t.AddRow("ha-register", "defended", fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d", verdict.Ops), "-", "-", "-", "-",
			"-", fmt.Sprintf("%d", g.StepDowns()), verdictCell(diff))
	}
	return t
}

// --- replicated register KV over ha.Group -------------------------------

// errGrayNotFound classifies "read observed an absent key".
var errGrayNotFound = errors.New("gray register: not found")

// regSM is a replicated string register map. Commands are
// op\x00key[\x00value]; a get returns "1"+value or "0", so reads route
// through the Raft log and the capture is linearizable by construction —
// the check then validates the exactly-once envelope and failover
// behaviour under the cuts.
type regSM struct{ m map[string]string }

func newRegSM() ha.StateMachine { return &regSM{m: map[string]string{}} }

func (r *regSM) Apply(cmd []byte) []byte {
	parts := strings.SplitN(string(cmd), "\x00", 3)
	switch parts[0] {
	case "p":
		r.m[parts[1]] = parts[2]
	case "d":
		delete(r.m, parts[1])
	case "g":
		if v, ok := r.m[parts[1]]; ok {
			return append([]byte("1"), v...)
		}
		return []byte("0")
	}
	return nil
}

func (r *regSM) Snapshot() []byte {
	keys := make([]string, 0, len(r.m))
	for k := range r.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0)
		b.WriteString(r.m[k])
		b.WriteByte(0)
	}
	return []byte(b.String())
}

func (r *regSM) Restore(snap []byte) {
	r.m = map[string]string{}
	parts := strings.Split(string(snap), "\x00")
	for i := 0; i+1 < len(parts); i += 2 {
		r.m[parts[i]] = parts[i+1]
	}
}

// grayRegKV adapts the ha.Group register to the check.QuorumKV surface.
type grayRegKV struct{ g *ha.Group }

func newGrayRegKV(seed uint64) (grayRegKV, *ha.Group) {
	g := ha.NewGroup(ha.Config{
		Members: 3, Seed: seed,
		Machines: map[string]func() ha.StateMachine{"reg": newRegSM},
	})
	return grayRegKV{g: g}, g
}

func (k grayRegKV) Put(_ topology.NodeID, key string, value []byte) (time.Duration, error) {
	_, err := k.g.Propose("reg", []byte("p\x00"+key+"\x00"+string(value)))
	return 0, err
}

func (k grayRegKV) Get(_ topology.NodeID, key string) ([]byte, time.Duration, error) {
	resp, err := k.g.Propose("reg", []byte("g\x00"+key))
	if err != nil {
		return nil, 0, err
	}
	if len(resp) == 0 || resp[0] == '0' {
		return nil, 0, errGrayNotFound
	}
	return resp[1:], 0, nil
}

func (k grayRegKV) Delete(_ topology.NodeID, key string) (time.Duration, error) {
	_, err := k.g.Propose("reg", []byte("d\x00"+key))
	return 0, err
}
