package experiments

import (
	"sync"

	"repro/internal/check"
)

// checkHub is the process-wide oracle harness: every chaos-bearing
// experiment (EFT, E-SFT, E5) records its oracle diffs and
// linearizability verdicts here as it runs, in addition to printing a
// verdict column in its table. The bench CLIs' -check flag reads the
// accumulated verdict after a run and exits nonzero on any mismatch, so
// a chaos sweep cannot silently "pass" with wrong output.
var checkHub = struct {
	mu sync.Mutex
	h  *check.Harness
}{h: check.NewHarness()}

// recordCheck adds one oracle verdict to the process-wide harness and
// returns it for chaining into a table cell.
func recordCheck(d check.Diff) check.Diff {
	checkHub.mu.Lock()
	h := checkHub.h
	checkHub.mu.Unlock()
	return h.Record(d)
}

// verdictCell renders a Diff as a table cell.
func verdictCell(d check.Diff) string {
	if d.OK {
		return "ok"
	}
	return "FAIL"
}

// CheckReport returns the harness summary and whether every oracle
// comparison recorded so far matched.
func CheckReport() (string, bool) {
	checkHub.mu.Lock()
	h := checkHub.h
	checkHub.mu.Unlock()
	return h.Summary(), h.OK()
}

// CheckCount returns how many oracle comparisons have been recorded.
func CheckCount() int {
	checkHub.mu.Lock()
	defer checkHub.mu.Unlock()
	return checkHub.h.Len()
}

// ResetChecks clears the harness (each bench invocation starts fresh).
func ResetChecks() {
	checkHub.mu.Lock()
	defer checkHub.mu.Unlock()
	checkHub.h = check.NewHarness()
}
