package experiments

import (
	"fmt"
	"time"

	"repro/internal/elastic"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

// E6Scheduler compares FIFO, Fair, Capacity and delay scheduling on a
// mixed workload of large batch jobs and small interactive jobs with
// data-locality preferences.
func E6Scheduler(s Scale) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Cluster scheduling policies on a mixed batch/interactive workload",
		Note:  "16 nodes x 2 slots; remote tasks run 1.6x longer",
		Cols:  []string{"policy", "makespan", "mean-job", "small-job-mean", "node-local", "fairness"},
	}
	nJobs := pick(s, 24, 80)
	top := topology.TwoTier(4, 4, 2)
	gen := rng.New(6)
	var jobs []sched.JobSpec
	var smallIdx []int
	for j := 0; j < nJobs; j++ {
		job := sched.JobSpec{
			ID:      j,
			Arrival: time.Duration(gen.Intn(60)) * time.Second,
		}
		nt := 2 + gen.Intn(3) // small interactive
		if j%3 == 0 {
			nt = 16 + gen.Intn(16) // large batch
			job.Queue = "batch"
		} else {
			job.Queue = "interactive"
			smallIdx = append(smallIdx, j)
		}
		for k := 0; k < nt; k++ {
			job.Tasks = append(job.Tasks, sched.TaskSpec{
				Duration:  time.Duration(2+gen.Intn(8)) * time.Second,
				Preferred: []topology.NodeID{topology.NodeID(gen.Intn(top.Size()))},
			})
		}
		jobs = append(jobs, job)
	}
	policies := []sched.Policy{
		sched.FIFO{},
		sched.Fair{},
		sched.Capacity{Shares: map[string]float64{"interactive": 0.6, "batch": 0.4}},
		sched.Delay{MaxSkips: 8},
	}
	for _, p := range policies {
		res := sched.Run(sched.Config{
			Topology:     top,
			SlotsPerNode: 2,
			Policy:       p,
		}, jobs)
		var smallSum time.Duration
		for _, j := range smallIdx {
			smallSum += res.JobCompletion[j]
		}
		smallMean := smallSum / time.Duration(len(smallIdx))
		t.AddRow(p.Name(),
			res.Makespan.Round(time.Second).String(),
			res.MeanJobTime.Round(time.Second).String(),
			smallMean.Round(time.Second).String(),
			fmt.Sprintf("%.0f%%", 100*res.LocalityRate()),
			fmt.Sprintf("%.3f", res.Fairness))
	}
	return t
}

// E11Autoscale compares the utilization-targeting autoscaler against
// static provisioning baselines on a two-day diurnal trace, with and
// without spot preemptions.
func E11Autoscale(s Scale) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Elasticity: autoscaler vs static provisioning on a diurnal trace",
		Note:  "2 days at 5-minute steps, 100-1000 req/s cycle, 50 req/s per node",
		Cols:  []string{"strategy", "node-steps", "avg-util", "SLO-viol%", "peak-nodes", "preempted"},
	}
	steps := pick(s, 288, 576)
	trace := workload.DiurnalTrace(steps, 5*time.Minute, 100, 1000, 2.5, 11)
	cfg := elastic.Config{PerNodeCapacity: 50, Seed: 11}
	peak := elastic.PeakNodesFor(trace, 50, 0.65)

	add := func(name string, r elastic.Result) {
		t.AddRow(name,
			fmt.Sprintf("%d", r.NodeSteps),
			fmt.Sprintf("%.2f", r.AvgUtil),
			fmt.Sprintf("%.1f%%", 100*r.ViolationFrac),
			fmt.Sprintf("%d", r.PeakNodes),
			fmt.Sprintf("%d", r.Preemptions))
	}
	var meanRate float64
	for _, p := range trace {
		meanRate += p.Rate
	}
	meanRate /= float64(len(trace))
	meanNodes := int(meanRate/(50*0.65)) + 1
	add("peak-static", elastic.Static(trace, cfg, peak))
	add("mean-static", elastic.Static(trace, cfg, meanNodes))
	add("autoscaler", elastic.Simulate(trace, elastic.Config{
		PerNodeCapacity: 50,
		Policy:          elastic.Policy{TargetUtil: 0.65, Min: 2, Max: peak + 8},
		Seed:            11,
	}))
	add("autoscaler+spot", elastic.Simulate(trace, elastic.Config{
		PerNodeCapacity: 50,
		Policy:          elastic.Policy{TargetUtil: 0.65, Min: 2, Max: peak + 8},
		SpotPreemptProb: 0.005,
		Seed:            11,
	}))
	add("slo-p99", elastic.Simulate(trace, elastic.Config{
		PerNodeCapacity: 50,
		Policy:          elastic.Policy{Min: 2, Max: peak + 8, SLOTargetP99: 20 * time.Millisecond},
		Seed:            11,
	}))
	return t
}
