package experiments

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/ml"
	"repro/internal/workload"
)

// E8PageRank measures strong scaling of BSP PageRank on a fixed R-MAT
// graph as worker parallelism grows.
func E8PageRank(s Scale) *Table {
	scale := pick(s, 12, 16)
	t := &Table{
		ID:    "E8",
		Title: "PageRank strong scaling on an R-MAT graph",
		Note:  fmt.Sprintf("2^%d vertices, edge factor 8, 10 iterations", scale),
		Cols:  []string{"workers", "wall", "speedup", "efficiency", "messages"},
	}
	t.Cols = []string{"workers", "partitioning", "wall", "modeled-speedup", "efficiency"}
	t.Note += "; speedup is TotalWork/CriticalWork — the partitioning-limited " +
		"parallelism the BSP schedule admits (host-core independent); the " +
		"contiguous-vs-hashed ablation shows hub skew binding the critical path"
	edges := workload.RMAT(scale, 8, 21)
	g := graph.FromEdges(1<<scale, edges)
	for _, part := range []graph.Partitioning{graph.Contiguous, graph.Hashed} {
		for _, workers := range []int{1, 2, 4, 8} {
			start := time.Now()
			res := g.PageRankWith(0.85, 10, graph.RunConfig{Workers: workers, Partitioning: part})
			wall := time.Since(start)
			speedup := res.ModeledSpeedup()
			t.AddRow(
				fmt.Sprintf("%d", workers),
				part.String(),
				wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.2f", speedup/float64(workers)),
			)
		}
	}
	return t
}

// E10ParamServer compares BSP/ASP/SSP time-to-quality under transient
// stragglers.
func E10ParamServer(s Scale) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Parameter server: BSP vs ASP vs SSP under transient stragglers",
		Note:  "logistic regression, 8 workers, 10% of steps hiccup for 1ms",
		Cols:  []string{"mode", "wall", "sync-wait", "final-loss", "accuracy"},
	}
	n := pick(s, 4_000, 20_000)
	data := workload.Logistic(n, 20, 5)
	base := ml.Config{
		Workers:         8,
		Steps:           pick(s, 60, 150),
		BatchSize:       64,
		LearningRate:    0.2,
		Staleness:       4,
		StragglerWorker: -1,
		HiccupProb:      0.1,
		HiccupDelay:     time.Millisecond,
		Seed:            3,
	}
	for _, mode := range []ml.Mode{ml.BSP, ml.ASP, ml.SSP} {
		cfg := base
		cfg.Mode = mode
		res := ml.Train(data, cfg)
		t.AddRow(mode.String(),
			res.WallTime.Round(time.Millisecond).String(),
			res.WaitTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", res.FinalLoss),
			fmt.Sprintf("%.3f", res.Accuracy))
	}
	return t
}
