package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ovlCluster is one serving stack for an overload run: a quorum KV store
// on a TCP fabric, plus the ServeFunc adapters the admission simulator
// drives against it.
type ovlCluster struct {
	fab   *netsim.Fabric
	store *kvstore.Store
	nodes int
}

func newOvlCluster() *ovlCluster {
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.TCP40G)
	store, err := kvstore.New(kvstore.Config{Fabric: fab, N: 3, R: 2, W: 2})
	if err != nil {
		panic(err)
	}
	return &ovlCluster{fab: fab, store: store, nodes: 8}
}

// serveCtx is the deadline-aware serving path: GetCtx/PutCtx fail fast
// when the remaining virtual budget cannot cover the quorum op, so a
// doomed request burns (at most) its budget instead of full service time.
func (c *ovlCluster) serveCtx(ctx context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error) {
	if op.Kind == workload.OpPut {
		return c.store.PutCtx(ctx, coord, op.Key, op.Value)
	}
	_, lat, err := c.store.GetCtx(ctx, coord, op.Key)
	if err == kvstore.ErrNotFound {
		err = nil // a read miss is a fast, legitimate answer
	}
	return lat, err
}

// serveLegacy is the pre-admission serving path: the blocking Get/Put
// API that charges full service latency no matter how stale the request.
func (c *ovlCluster) serveLegacy(_ context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error) {
	if op.Kind == workload.OpPut {
		return c.store.Put(coord, op.Key, op.Value)
	}
	_, lat, err := c.store.Get(coord, op.Key)
	if err == kvstore.ErrNotFound {
		err = nil
	}
	return lat, err
}

// ovlCalibrate measures the store's closed-loop mean service latency and
// returns it with the implied capacity (ops/sec) — the saturation point
// the sweep's offered-load multiples are expressed against.
func ovlCalibrate() (time.Duration, float64) {
	c := newOvlCluster()
	trace := workload.KVOps(2_000, 4_096, 0, 0.9, 128, 77)
	var total time.Duration
	for i, op := range trace {
		coord := topology.NodeID(i % c.nodes)
		var lat time.Duration
		var err error
		if op.Kind == workload.OpPut {
			lat, err = c.store.Put(coord, op.Key, op.Value)
		} else {
			_, lat, err = c.store.Get(coord, op.Key)
			if err == kvstore.ErrNotFound {
				err = nil
			}
		}
		if err != nil {
			panic(err)
		}
		total += lat
	}
	mean := total / time.Duration(len(trace))
	if mean <= 0 {
		mean = time.Microsecond
	}
	return mean, float64(time.Second) / float64(mean)
}

// ovlTenants is the three-tier YCSB mix (A = batch, B = standard, C =
// interactive) splitting the offered rate evenly.
func ovlTenants(totalRate float64) []workload.TenantSpec {
	out := make([]workload.TenantSpec, 3)
	for i, m := range []string{"A", "B", "C"} {
		rf, _ := workload.YCSBMix(m)
		out[i] = workload.TenantSpec{
			ID:         "ycsb-" + m,
			RatePerSec: totalRate / 3,
			Weight:     1,
			Priority:   i,
			ReadFrac:   rf,
			Keys:       512,
			Skew:       0.99,
			ValueSize:  128,
		}
	}
	return out
}

// ovlQuotas sizes per-tenant admission quotas at 95% of measured
// capacity with ~20ms of bucket depth.
func ovlQuotas(tenants []workload.TenantSpec, capacity float64) []admission.TenantQuota {
	ids := make([]string, len(tenants))
	weights := make([]float64, len(tenants))
	prios := make([]int, len(tenants))
	for i, t := range tenants {
		ids[i], weights[i], prios[i] = t.ID, t.Weight, t.Priority
	}
	qs := admission.QuotasFor(ids, weights, prios, 0.95*capacity)
	for i := range qs {
		qs[i].Burst = qs[i].Rate * 0.02
	}
	return qs
}

// ovlConfig assembles a SimConfig for one sweep point. Every control
// knob derives from the measured mean service latency, so the experiment
// self-scales to whatever the fabric actually costs.
func ovlConfig(c *ovlCluster, mult float64, capacity float64, mean, dur time.Duration, admissionOn bool, seed uint64) admission.SimConfig {
	cfg := admission.SimConfig{
		Tenants:     ovlTenants(mult * capacity),
		Duration:    dur,
		Seed:        seed,
		Nodes:       c.nodes,
		Deadline:    50 * mean,
		MaxAttempts: 3,
		Backoff:     5 * mean,
		WindowWidth: dur / 8,
	}
	if admissionOn {
		cfg.Serve = c.serveCtx
		cfg.Admission = &admission.Config{
			Tenants:  ovlQuotas(cfg.Tenants, capacity),
			Target:   4 * mean,
			Interval: 40 * mean,
			MaxQueue: 256,
		}
		cfg.RetryRatio = 0.1
	} else {
		cfg.Serve = c.serveLegacy
	}
	return cfg
}

// EOVLOverload sweeps offered load from half to twice the measured
// saturation point through the admission stack (per-tenant WFQ quotas,
// CoDel shedding, retry budgets, deadline propagation) and through the
// undefended legacy path. The defended rows hold goodput flat and tail
// latency bounded past saturation; the control rows show the metastable
// collapse — goodput falls as offered load rises, and the run's virtual
// elapsed time blows past the arrival window as the backlog drains long
// after clients stopped caring. A chaos row replays the "overload"
// preset (burst + tenant flood + degraded node) against the defended
// stack, and the store's linearizability is checked after shedding.
func EOVLOverload(s Scale) *Table {
	mean, capacity := ovlCalibrate()
	dur := pick(s, 300*time.Millisecond, time.Second)
	t := &Table{
		ID:    "E-OVL",
		Title: "Overload: goodput vs offered load, admission stack on/off",
		Note: fmt.Sprintf("3 YCSB tenants on an 8-node R2W2 store (measured mean %v => capacity %.0f ops/s); "+
			"deadline 50x mean; control = unbounded FIFO, no budgets, no deadline propagation",
			mean.Round(100*time.Nanosecond), capacity),
		Cols: []string{"offered", "mode", "arrivals", "goodput/s", "p99", "p999", "shed%", "timeouts", "vtime", "linear"},
	}

	addRow := func(label, mode string, res admission.SimResult, linear string) {
		shedPct := 0.0
		if res.Offered > 0 {
			shedPct = 100 * float64(res.ShedQuota+res.ShedQueue+res.ShedSojourn) / float64(res.Offered)
		}
		t.AddRow(label, mode,
			fmt.Sprintf("%d", res.Offered),
			fmt.Sprintf("%.0f", res.GoodputPerSec),
			time.Duration(res.AdmittedLatency.P99).Round(time.Microsecond).String(),
			time.Duration(res.AdmittedLatency.P999).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", shedPct),
			fmt.Sprintf("%d", res.Timeouts),
			res.VirtualElapsed.Round(time.Millisecond).String(),
			linear)
	}

	for _, mult := range []float64{0.5, 1, 1.5, 2} {
		label := fmt.Sprintf("%.1fx", mult)

		// Defended run, with a post-run linearizability capture against
		// the same (shed-scarred) store.
		c := newOvlCluster()
		res := admission.NewSim(ovlConfig(c, mult, capacity, mean, dur, true, 7)).Run()
		h := check.CaptureHistory(c.store, check.CaptureConfig{
			Clients: 4, Waves: 10, Keys: 6, Nodes: c.nodes,
			ReadFraction: 0.4, DeleteFraction: 0.1,
			Seed:       uint64(100 + 10*mult),
			IsNotFound: func(err error) bool { return err == kvstore.ErrNotFound },
		})
		verdict := check.Linearizable(h)
		diff := check.Diff{Name: fmt.Sprintf("E-OVL/%s/admission", label), OK: verdict.OK, Compared: verdict.Ops}
		if !verdict.OK {
			diff.Details = []string{verdict.String()}
		}
		recordCheck(diff)
		addRow(label, "admission", res, verdictCell(diff))

		// Control run: same arrivals, no defense stack.
		addRow(label, "control", admission.NewSim(ovlConfig(newOvlCluster(), mult, capacity, mean, dur, false, 7)).Run(), "-")
	}

	// Chaos row: the "overload" preset (3x burst, 5x tenant-0 flood, one
	// degraded node) against the defended stack at 1x offered load. The
	// preset's virtual ticks are paced so every event lands inside the
	// arrival window.
	c := newOvlCluster()
	cfg := ovlConfig(c, 1, capacity, mean, dur, true, 7)
	cfg.TickEvery = dur / 12
	var ctl *chaos.Controller
	cfg.Tick = func(step int64) { ctl.AdvanceTo(step) }
	sim := admission.NewSim(cfg)
	sched, err := chaos.Preset("overload", c.nodes)
	if err != nil {
		panic(err)
	}
	ctl = chaos.New(sched, 7, chaos.Targets{Nodes: c.nodes, Overload: sim, Network: c.fab}, c.store.Reg)
	res := sim.Run()
	h := check.CaptureHistory(c.store, check.CaptureConfig{
		Clients: 4, Waves: 10, Keys: 6, Nodes: c.nodes,
		ReadFraction: 0.4, DeleteFraction: 0.1,
		Seed:       777,
		IsNotFound: func(err error) bool { return err == kvstore.ErrNotFound },
	})
	verdict := check.Linearizable(h)
	diff := check.Diff{Name: "E-OVL/1.0x/chaos", OK: verdict.OK, Compared: verdict.Ops}
	if !verdict.OK {
		diff.Details = []string{verdict.String()}
	}
	recordCheck(diff)
	addRow("1.0x", "adm+chaos", res, verdictCell(diff))

	return t
}
