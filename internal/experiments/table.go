// Package experiments implements the reconstructed evaluation suite
// E1..E12 described in DESIGN.md: each function runs one experiment at a
// configurable scale and returns a printable table. cmd/hpbdc-bench prints
// them; the root bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result, shaped like a paper table.
type Table struct {
	ID    string
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
	// Obs holds observability annotations (job report lines: stage
	// breakdowns, stragglers, shuffle skew) printed after the rows.
	Obs []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddObs appends one observability annotation line.
func (t *Table) AddObs(line string) {
	t.Obs = append(t.Obs, line)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s: %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  (%s)\n", t.Note)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(sb.String(), " "))
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, o := range t.Obs {
		fmt.Fprintf(w, "  | %s\n", o)
	}
}

// Scale selects experiment sizes: Small keeps every experiment under a few
// hundred milliseconds (CI and testing.B); Full runs the sizes the
// EXPERIMENTS.md tables report.
type Scale int

// Scales.
const (
	Small Scale = iota
	Full
)

func pick[T any](s Scale, small, full T) T {
	if s == Full {
		return full
	}
	return small
}
