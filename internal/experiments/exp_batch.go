package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	hpbdc "repro"
	"repro/internal/compress"
	"repro/internal/shuffle"
	"repro/internal/topology"
	"repro/internal/workload"
)

// E2Shuffle compares hash vs sort shuffle writers across codecs and spill
// regimes: write+read throughput, wire bytes, spill counts.
func E2Shuffle(s Scale) *Table {
	t := &Table{
		ID:    "E2",
		Title: "Shuffle throughput: hash vs sort writer, by codec and spill regime",
		Note:  "single map task, 16 reduce partitions, ~70-byte log records",
		Cols:  []string{"writer", "codec", "records", "spills", "wire-bytes", "write+read MB/s"},
	}
	records := pick(s, 20_000, 200_000)
	// Keys are random (they drive partitioning); values are log-like text
	// so the codec ablation runs in the compressible regime real shuffle
	// payloads live in (TeraGen's random values would be incompressible).
	keys := workload.TeraGen(records, 42)
	type rec struct{ key, value []byte }
	gen := make([]rec, records)
	for i := range gen {
		gen[i] = rec{
			key:   keys[i].Key,
			value: []byte(fmt.Sprintf("level=info user=%05d action=click page=/item/%04d ok", i%10000, i%500)),
		}
	}
	type writerKind struct {
		name string
		mk   func(shuffle.Config) (shuffle.Writer, error)
	}
	writers := []writerKind{
		{"hash", shuffle.NewHashWriter},
		{"sort", shuffle.NewSortWriter},
	}
	codecs := []compress.Codec{compress.None{}, compress.LZ{}}
	for _, wk := range writers {
		for _, codec := range codecs {
			var totalBytes int64
			for _, r := range gen {
				totalBytes += int64(len(r.key) + len(r.value))
			}
			cfg := shuffle.Config{
				Partitions:     16,
				Codec:          codec,
				SpillThreshold: totalBytes / 4, // force ~4 spills
			}
			start := time.Now()
			w, err := wk.mk(cfg)
			if err != nil {
				panic(err)
			}
			for _, r := range gen {
				if err := w.Write(r.key, r.value); err != nil {
					panic(err)
				}
			}
			blocks, stats, err := w.Close()
			if err != nil {
				panic(err)
			}
			read := 0
			for _, b := range blocks {
				recs, err := shuffle.ReadBlocks(codec, []shuffle.Block{b})
				if err != nil {
					panic(err)
				}
				read += len(recs)
			}
			elapsed := time.Since(start)
			if read != records {
				panic(fmt.Sprintf("E2: read %d of %d records", read, records))
			}
			mbs := float64(totalBytes) / 1e6 / elapsed.Seconds()
			t.AddRow(wk.name, codec.Name(),
				fmt.Sprintf("%d", records),
				fmt.Sprintf("%d", stats.Spills),
				fmt.Sprintf("%d", stats.WireBytes),
				fmt.Sprintf("%.0f", mbs))
		}
	}
	return t
}

// E3TeraSort runs weak-scaling TeraSort: fixed records per node, growing
// node counts; reports wall time, simulated network time and efficiency.
func E3TeraSort(s Scale) *Table {
	t := &Table{
		ID:    "E3",
		Title: "TeraSort weak scaling (fixed records per node)",
		Note:  "sort-based shuffle, range partitioning from sampled splits",
		Cols:  []string{"nodes", "records", "wall", "net(sim)", "rec/s", "efficiency"},
	}
	t.Cols = []string{"nodes", "records", "wall", "net(sim)", "rec/s", "rel-throughput"}
	t.Note += "; single-host harness: per-record throughput staying flat as data " +
		"and nodes grow is ideal weak scaling — the drop at high node counts is " +
		"shuffle fan-in overhead (n^2 blocks)"
	perNode := pick(s, 4_000, 40_000)
	var baseRate float64
	for _, nodes := range []int{2, 4, 8, 16} {
		racks := nodes / 4
		if racks < 1 {
			racks = 1
		}
		ctx := hpbdc.New(hpbdc.Config{
			Racks: racks, NodesPerRack: nodes / racks,
			Transport: "rdma", Seed: uint64(nodes),
			EnableTracing: true,
		})
		records := perNode * nodes
		parts := nodes * 2
		gen := hpbdc.SourceFunc(ctx, parts, func(part int) []hpbdc.Pair[string, string] {
			recs := workload.TeraGen(records/parts, uint64(part)+100)
			out := make([]hpbdc.Pair[string, string], len(recs))
			for i, r := range recs {
				out[i] = hpbdc.Pair[string, string]{Key: string(r.Key), Value: string(r.Value)}
			}
			return out
		})
		start := time.Now()
		sorted, err := hpbdc.SortByKey(gen, hpbdc.StringCodec, hpbdc.StringCodec, parts, 64)
		if err != nil {
			panic(err)
		}
		out, err := sorted.CollectPartitions()
		if err != nil {
			panic(err)
		}
		wall := time.Since(start)
		n := 0
		prev := ""
		for _, part := range out {
			for _, p := range part {
				if p.Key < prev {
					panic("E3: output not sorted")
				}
				prev = p.Key
				n++
			}
		}
		rate := float64(n) / wall.Seconds()
		if baseRate == 0 {
			baseRate = rate
		}
		eff := rate / baseRate
		t.AddRow(
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%d", n),
			wall.Round(time.Millisecond).String(),
			ctx.Engine().NetTime().Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2f", eff),
		)
		if nodes == 8 {
			// One representative report keeps the table readable.
			observe(t, fmt.Sprintf("E3/terasort-%dnodes", nodes), ctx)
		}
	}
	return t
}

// E4WordCount compares the single-pass dataflow pipeline (map-side
// combine, pipelined stages) against a materializing two-phase MapReduce
// baseline (map output written to the DFS, reduce reads it back).
func E4WordCount(s Scale) *Table {
	t := &Table{
		ID:    "E4",
		Title: "WordCount: dataflow engine vs 2-pass materializing MapReduce",
		Note:  "same cluster, same input; baseline pays DFS materialization and no combiner",
		Cols:  []string{"system", "lines", "wall", "shuffle/DFS bytes", "speedup"},
	}
	lines := pick(s, 2_000, 20_000)
	corpus := workload.Text(lines, 10, 1000, 1.0, 7)

	// Dataflow: pipelined with combiner.
	runtime.GC() // measurements must not inherit prior experiments' heaps
	ctx1 := hpbdc.New(hpbdc.Config{Racks: 2, NodesPerRack: 4, Seed: 1, EnableTracing: true})
	start := time.Now()
	words := hpbdc.FlatMap(hpbdc.Parallelize(ctx1, corpus, 16), strings.Fields)
	counts, err := hpbdc.CountByKey(hpbdc.KeyBy(words, func(w string) string { return w }), hpbdc.StringCodec, 8)
	if err != nil {
		panic(err)
	}
	dataflowWall := time.Since(start)
	var totalDF int64
	for _, n := range counts {
		totalDF += n
	}
	dfBytes := ctx1.Engine().Reg.Counter("shuffle_raw_bytes").Value()

	// MapReduce baseline: phase 1 writes (word,1) pairs as text to DFS;
	// phase 2 reads them back and reduces without a combiner.
	runtime.GC()
	ctx2 := hpbdc.New(hpbdc.Config{Racks: 2, NodesPerRack: 4, Seed: 1, EnableTracing: true})
	start = time.Now()
	mapped := hpbdc.FlatMap(hpbdc.Parallelize(ctx2, corpus, 16), strings.Fields)
	if err := hpbdc.SaveAsTextFile(mapped, "/mr/intermediate"); err != nil {
		panic(err)
	}
	phase2 := hpbdc.TextFile(ctx2, "/mr/intermediate")
	grouped := hpbdc.GroupByKey(
		hpbdc.KeyBy(phase2, func(w string) string { return w }),
		hpbdc.StringCodec, hpbdc.StringCodec, 8)
	sums := hpbdc.MapValues(grouped, func(vs []string) int64 { return int64(len(vs)) })
	mrCounts, err := sums.Collect()
	if err != nil {
		panic(err)
	}
	mrWall := time.Since(start)
	var totalMR int64
	for _, p := range mrCounts {
		totalMR += p.Value
	}
	if totalDF != totalMR {
		panic(fmt.Sprintf("E4: result mismatch %d vs %d", totalDF, totalMR))
	}
	mrBytes := ctx2.Engine().Reg.Counter("shuffle_raw_bytes").Value() +
		ctx2.DFS().TotalStoredBytes()

	t.AddRow("dataflow", fmt.Sprintf("%d", lines),
		dataflowWall.Round(time.Millisecond).String(),
		fmt.Sprintf("%d", dfBytes), "1.00x")
	t.AddRow("mapreduce-2pass", fmt.Sprintf("%d", lines),
		mrWall.Round(time.Millisecond).String(),
		fmt.Sprintf("%d", mrBytes),
		fmt.Sprintf("%.2fx", float64(dataflowWall)/float64(mrWall)))
	observe(t, "E4/dataflow", ctx1)
	observe(t, "E4/mapreduce", ctx2)
	return t
}

// E9Recovery measures fault recovery: a shuffled job is run, executor
// nodes are killed, and the job re-runs under (a) lineage recomputation
// and (b) checkpoint restore.
func E9Recovery(s Scale) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Fault recovery: lineage recomputation vs checkpoint restore",
		Note:  "kill 2 of 8 executors after first run; re-run the job",
		Cols:  []string{"variant", "first-run", "recovery-run", "tasks-rerun", "recovery/first"},
	}
	lines := pick(s, 1_000, 10_000)
	corpus := workload.Text(lines, 10, 500, 0.9, 3)

	run := func(job string, checkpoint bool) (time.Duration, time.Duration, int64) {
		ctx := hpbdc.New(hpbdc.Config{Racks: 2, NodesPerRack: 4, Seed: 9, EnableTracing: true})
		words := hpbdc.FlatMap(hpbdc.Parallelize(ctx, corpus, 16), strings.Fields)
		pairs := hpbdc.KeyBy(words, func(w string) string { return w })
		ones := hpbdc.MapValues(pairs, func(string) int64 { return 1 })
		counts := hpbdc.ReduceByKey(ones, hpbdc.StringCodec, hpbdc.Int64Codec, 8,
			func(a, b int64) int64 { return a + b })

		start := time.Now()
		if _, err := counts.Collect(); err != nil {
			panic(err)
		}
		first := time.Since(start)
		if checkpoint {
			codec := hpbdc.Codec[hpbdc.Pair[string, int64]]{
				Encode: func(p hpbdc.Pair[string, int64]) []byte {
					return append(append([]byte{byte(len(p.Key))}, p.Key...), hpbdc.Int64Codec.Encode(p.Value)...)
				},
				Decode: func(b []byte) hpbdc.Pair[string, int64] {
					kl := int(b[0])
					return hpbdc.Pair[string, int64]{
						Key:   string(b[1 : 1+kl]),
						Value: hpbdc.Int64Codec.Decode(b[1+kl:]),
					}
				},
			}
			if err := counts.Checkpoint("/ckpt/counts", codec); err != nil {
				panic(err)
			}
		}
		tasksBefore := ctx.Engine().Reg.Counter("tasks_launched").Value()
		_ = ctx.Cluster().Kill(topology.NodeID(1))
		_ = ctx.Cluster().Kill(topology.NodeID(5))
		start = time.Now()
		if _, err := counts.Collect(); err != nil {
			panic(err)
		}
		recovery := time.Since(start)
		rerun := ctx.Engine().Reg.Counter("tasks_launched").Value() - tasksBefore
		observe(t, job, ctx)
		return first, recovery, rerun
	}

	for _, variant := range []string{"lineage", "checkpoint"} {
		first, rec, rerun := run("E9/"+variant, variant == "checkpoint")
		t.AddRow(variant,
			first.Round(time.Millisecond).String(),
			rec.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", rerun),
			fmt.Sprintf("%.2fx", float64(rec)/float64(first)))
	}
	return t
}
