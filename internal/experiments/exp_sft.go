package experiments

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/stream"
	"repro/internal/trace"
)

// streamCfg carries the CLI overrides (-seed, -ckpt-interval, -stream-chaos)
// into the E-SFT experiment.
var streamCfg = struct {
	mu       sync.Mutex
	seed     uint64
	interval int
	spec     string
}{seed: 11}

// SetStreamFaultConfig overrides the E-SFT experiment's sweep: the chaos
// seed, a fixed checkpoint interval replacing the interval sweep, and a
// chaos schedule (preset name or schedule text) replacing the crash-count
// sweep. Zero values keep the defaults.
func SetStreamFaultConfig(seed uint64, interval int, spec string) {
	streamCfg.mu.Lock()
	defer streamCfg.mu.Unlock()
	if seed != 0 {
		streamCfg.seed = seed
	}
	streamCfg.interval = interval
	streamCfg.spec = spec
}

// ESFTStream measures exactly-once streaming recovery: the same generated
// event stream runs under a sweep of checkpoint intervals crossed with
// worker crash/restore schedules, and every faulted run's output must be
// byte-identical to the clean run's. The cost axes are checkpoint volume
// (barriers committed, snapshot bytes) against recovery work (events
// replayed from the source, duplicate panes suppressed at the sink):
// frequent checkpoints pay bytes to shrink replay, sparse ones the
// reverse, and interval 0 falls back to full replay from offset zero.
func ESFTStream(s Scale) *Table {
	streamCfg.mu.Lock()
	seed, fixedInterval, spec := streamCfg.seed, streamCfg.interval, streamCfg.spec
	streamCfg.mu.Unlock()

	const workers = 4
	events := int64(pick(s, 6_000, 48_000))
	t := &Table{
		ID:    "E-SFT",
		Title: "Streaming fault tolerance: checkpoint interval vs recovery cost",
		Note: fmt.Sprintf("%d events, %d workers, 250ms windows, seed %d; identical = output equals clean run",
			events, workers, seed),
		Cols: []string{"ckpt-every", "crashes", "wall", "vs-clean", "ckpts",
			"ckpt-bytes", "replayed", "deduped", "identical", "oracle"},
	}

	// The event stream is replayable from its (seed, params), so the
	// oracle drains an identical source and computes every pane directly.
	// Exactness precondition: WatermarkLag (5ms) covers the source jitter
	// (4ms), so a correct run drops nothing — a nonzero late_dropped
	// counter is itself a failure.
	refEvents, err := check.DrainSource(
		stream.NewGeneratorSource(seed, events, 32, time.Millisecond, 4*time.Millisecond))
	if err != nil {
		panic(fmt.Sprintf("E-SFT: drain reference source: %v", err))
	}
	oracle := func(job string, out []stream.Result, r *stream.Runner) check.Diff {
		d := check.DiffWindows(job, out, refEvents, 250*time.Millisecond, 0)
		if late := r.Metrics().Counter("late_dropped").Value(); late > 0 {
			d.OK = false
			d.Details = append(d.Details, fmt.Sprintf("%d late events dropped (lag must cover jitter)", late))
		}
		return recordCheck(d)
	}

	intervals := []int{0, pick(s, 500, 4_000), pick(s, 2_000, 16_000)}
	if fixedInterval > 0 {
		intervals = []int{fixedInterval}
	}
	type entry struct {
		name  string
		sched chaos.Schedule
	}
	entries := []entry{
		{"0", nil},
		{"1", streamCrashSchedule(1)},
		{"3", streamCrashSchedule(3)},
	}
	if spec != "" {
		sched, err := chaos.Load(spec, workers)
		if err != nil {
			panic(fmt.Sprintf("E-SFT: -stream-chaos: %v", err))
		}
		entries = []entry{{"custom", sched}}
	}

	run := func(interval int, sched chaos.Schedule) ([]stream.Result, *stream.Runner, time.Duration) {
		rec := trace.New()
		src := stream.NewGeneratorSource(seed, events, 32, time.Millisecond, 4*time.Millisecond)
		r := stream.NewRunner(stream.RunConfig{
			Pipeline: stream.Config{
				Workers: workers,
				Window:  250 * time.Millisecond,
				Tracer:  rec,
			},
			CheckpointEvery: interval,
			WatermarkEvery:  200,
			WatermarkLag:    5 * time.Millisecond,
			TickEvery:       int(events / 32),
		}, src)
		if len(sched) > 0 {
			ctl := chaos.New(sched, seed, chaos.Targets{Nodes: workers, Stream: r}, r.Metrics())
			r.OnTick(ctl.Tick)
		}
		start := time.Now()
		out, err := r.Run()
		if err != nil {
			panic(fmt.Sprintf("E-SFT: %v", err))
		}
		return out, r, time.Since(start)
	}

	// The clean reference: no checkpoints, no faults. Its own output is
	// oracle-checked too — "identical to clean" proves nothing if the
	// clean run itself was wrong.
	baseline, baseRunner, cleanWall := run(0, nil)
	cleanDiff := oracle("E-SFT/clean", baseline, baseRunner)
	publishStream("E-SFT/clean", baseRunner)

	for _, interval := range intervals {
		for _, e := range entries {
			if interval == 0 && e.sched == nil {
				t.AddRow("0", "0", cleanWall.Round(time.Millisecond).String(), "1.00x",
					"0", "0", "0", "0", "yes", verdictCell(cleanDiff))
				continue
			}
			out, r, wall := run(interval, e.sched)
			reg := r.Metrics()
			identical := "yes"
			if !reflect.DeepEqual(out, baseline) {
				identical = "NO"
			}
			diff := oracle(fmt.Sprintf("E-SFT/ckpt-%d/crashes-%s", interval, e.name), out, r)
			t.AddRow(
				fmt.Sprintf("%d", interval),
				e.name,
				wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%.2fx", float64(wall)/float64(cleanWall)),
				fmt.Sprintf("%d", reg.Counter("checkpoints_committed").Value()),
				fmt.Sprintf("%d", reg.Counter("checkpoint_bytes").Value()),
				fmt.Sprintf("%d", reg.Counter("recovery_replayed_events").Value()),
				fmt.Sprintf("%d", reg.Counter("panes_deduped").Value()),
				identical,
				verdictCell(diff),
			)
			publishStream(fmt.Sprintf("E-SFT/ckpt-%d/crashes-%s", interval, e.name), r)
		}
	}
	return t
}

// streamCrashSchedule crashes a seeded wildcard worker c times, restoring
// it a few virtual ticks later each time.
func streamCrashSchedule(c int) chaos.Schedule {
	var sched chaos.Schedule
	for i := 0; i < c; i++ {
		sched = append(sched,
			chaos.Event{At: int64(4 + i*8), Kind: chaos.StreamCrash, Node: chaos.WildcardNode},
			chaos.Event{At: int64(7 + i*8), Kind: chaos.StreamRestore, Node: chaos.WildcardNode},
		)
	}
	return sched
}

// publishStream merges one stream run's counters, gauges and spans into
// the observability hub (job-labeled), mirroring observe() for runs that
// have no batch job context.
func publishStream(job string, r *stream.Runner) {
	hub.mu.Lock()
	reg, rec := hub.reg, hub.rec
	hub.mu.Unlock()
	if reg != nil {
		snap := r.Metrics().Snapshot()
		for _, c := range snap.Counters {
			keys, vals := labelArgs(c.Labels, job)
			reg.CounterVec(c.Name, keys...).With(vals...).Add(c.Value)
		}
		for _, g := range snap.Gauges {
			keys, vals := labelArgs(g.Labels, job)
			reg.GaugeVec(g.Name, keys...).With(vals...).Set(g.Value)
		}
	}
	if rec != nil && r.Tracer() != nil {
		for _, s := range r.Tracer().Spans() {
			if s.Args == nil {
				s.Args = map[string]string{}
			}
			s.Args["job"] = job
			s.Track = job + "/" + s.Track
			rec.Add(s)
		}
	}
}
