package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// The experiment suite is itself code under test: every experiment must
// run at Small scale, produce a well-formed table, and exhibit the
// headline shape DESIGN.md claims for it.

func runAndCheck(t *testing.T, fn func(Scale) *Table) *Table {
	t.Helper()
	table := fn(Small)
	if table.ID == "" || table.Title == "" {
		t.Fatal("table missing ID/title")
	}
	if len(table.Rows) == 0 {
		t.Fatalf("%s produced no rows", table.ID)
	}
	for i, row := range table.Rows {
		if len(row) != len(table.Cols) {
			t.Fatalf("%s row %d has %d cells, header has %d", table.ID, i, len(row), len(table.Cols))
		}
	}
	var buf bytes.Buffer
	table.Fprint(&buf)
	if !strings.Contains(buf.String(), table.ID) {
		t.Fatalf("%s render missing ID", table.ID)
	}
	return table
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q: %v", s, err)
	}
	return v
}

func TestE1Shapes(t *testing.T) {
	table := runAndCheck(t, E1Transport)
	// These latency ratios come from the deterministic fabric cost model
	// (netsim.Fabric.Cost), not wall clock, so asserting on them is not a
	// flakiness risk — this one stays numeric by design.
	// RDMA advantage shrinks as messages grow (overhead- to
	// bandwidth-bound transition).
	first := parse(t, table.Rows[0][len(table.Cols)-1])
	last := parse(t, table.Rows[len(table.Rows)-1][len(table.Cols)-1])
	if first < 5 {
		t.Fatalf("small-message tcp/rdma ratio %v, want >= 5", first)
	}
	if last >= first {
		t.Fatalf("ratio did not shrink with size: %v -> %v", first, last)
	}
}

func TestE2Shapes(t *testing.T) {
	table := runAndCheck(t, E2Shuffle)
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// LZ rows must move fewer wire bytes than None rows.
	noneWire := parse(t, table.Rows[0][4])
	lzWire := parse(t, table.Rows[1][4])
	if lzWire >= noneWire {
		t.Fatalf("lz wire %v >= none wire %v", lzWire, noneWire)
	}
}

func TestE3Shapes(t *testing.T) {
	table := runAndCheck(t, E3TeraSort)
	// Weak scaling, asserted on record counts rather than throughput:
	// each row doubles the node count at fixed records per node, so the
	// sorted output must double too (the experiment itself panics if the
	// output is unsorted). Wall-clock relative throughput varies with
	// host load and is reported, not asserted.
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	prev := 0.0
	for i, row := range table.Rows {
		n := parse(t, row[1])
		if i > 0 && n != 2*prev {
			t.Fatalf("row %d sorted %v records, want double the previous %v", i, n, prev)
		}
		prev = n
	}
}

func TestE4Shapes(t *testing.T) {
	table := runAndCheck(t, E4WordCount)
	// The materializing baseline must move strictly more bytes than the
	// pipelined dataflow run (it pays DFS materialization and runs no
	// combiner) — a deterministic data-volume assertion; the wall-clock
	// speedup column varies with host load and is reported, not asserted.
	dfBytes := parse(t, table.Rows[0][3])
	mrBytes := parse(t, table.Rows[1][3])
	if mrBytes <= dfBytes {
		t.Fatalf("materializing baseline moved %v bytes <= dataflow's %v", mrBytes, dfBytes)
	}
}

func TestE5Shapes(t *testing.T) {
	table := runAndCheck(t, E5KVQuorum)
	if len(table.Rows) != 8 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Every quorum config's captured history must be linearizable.
	for _, row := range table.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("row %v failed the linearizability check", row)
		}
	}
}

func TestE6Shapes(t *testing.T) {
	table := runAndCheck(t, E6Scheduler)
	byName := map[string][]string{}
	for _, r := range table.Rows {
		byName[r[0]] = r
	}
	delayLoc := parse(t, byName["delay"][4])
	fairLoc := parse(t, byName["fair"][4])
	if delayLoc <= fairLoc {
		t.Fatalf("delay locality %v%% <= fair %v%%", delayLoc, fairLoc)
	}
}

func TestE8Shapes(t *testing.T) {
	table := runAndCheck(t, E8PageRank)
	s1 := parse(t, table.Rows[0][3])
	s8contig := parse(t, table.Rows[3][3])
	s8hashed := parse(t, table.Rows[7][3])
	if s8contig <= s1 {
		t.Fatalf("modeled speedup flat: %v -> %v", s1, s8contig)
	}
	// The ablation: hashed partitioning spreads hubs and must beat
	// contiguous at 8 workers on a power-law graph.
	if s8hashed <= s8contig {
		t.Fatalf("hashed speedup %v <= contiguous %v", s8hashed, s8contig)
	}
}

func TestE9Shapes(t *testing.T) {
	table := runAndCheck(t, E9Recovery)
	lineageTasks := parse(t, table.Rows[0][3])
	ckptTasks := parse(t, table.Rows[1][3])
	if ckptTasks >= lineageTasks {
		t.Fatalf("checkpoint reran %v tasks, lineage %v", ckptTasks, lineageTasks)
	}
}

func TestE10Shapes(t *testing.T) {
	table := runAndCheck(t, E10ParamServer)
	for _, row := range table.Rows {
		if acc := parse(t, row[4]); acc < 0.85 {
			t.Fatalf("%s accuracy %v below 0.85", row[0], acc)
		}
	}
}

func TestE11Shapes(t *testing.T) {
	table := runAndCheck(t, E11Autoscale)
	byName := map[string][]string{}
	for _, r := range table.Rows {
		byName[r[0]] = r
	}
	autoCost := parse(t, byName["autoscaler"][1])
	peakCost := parse(t, byName["peak-static"][1])
	if autoCost >= peakCost {
		t.Fatalf("autoscaler cost %v >= peak-static %v", autoCost, peakCost)
	}
	meanViol := parse(t, strings.TrimSuffix(byName["mean-static"][3], "%"))
	autoViol := parse(t, strings.TrimSuffix(byName["autoscaler"][3], "%"))
	if autoViol >= meanViol {
		t.Fatalf("autoscaler violations %v%% >= mean-static %v%%", autoViol, meanViol)
	}
	// The SLO-driven policy must appear and also beat mean-static.
	slo, ok := byName["slo-p99"]
	if !ok {
		t.Fatal("slo-p99 row missing")
	}
	if sloViol := parse(t, strings.TrimSuffix(slo[3], "%")); sloViol >= meanViol {
		t.Fatalf("slo-p99 violations %v%% >= mean-static %v%%", sloViol, meanViol)
	}
}

func TestE12Shapes(t *testing.T) {
	table := runAndCheck(t, E12Raft)
	for _, row := range table.Rows {
		if row[1] == "no leader" {
			t.Fatal("a cluster failed to elect")
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("experiment %s incomplete", r.ID)
		}
	}
}

// E7 involves real-time pacing; exercise it but keep assertions loose.
func TestE7Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("pacing-based experiment")
	}
	table := runAndCheck(t, E7Stream)
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

func TestEFTShapes(t *testing.T) {
	ResetChecks()
	table := runAndCheck(t, EFTChaos)
	// Clean run + every chaos preset x speculation off/on.
	if len(table.Rows) < 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Every run — clean and faulted alike — must reproduce the
	// sequential reference output exactly.
	for _, row := range table.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("row %v failed the oracle diff", row)
		}
	}
	// The diffs also land in the process-wide harness for the -check CLIs.
	if CheckCount() != len(table.Rows) {
		t.Fatalf("harness recorded %d verdicts for %d rows", CheckCount(), len(table.Rows))
	}
	if summary, ok := CheckReport(); !ok {
		t.Fatalf("harness verdict: %s", summary)
	}
}

func TestESFTShapes(t *testing.T) {
	table := runAndCheck(t, ESFTStream)
	// 3 intervals x 3 crash counts.
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(table.Rows))
	}
	for i, row := range table.Rows {
		if got := row[len(row)-2]; got != "yes" {
			t.Fatalf("row %d (%v): faulted output diverged from clean run", i, row)
		}
		if got := row[len(row)-1]; got != "ok" {
			t.Fatalf("row %d (%v): output failed the window oracle", i, row)
		}
	}
	// Every faulted run must have actually recovered (replayed a tail) and
	// suppressed duplicates at the sink; checkpointed faulted runs must
	// replay less than the ones restarting from offset zero.
	for _, row := range table.Rows {
		if row[1] == "0" {
			continue
		}
		if parse(t, row[6]) <= 0 {
			t.Fatalf("faulted row %v replayed nothing", row)
		}
		if parse(t, row[7]) <= 0 {
			t.Fatalf("faulted row %v deduped nothing", row)
		}
	}
}

func TestEHAShapes(t *testing.T) {
	table := runAndCheck(t, EHAControlPlane)
	// 3 control-plane schedules x 3 seeds.
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(table.Rows))
	}
	for _, row := range table.Rows {
		// Headline claim: no control-plane fault schedule fails the job or
		// corrupts its output.
		if row[len(row)-1] != "ok" {
			t.Fatalf("row %v failed the oracle diff", row)
		}
		sched := row[0]
		failovers, resumed := parse(t, row[3]), parse(t, row[7])
		if sched != "coord-crash" && failovers < 1 {
			t.Fatalf("row %v: namenode leader crash recorded no failover", row)
		}
		if sched != "nn-crash" {
			if parse(t, row[6]) < 1 {
				t.Fatalf("row %v: coordinator crash never fired", row)
			}
			// The journal must salvage work: at least one stage resumed
			// rather than recomputed.
			if resumed < 1 {
				t.Fatalf("row %v: no journaled stage was resumed", row)
			}
		}
	}
}

func TestEOVLShapes(t *testing.T) {
	table := runAndCheck(t, EOVLOverload)
	// 4 offered-load multiples x {admission, control} + one chaos row.
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(table.Rows))
	}
	goodput := map[string]float64{} // "mult/mode" -> goodput/s
	for _, row := range table.Rows {
		key := row[0] + "/" + row[1]
		goodput[key] = parse(t, row[3])
		if row[1] != "control" {
			// Every defended row (chaos included) must pass the
			// linearizability oracle.
			if row[len(row)-1] != "ok" {
				t.Fatalf("row %v failed the linearizability check", row)
			}
			// ...and keep sheds flowing past saturation.
			if mult := parse(t, row[0]); mult > 1 && parse(t, strings.TrimSuffix(row[6], "%")) <= 0 {
				t.Fatalf("row %v: overloaded defended run shed nothing", row)
			}
		}
	}
	// Headline: defended goodput is flat past saturation (2x within 10%
	// of the best defended point), while the control run collapses.
	peak := 0.0
	for _, m := range []string{"0.5x", "1.0x", "1.5x", "2.0x"} {
		if g := goodput[m+"/admission"]; g > peak {
			peak = g
		}
	}
	if at2x := goodput["2.0x/admission"]; at2x < 0.9*peak {
		t.Fatalf("defended goodput at 2x = %.0f, below 90%% of peak %.0f", at2x, peak)
	}
	if ctrl, def := goodput["2.0x/control"], goodput["2.0x/admission"]; ctrl >= 0.5*def {
		t.Fatalf("control goodput %.0f did not collapse vs defended %.0f", ctrl, def)
	}
}

func TestETXNShapes(t *testing.T) {
	table := runAndCheck(t, ETXNTransactions)
	// 5 scenarios + the chaos-preset row.
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(table.Rows))
	}
	for _, row := range table.Rows {
		// Every row — the dirty-read one included, whose check asserts
		// the verdict flipped — must score ok, with locks and pending
		// transaction records drained to zero.
		if row[len(row)-1] != "ok" {
			t.Fatalf("row %v failed its invariant check", row)
		}
		if row[5] != "0" || row[6] != "0" {
			t.Fatalf("row %v left locks/pending behind", row)
		}
		if parse(t, row[1]) == 0 || parse(t, row[2]) == 0 {
			t.Fatalf("row %v recorded no ops or no commits", row)
		}
	}
	// The coordinator-crash and chaos-preset scenarios must actually have
	// exercised recovery.
	recovered := map[string]float64{}
	for _, row := range table.Rows {
		recovered[row[0]] = parse(t, row[4])
	}
	if recovered["coord-crash"] == 0 {
		t.Fatal("coord-crash scenario recovered no transactions")
	}
	if recovered["chaos-preset"] == 0 {
		t.Fatal("chaos-preset scenario recovered no transactions")
	}
}

func TestESQLShapes(t *testing.T) {
	table := runAndCheck(t, ESQLPlanner)
	// 8 suite queries + the chaos-crash replay.
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(table.Rows))
	}
	byID := map[string][]string{}
	for _, row := range table.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("row %v failed its oracle check", row)
		}
		byID[row[0]] = row
	}
	// Cost-based join strategy: the small product dimension broadcasts,
	// the fact-to-fact shipments join shuffles.
	if got := byID["q3_dim_join"][2]; got != "1bc" {
		t.Fatalf("q3_dim_join joins = %q, want 1bc", got)
	}
	if got := byID["q5_fact_fact"][2]; got != "1sh" {
		t.Fatalf("q5_fact_fact joins = %q, want 1sh", got)
	}
	// Pushdown must shrink the decoded bytes on the projection-friendly
	// scan query, and skip encoded bytes outright.
	q1 := byID["q1_pushdown"]
	if parse(t, q1[6]) >= parse(t, q1[5]) {
		t.Fatalf("q1_pushdown decoded opt %s not below naive %s", q1[6], q1[5])
	}
	if parse(t, q1[7]) == 0 {
		t.Fatal("q1_pushdown skipped no encoded bytes")
	}
	// The chaos replay must have injected its events.
	var sawChaos bool
	for _, o := range table.Obs {
		if strings.HasPrefix(o, "chaos: 2/2 events applied") {
			sawChaos = true
		}
	}
	if !sawChaos {
		t.Fatalf("chaos events not applied: %v", table.Obs)
	}
}

func TestEGRAYShapes(t *testing.T) {
	table := runAndCheck(t, EGRAYGrayFailures)
	// Small scale: 3 schedules x {control, defended} x 1 seed + 1
	// ha-register linearizability row.
	if len(table.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(table.Rows))
	}
	unavail := map[string]float64{} // "schedule/mode" -> charged unavailable ticks
	termDelta := map[string]float64{}
	for _, row := range table.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("row %v failed its verdict", row)
		}
		if row[0] == "ha-register" {
			if parse(t, row[9]) < 1 {
				t.Fatalf("row %v: gray cuts produced no ha step-down", row)
			}
			continue
		}
		key := row[0] + "/" + row[1]
		unavail[key] = parse(t, row[7])
		termDelta[key] = parse(t, row[8])
	}
	// Headline: the one-way control livelocks (terms inflate, proposals
	// fail with a connected majority present the whole run) while the
	// defended cluster rides it out untouched.
	if termDelta["one-way/control"] < 4 {
		t.Fatalf("one-way control term growth = %v, want >= 4", termDelta["one-way/control"])
	}
	if unavail["one-way/control"] < 10 {
		t.Fatalf("one-way control unavailable = %v, want >= 10", unavail["one-way/control"])
	}
	if unavail["one-way/defended"] != 0 || termDelta["one-way/defended"] != 0 {
		t.Fatalf("one-way defended not clean: unavail %v, term growth %v",
			unavail["one-way/defended"], termDelta["one-way/defended"])
	}
	// The partial partition must also cost the control measurably more
	// than the defended run.
	if unavail["partial/control"] <= 2*unavail["partial/defended"] {
		t.Fatalf("partial: control %v not clearly worse than defended %v",
			unavail["partial/control"], unavail["partial/defended"])
	}
}
