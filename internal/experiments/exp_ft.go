package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	hpbdc "repro"
	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/workload"
)

// faultCfg carries the CLI fault-injection overrides (-seed, -fail-prob,
// -chaos) into the E-FT experiment.
var faultCfg = struct {
	mu       sync.Mutex
	seed     uint64
	failProb float64
	spec     string
}{seed: 11}

// SetFaultConfig overrides the E-FT experiment's fault injection: the
// chaos/jitter seed, a global transient task failure probability, and an
// optional chaos schedule (a preset name or schedule text) that replaces
// the default preset sweep. Zero values keep the defaults.
func SetFaultConfig(seed uint64, failProb float64, spec string) {
	faultCfg.mu.Lock()
	defer faultCfg.mu.Unlock()
	if seed != 0 {
		faultCfg.seed = seed
	}
	faultCfg.failProb = failProb
	faultCfg.spec = spec
}

// EFTChaos measures graceful degradation under scheduled faults: the same
// shuffled wordcount job runs under each chaos preset with speculation
// off and on, against a clean baseline. Slowdown is wall clock relative
// to the clean run; recovery effort shows up as retries, speculative
// wins, quarantined nodes and partition-blocked fetches.
func EFTChaos(s Scale) *Table {
	faultCfg.mu.Lock()
	seed, failProb, spec := faultCfg.seed, faultCfg.failProb, faultCfg.spec
	faultCfg.mu.Unlock()

	t := &Table{
		ID:    "EFT",
		Title: "Fault tolerance: chaos schedules vs recovery machinery",
		Note:  fmt.Sprintf("8 nodes, shuffled wordcount, seed %d; wall is relative to a clean run; oracle compares output to the sequential reference", seed),
		Cols: []string{"schedule", "spec", "wall", "vs-clean", "retries",
			"spec-wins", "quarantined", "blocked-fetch", "chaos-events", "oracle"},
	}
	lines := pick(s, 1_000, 10_000)
	corpus := workload.Text(lines, 10, 500, 0.9, 3)
	const nodes = 8

	encodePair := func(p hpbdc.Pair[string, int64]) string {
		return fmt.Sprintf("%s=%d", p.Key, p.Value)
	}
	// want is the sequential reference output, computed once from the
	// clean run's plan: every faulted run must reproduce it exactly
	// (recovery may permute records across partitions, so the comparison
	// is a multiset).
	var want []hpbdc.Pair[string, int64]

	run := func(job string, sched chaos.Schedule, speculation bool) (time.Duration, *hpbdc.Context, check.Diff) {
		ctx := hpbdc.New(hpbdc.Config{
			Racks:         2,
			NodesPerRack:  4,
			Seed:          seed,
			TaskFailProb:  failProb,
			Speculation:   speculation,
			Chaos:         sched,
			EnableTracing: true,
		})
		words := hpbdc.FlatMap(hpbdc.Parallelize(ctx, corpus, 16), strings.Fields)
		pairs := hpbdc.KeyBy(words, func(w string) string { return w })
		ones := hpbdc.MapValues(pairs, func(string) int64 { return 1 })
		counts := hpbdc.ReduceByKey(ones, hpbdc.StringCodec, hpbdc.Int64Codec, 8,
			func(a, b int64) int64 { return a + b })
		start := time.Now()
		rows, err := counts.Collect()
		if err != nil {
			panic(fmt.Sprintf("%s: %v", job, err))
		}
		wall := time.Since(start)
		if want == nil {
			want = hpbdc.ReferenceCollect(counts)
		}
		diff := recordCheck(check.DiffMultiset(job, rows, want, encodePair))
		return wall, ctx, diff
	}

	clean, _, cleanDiff := run("EFT/clean", nil, false)
	t.AddRow("none", "off", clean.Round(time.Millisecond).String(), "1.00x",
		"0", "0", "0", "0", "0", verdictCell(cleanDiff))

	type entry struct {
		name  string
		sched chaos.Schedule
	}
	var entries []entry
	if spec != "" {
		sched, err := chaos.Load(spec, nodes)
		if err != nil {
			panic(fmt.Sprintf("EFT: -chaos: %v", err))
		}
		entries = []entry{{"custom", sched}}
	} else {
		for _, name := range chaos.PresetNames() {
			sched, err := chaos.Preset(name, nodes)
			if err != nil {
				panic(err)
			}
			entries = append(entries, entry{name, sched})
		}
	}

	for _, e := range entries {
		for _, speculation := range []bool{false, true} {
			mode := "off"
			if speculation {
				mode = "on"
			}
			job := fmt.Sprintf("EFT/%s/spec-%s", e.name, mode)
			wall, ctx, diff := run(job, e.sched, speculation)
			reg := ctx.Metrics()
			t.AddRow(e.name, mode,
				wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%.2fx", float64(wall)/float64(clean)),
				fmt.Sprintf("%d", reg.Counter("task_retries").Value()),
				fmt.Sprintf("%d", reg.Counter("speculative_wins").Value()),
				fmt.Sprintf("%d", reg.Counter("quarantined_nodes").Value()),
				fmt.Sprintf("%d", reg.Counter("partition_blocked_fetches").Value()),
				fmt.Sprintf("%d", ctx.Chaos().Applied()),
				verdictCell(diff))
			if speculation {
				observe(t, job, ctx)
			}
		}
	}
	return t
}
