package experiments

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// E1Transport measures one-way latency and achievable goodput for each
// transport model across message sizes — the standard RDMA-vs-TCP
// microbenchmark curve.
func E1Transport(s Scale) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Transport microbenchmark: latency and goodput vs message size",
		Note:  "uncontended, cross-rack path; models calibrated per DESIGN.md",
		Cols:  []string{"size", "tcp-lat", "ipoib-lat", "rdma-lat", "tcp-GB/s", "ipoib-GB/s", "rdma-GB/s", "tcp/rdma"},
	}
	top := topology.TwoTier(2, 4, 2)
	fabrics := []*netsim.Fabric{
		netsim.NewFabric(top, netsim.TCP40G),
		netsim.NewFabric(top, netsim.IPoIB40G),
		netsim.NewFabric(top, netsim.RDMA40G),
	}
	sizes := pick(s,
		[]int64{64, 4096, 1 << 20},
		[]int64{64, 512, 4096, 64 << 10, 1 << 20, 4 << 20})
	for _, size := range sizes {
		var lats [3]time.Duration
		var gbps [3]float64
		for i, f := range fabrics {
			lats[i] = f.Cost(0, 4, size)
			gbps[i] = f.Throughput(0, 4, size) / 1e9
		}
		t.AddRow(
			byteSize(size),
			lats[0].String(), lats[1].String(), lats[2].String(),
			fmt.Sprintf("%.2f", gbps[0]), fmt.Sprintf("%.2f", gbps[1]), fmt.Sprintf("%.2f", gbps[2]),
			fmt.Sprintf("%.1fx", float64(lats[0])/float64(lats[2])),
		)
	}
	return t
}

// E12Raft measures Raft commit latency (protocol rounds x transport RTT)
// and in-process proposal throughput versus cluster size and transport.
func E12Raft(s Scale) *Table {
	t := &Table{
		ID:    "E12",
		Title: "Raft commit latency vs cluster size and transport",
		Note:  "latency = commit round trips x cross-rack RTT of the model",
		Cols:  []string{"nodes", "rounds", "tcp-commit", "rdma-commit", "proposals/s"},
	}
	proposals := pick(s, 200, 2000)
	for _, n := range []int{3, 5, 7} {
		c := consensus.NewCluster(n, uint64(n))
		if c.RunUntilLeader(500) < 0 {
			t.AddRow(fmt.Sprintf("%d", n), "no leader", "-", "-", "-")
			continue
		}
		c.Propose([]byte("warmup"))
		rounds, ok := c.ProposeAndCountRounds([]byte("measured"))
		if !ok {
			rounds = -1
		}
		// Throughput: real wall time of sequential proposals.
		start := time.Now()
		for i := 0; i < proposals; i++ {
			c.Propose([]byte("payload-for-throughput-measurement"))
		}
		elapsed := time.Since(start)
		tps := float64(proposals) / elapsed.Seconds()

		top := topology.TwoTier(2, (n+1)/2, 2)
		rtt := func(m netsim.Model) time.Duration {
			f := netsim.NewFabric(top, m)
			// One protocol round = request + response across the fabric.
			one := f.Cost(0, topology.NodeID(top.Size()-1), 256) * 2
			return time.Duration(rounds) * one
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", rounds),
			rtt(netsim.TCP40G).String(),
			rtt(netsim.RDMA40G).String(),
			fmt.Sprintf("%.0f", tps),
		)
	}
	return t
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
