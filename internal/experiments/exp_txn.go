package experiments

import (
	"errors"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/kvstore"
)

// txnNoEffect classifies the sharded plane's clean-abort errors: the
// operation is guaranteed to have left no trace, so the capture harness
// omits it from the history instead of recording a pending transaction.
func txnNoEffect(err error) bool {
	return errors.Is(err, kvstore.ErrTxnConflict) ||
		errors.Is(err, kvstore.ErrTxnAborted) ||
		errors.Is(err, kvstore.ErrKeyLocked) ||
		errors.Is(err, kvstore.ErrDeadlineExceeded)
}

// txnScenario is one E-TXN row: a chaos hook driven between capture
// waves against a fresh sharded plane.
type txnScenario struct {
	name string
	// hook runs between waves; nil for the baseline.
	hook func(s *kvstore.Sharded, wave int)
	// wantOK is the expected verdict — false only for the deliberate
	// dirty-read injection, which exists to prove the checker has teeth.
	wantOK bool
}

// ETXNTransactions drives concurrent cross-range transactions through
// coordinator crashes at every 2PC protocol point, a replication-group
// partition spanning the commit point, range splits racing in-flight
// transactions, and a deliberate dirty-read injection. After every run
// the orphan recovery path is drained and three invariants are scored:
// the history is strictly serializable (except the dirty-read row, which
// must be caught), no participant lock survives, and no transaction
// record dangles.
func ETXNTransactions(s Scale) *Table {
	waves := pick(s, 8, 20)
	clients := pick(s, 4, 6)
	t := &Table{
		ID:    "E-TXN",
		Title: "Sharded KV transactions under chaos: strict serializability + recovery",
		Note: fmt.Sprintf("%d clients x %d waves over 2 raft groups, multi-range 2PC; "+
			"every scenario ends with orphan recovery; locks/pending must drain to 0; "+
			"the dirty-read row is a deliberate fault the checker must catch", clients, waves),
		Cols: []string{"scenario", "ops", "committed", "aborted", "recovered", "locks", "pending", "strict-serial"},
	}

	crashPoints := []string{"begin", "prepare", "before-commit", "commit", "apply"}
	scenarios := []txnScenario{
		{name: "baseline", hook: nil, wantOK: true},
		{name: "coord-crash", wantOK: true, hook: func(sh *kvstore.Sharded, wave int) {
			// Rotate a one-shot coordinator crash through every protocol
			// point; recover two waves later so orphaned locks are held
			// across live traffic first.
			if wave%3 == 0 {
				_ = sh.OrphanNext(crashPoints[(wave/3)%len(crashPoints)])
			}
			if wave%3 == 2 {
				_ = sh.Recover()
			}
		}},
		{name: "partition-commit", wantOK: true, hook: func(sh *kvstore.Sharded, wave int) {
			// Cut the control group (txn records + half the ranges) into
			// leader vs followers across two waves, then heal + recover.
			switch wave {
			case 2, 8:
				leader := sh.GroupLeader(0)
				rest := make([]int, 0, 2)
				for id := 0; id < 3; id++ {
					if id != leader {
						rest = append(rest, id)
					}
				}
				sh.PartitionGroup(0, []int{leader}, rest)
			case 4, 10:
				sh.HealGroup(0)
				_ = sh.Recover()
			}
		}},
		{name: "split-race", wantOK: true, hook: func(sh *kvstore.Sharded, wave int) {
			// Split and merge the keyspace under live transactions; a
			// crashed split (wave 5) is left for recovery to finish.
			switch wave {
			case 1:
				_ = sh.Split("k02")
			case 3:
				_ = sh.Split("k05")
			case 5:
				_ = sh.OrphanNext("split-copy")
				_ = sh.Split("k03")
			case 7:
				_ = sh.Recover()
			case 9:
				_ = sh.Merge("k02")
			}
		}},
		{name: "dirty-read", wantOK: false, hook: func(sh *kvstore.Sharded, wave int) {
			sh.SetDirtyReads(wave >= 2)
		}},
	}

	for _, sc := range scenarios {
		sh := kvstore.NewSharded(kvstore.ShardedConfig{
			Seed: 42, Groups: 2, InitialSplits: []string{"k04"},
			MaxOpAttempts: 16, MaxTxnAttempts: 8,
		})
		hook := sc.hook
		ops := check.CaptureTxnHistory(sh, check.TxnCaptureConfig{
			Clients: clients, Waves: waves, Keys: 8, TxnKeys: 2,
			ReadFraction: 0.3, TxnFraction: 0.4,
			Seed:     uint64(1000 + len(sc.name)),
			NoEffect: txnNoEffect,
			BetweenWaves: func(wave int) {
				if hook != nil {
					hook(sh, wave)
				}
			},
		})
		sh.SetDirtyReads(false)
		if err := sh.Recover(); err != nil {
			panic(fmt.Sprintf("E-TXN %s: recover: %v", sc.name, err))
		}
		locks, err := sh.LockCount()
		if err != nil {
			panic(err)
		}
		pending, err := sh.PendingTxnRecords()
		if err != nil {
			panic(err)
		}
		verdict := check.CheckTxns(ops)
		ok := verdict.OK == sc.wantOK && locks == 0 && pending == 0
		name := "E-TXN/" + sc.name
		diff := check.Diff{Name: name, OK: ok, Compared: verdict.Ops}
		if !ok {
			diff.Details = []string{fmt.Sprintf("verdict=%v want=%v locks=%d pending=%d: %s",
				verdict.OK, sc.wantOK, locks, pending, verdict.Detail)}
		}
		recordCheck(diff)
		t.AddRow(sc.name,
			fmt.Sprintf("%d", len(ops)),
			fmt.Sprintf("%d", sh.Reg.Counter("txn_committed").Value()),
			fmt.Sprintf("%d", sh.Reg.Counter("txn_aborted").Value()),
			fmt.Sprintf("%d", sh.Reg.Counter("txn_recovered_aborted").Value()+sh.Reg.Counter("txn_recovered_resumed").Value()),
			fmt.Sprintf("%d", locks),
			fmt.Sprintf("%d", pending),
			verdictCell(diff))
	}

	// Chaos-preset row: the "txn" preset replayed through the controller,
	// one tick per wave — coordinator crashes bracketing the commit point
	// with recovery passes in between.
	sh := kvstore.NewSharded(kvstore.ShardedConfig{
		Seed: 43, Groups: 2, InitialSplits: []string{"k04"},
		MaxOpAttempts: 16, MaxTxnAttempts: 8,
	})
	sched, err := chaos.Preset("txn", 2)
	if err != nil {
		panic(err)
	}
	ctl := chaos.New(sched, 43, chaos.Targets{Nodes: 2, Txn: sh}, sh.Reg)
	ops := check.CaptureTxnHistory(sh, check.TxnCaptureConfig{
		Clients: clients, Waves: waves, Keys: 8, TxnKeys: 2,
		ReadFraction: 0.3, TxnFraction: 0.4,
		Seed:         2000,
		NoEffect:     txnNoEffect,
		BetweenWaves: func(wave int) { ctl.Tick() },
	})
	if err := sh.Recover(); err != nil {
		panic(err)
	}
	locks, _ := sh.LockCount()
	pending, _ := sh.PendingTxnRecords()
	verdict := check.CheckTxns(ops)
	ok := verdict.OK && locks == 0 && pending == 0 && ctl.Done()
	diff := check.Diff{Name: "E-TXN/chaos-preset", OK: ok, Compared: verdict.Ops}
	if !ok {
		diff.Details = []string{fmt.Sprintf("verdict=%v locks=%d pending=%d chaosDone=%v: %s",
			verdict.OK, locks, pending, ctl.Done(), verdict.Detail)}
	}
	recordCheck(diff)
	t.AddRow("chaos-preset",
		fmt.Sprintf("%d", len(ops)),
		fmt.Sprintf("%d", sh.Reg.Counter("txn_committed").Value()),
		fmt.Sprintf("%d", sh.Reg.Counter("txn_aborted").Value()),
		fmt.Sprintf("%d", sh.Reg.Counter("txn_recovered_aborted").Value()+sh.Reg.Counter("txn_recovered_resumed").Value()),
		fmt.Sprintf("%d", locks),
		fmt.Sprintf("%d", pending),
		verdictCell(diff))

	return t
}
