package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/table"
	"repro/internal/topology"
)

// sqlCounters is a snapshot of the columnar-scan pushdown counters;
// they are cumulative per registry, so rows report deltas.
type sqlCounters struct {
	scanned, pruned, decoded, skipped int64
}

func snapSQLCounters(reg *metrics.Registry) sqlCounters {
	return sqlCounters{
		scanned: reg.Counter(table.CtrRowsScanned).Value(),
		pruned:  reg.Counter(table.CtrRowsPruned).Value(),
		decoded: reg.Counter(table.CtrBytesDecoded).Value(),
		skipped: reg.Counter(table.CtrBytesSkipped).Value(),
	}
}

func (a sqlCounters) delta(b sqlCounters) sqlCounters {
	return sqlCounters{
		scanned: a.scanned - b.scanned,
		pruned:  a.pruned - b.pruned,
		decoded: a.decoded - b.decoded,
		skipped: a.skipped - b.skipped,
	}
}

func (a sqlCounters) add(b sqlCounters) sqlCounters {
	return sqlCounters{
		scanned: a.scanned + b.scanned,
		pruned:  a.pruned + b.pruned,
		decoded: a.decoded + b.decoded,
		skipped: a.skipped + b.skipped,
	}
}

// sqlStarEnv loads the star schema into a fresh engine.
func sqlStarEnv(factRows, custN, prodN, parts int) (*query.Env, *core.Engine, error) {
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.RDMA40G)
	cl := cluster.New(cluster.Config{Fabric: fab, SlotsPerNode: 2})
	eng := core.NewEngine(core.Config{Cluster: cl})
	env := query.NewEnv(eng, nil)
	if err := query.RegisterStar(env, query.GenStar(7, factRows, custN, prodN, 48), parts); err != nil {
		return nil, nil, err
	}
	return env, eng, nil
}

// joinKinds summarizes a plan's join strategy choices, e.g. "1bc+1sh".
func joinKinds(p *query.Plan) string {
	b := len(p.FindNodes("join[broadcast]"))
	s := len(p.FindNodes("join[shuffle]"))
	switch {
	case b == 0 && s == 0:
		return "-"
	case b == 0:
		return fmt.Sprintf("%dsh", s)
	case s == 0:
		return fmt.Sprintf("%dbc", b)
	default:
		return fmt.Sprintf("%dbc+%dsh", b, s)
	}
}

// ESQLPlanner runs the TPC-derived star-schema suite twice per query —
// naive compilation and cost-based optimization — and diffs both
// against the naive single-process reference evaluator. The decode
// column shows predicate+projection pushdown working: bytes decoded by
// the columnar scans drop from the naive to the optimized plan while
// the outputs stay identical. A final row replays one star query under
// the "crash" chaos preset (a worker killed mid-job and revived later)
// to show the planner's output survives recovery, still oracle-exact.
func ESQLPlanner(s Scale) *Table {
	factRows := pick(s, 800, 8000)
	custN := pick(s, 60, 400)
	prodN := pick(s, 25, 80)
	const parts = 4
	// Broadcast threshold scaled to the fact size: dimensions (<= custN
	// rows) stay under it, the half-fact shipments table lands over it —
	// so the suite demonstrates both strategy choices at every scale.
	broadcastRows := int64(factRows / 4)

	t := &Table{
		ID:    "E-SQL",
		Title: "SQL planner: cost-based optimization vs naive plans, differentially checked",
		Note: fmt.Sprintf("star schema, %d-row fact, %d customers, %d products; "+
			"est/actual are optimizer cardinality vs observed output rows; decoded bytes "+
			"compare the naive plan's columnar scans to the optimized plan's; "+
			"every row (both modes) is diffed against the reference evaluator", factRows, custN, prodN),
		Cols: []string{"query", "rows", "joins", "est", "actual", "decoded naive", "decoded opt", "skipped", "oracle"},
	}

	env, _, err := sqlStarEnv(factRows, custN, prodN, parts)
	if err != nil {
		panic(fmt.Sprintf("E-SQL: %v", err))
	}
	reg := env.Reg

	var totNaive, totOpt sqlCounters
	for _, q := range query.StarQueries() {
		run := func(optimize bool) (*query.Plan, []table.Row, sqlCounters, check.Diff) {
			name := "E-SQL/" + q.ID
			if !optimize {
				name += "/naive"
			}
			before := snapSQLCounters(reg)
			plan, err := env.SQL(q.SQL, query.Options{Optimize: optimize, Parts: parts, BroadcastRows: broadcastRows})
			if err != nil {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
			rows, err := plan.Execute()
			if err != nil {
				panic(fmt.Sprintf("%s: %v", name, err))
			}
			d := recordCheck(check.DiffQueryEnv(name, rows, plan.Logical, env))
			return plan, rows, snapSQLCounters(reg).delta(before), d
		}
		_, _, naiveC, naiveDiff := run(false)
		plan, rows, optC, optDiff := run(true)
		totNaive = totNaive.add(naiveC)
		totOpt = totOpt.add(optC)
		verdict := "ok"
		if !naiveDiff.OK || !optDiff.OK {
			verdict = "FAIL"
		}
		t.AddRow(q.ID,
			fmt.Sprintf("%d", len(rows)),
			joinKinds(plan),
			fmt.Sprintf("%.0f", plan.Root.Est),
			fmt.Sprintf("%d", plan.Root.Actual()),
			fmt.Sprintf("%d", naiveC.decoded),
			fmt.Sprintf("%d", optC.decoded),
			fmt.Sprintf("%d", optC.skipped),
			verdict)
	}
	if totOpt.decoded > 0 {
		t.AddObs(fmt.Sprintf("pushdown: decoded %d B naive vs %d B optimized (%.1fx less), %d B skipped undecoded, %d rows zone-pruned",
			totNaive.decoded, totOpt.decoded, float64(totNaive.decoded)/float64(totOpt.decoded), totOpt.skipped, totOpt.pruned))
	}

	// EXPLAIN for the two-dimension star join, post-run: estimated vs
	// actual rows per operator, with the filters fused into the scans.
	explain := query.StarQueries()[3]
	if plan, err := env.SQL(explain.SQL, query.Options{Optimize: true, Parts: parts, BroadcastRows: broadcastRows}); err == nil {
		if _, err := plan.Execute(); err == nil {
			t.AddObs("EXPLAIN " + explain.ID + ":")
			for _, line := range strings.Split(strings.TrimRight(plan.Explain(), "\n"), "\n") {
				t.AddObs(line)
			}
		}
	}

	// Chaos row: the same star join with a worker crashed mid-job and
	// revived later. Lineage recomputation must reproduce the exact
	// relational answer, so the row is oracle-checked like the others.
	chaosEnv, eng, err := sqlStarEnv(factRows, custN, prodN, parts)
	if err != nil {
		panic(fmt.Sprintf("E-SQL/chaos: %v", err))
	}
	sched, err := chaos.Preset("crash", 8)
	if err != nil {
		panic(err)
	}
	ctl := chaos.New(sched, 11, chaos.Targets{Nodes: 8, Compute: eng.Cluster(), Faults: eng}, eng.Reg)
	eng.SetChaos(ctl)
	q := query.StarQueries()[3]
	plan, err := chaosEnv.SQL(q.SQL, query.Options{Optimize: true, Parts: parts, BroadcastRows: broadcastRows})
	if err != nil {
		panic(fmt.Sprintf("E-SQL/chaos: %v", err))
	}
	rows, err := plan.Execute()
	if err != nil {
		panic(fmt.Sprintf("E-SQL/chaos: %v", err))
	}
	diff := recordCheck(check.DiffQueryEnv("E-SQL/"+q.ID+"/chaos-crash", rows, plan.Logical, chaosEnv))
	t.AddRow(q.ID+"/chaos-crash",
		fmt.Sprintf("%d", len(rows)),
		joinKinds(plan),
		fmt.Sprintf("%.0f", plan.Root.Est),
		fmt.Sprintf("%d", plan.Root.Actual()),
		"-", "-", "-",
		verdictCell(diff))
	t.AddObs(fmt.Sprintf("chaos: %d/%d events applied, retries=%d",
		ctl.Applied(), len(sched), eng.Reg.Counter("task_retries").Value()))
	return t
}
