package experiments

import (
	"strings"
	"sync"

	hpbdc "repro"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// The observability hub collects what individual experiments record into
// one place that cmd/hpbdc-bench can serve: a job-labeled merged registry
// for /metrics, a combined span recorder for /debug/trace, and a report
// store for /debug/jobs. Experiments run fine with the hub disabled (the
// default); observe() then only annotates the experiment's table.
var hub struct {
	mu    sync.Mutex
	reg   *metrics.Registry
	rec   *trace.Recorder
	store *obs.ReportStore
}

// EnableObservability routes per-experiment metrics, spans and job reports
// into the given sinks. Any argument may be nil to skip that sink. Call
// before running experiments; cmd/hpbdc-bench does when -metrics-addr or
// -trace-out is set.
func EnableObservability(reg *metrics.Registry, rec *trace.Recorder, store *obs.ReportStore) {
	hub.mu.Lock()
	defer hub.mu.Unlock()
	hub.reg = reg
	hub.rec = rec
	hub.store = store
}

// observe analyzes one finished job context: the report is appended to the
// experiment's table (so tables include the per-stage breakdown and skew
// analysis) and everything is published to the hub when one is attached.
// Counters and gauges merge into the hub registry with a "job" label;
// histograms are skipped because their raw observations cannot be
// reconstructed from a snapshot.
func observe(t *Table, job string, ctx *hpbdc.Context) {
	rep := ctx.Report(job)
	for _, line := range strings.Split(strings.TrimRight(rep.String(), "\n"), "\n") {
		t.AddObs(line)
	}

	hub.mu.Lock()
	reg, rec, store := hub.reg, hub.rec, hub.store
	hub.mu.Unlock()
	if store != nil {
		store.Add(rep)
	}
	if reg != nil {
		snap := ctx.Metrics().Snapshot()
		for _, c := range snap.Counters {
			keys, vals := labelArgs(c.Labels, job)
			reg.CounterVec(c.Name, keys...).With(vals...).Add(c.Value)
		}
		for _, g := range snap.Gauges {
			keys, vals := labelArgs(g.Labels, job)
			reg.GaugeVec(g.Name, keys...).With(vals...).Set(g.Value)
		}
	}
	if rec != nil {
		for _, s := range ctx.Tracer().Spans() {
			if s.Args == nil {
				s.Args = map[string]string{}
			}
			s.Args["job"] = job
			s.Track = job + "/" + s.Track
			rec.Add(s)
		}
	}
}

// labelArgs appends the job label to a sample's own labels, returning
// parallel key and value slices for the vector API.
func labelArgs(labels []metrics.Label, job string) (keys, vals []string) {
	keys = make([]string, 0, len(labels)+1)
	vals = make([]string, 0, len(labels)+1)
	for _, l := range labels {
		keys = append(keys, l.Key)
		vals = append(vals, l.Value)
	}
	return append(keys, "job"), append(vals, job)
}
