package experiments

import (
	"fmt"
	"time"

	"repro/internal/stream"
)

// E7Stream sweeps offered load against the streaming pipeline's measured
// capacity and reports sojourn latency with and without backpressure —
// the load/latency hockey stick, and how bounded buffers tame its tail.
func E7Stream(s Scale) *Table {
	t := &Table{
		ID:    "E7",
		Title: "Streaming: sojourn latency vs offered load, with/without backpressure",
		Note:  "1-second tumbling windows; load as a fraction of measured capacity",
		Cols:  []string{"load", "buffer", "p50", "p99", "max-queue", "dropped-late"},
	}
	const workers = 2
	const spin = 1500
	events := pick(s, 20_000, 100_000)

	// Calibrate: drive one pipeline flat-out to find capacity.
	capacity := measureCapacity(workers, spin, events/4)

	for _, frac := range []float64{0.5, 0.8, 1.1} {
		rate := frac * capacity
		for _, buffer := range []int{256, 0} {
			bufName := "bounded"
			if buffer == 0 {
				bufName = "unbounded"
			}
			p := stream.New(stream.Config{
				Workers:  workers,
				Buffer:   buffer,
				Window:   time.Second,
				WorkSpin: spin,
			})
			maxQueue := 0
			start := time.Now()
			for i := 0; i < events; i++ {
				// Pace to the offered rate.
				target := time.Duration(float64(i) / rate * float64(time.Second))
				for time.Since(start) < target {
				}
				_ = p.Send(stream.Event{
					Key:       fmt.Sprintf("k%d", i%64),
					Value:     1,
					EventTime: time.Duration(i) * time.Millisecond,
				})
				if i%500 == 0 {
					if d := p.QueueDepth(); d > maxQueue {
						maxQueue = d
					}
				}
			}
			p.Close()
			h := p.Reg.Histogram("sojourn_ns")
			t.AddRow(
				fmt.Sprintf("%.1fx", frac),
				bufName,
				time.Duration(h.Quantile(0.5)).Round(time.Microsecond).String(),
				time.Duration(h.Quantile(0.99)).Round(time.Microsecond).String(),
				fmt.Sprintf("%d", maxQueue),
				fmt.Sprintf("%d", p.Reg.Counter("late_dropped").Value()),
			)
		}
	}
	return t
}

// measureCapacity drives the pipeline as fast as possible and returns the
// sustained events/sec.
func measureCapacity(workers, spin, events int) float64 {
	p := stream.New(stream.Config{
		Workers:  workers,
		Buffer:   256,
		Window:   time.Second,
		WorkSpin: spin,
	})
	start := time.Now()
	for i := 0; i < events; i++ {
		_ = p.Send(stream.Event{
			Key:       fmt.Sprintf("k%d", i%64),
			Value:     1,
			EventTime: time.Duration(i) * time.Millisecond,
		})
	}
	p.Close()
	return float64(events) / time.Since(start).Seconds()
}
