// Package obs builds post-hoc observability reports for engine jobs. It
// consumes the raw signals the rest of the tree already produces — trace
// spans from internal/trace and typed metric snapshots from
// internal/metrics — and condenses them into a per-job Report: per-stage
// wall-clock and busy-time breakdowns, task-duration percentiles,
// straggler detection (k x median), and shuffle partition-skew analysis
// fed by the engine's labeled shuffle_partition_bytes counters.
//
// The package is deliberately passive: it never hooks execution, so it
// adds zero cost to instrumented code. Reports are plain data and
// marshal to JSON for the /debug/jobs endpoint (see NewMux).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Metric and span conventions shared with the engine instrumentation.
const (
	// CategoryTask and CategoryStage are the span categories the engine
	// emits; Build groups tasks into stages via the ArgStage span arg.
	CategoryTask  = "task"
	CategoryStage = "stage"
	// ArgStage is the task-span arg naming the stage the task belongs to.
	ArgStage = "stage"
	// MetricPartitionBytes / MetricPartitionRecords are the labeled
	// counters (labels: shuffle, partition) that feed skew analysis.
	MetricPartitionBytes   = "shuffle_partition_bytes"
	MetricPartitionRecords = "shuffle_partition_records"
)

// Options tunes report construction.
type Options struct {
	// StragglerK flags a task as a straggler when its duration exceeds
	// K x the stage's median task duration. Default 2.0.
	StragglerK float64
	// MinStragglerTasks is the minimum number of tasks a stage needs
	// before straggler detection applies (a 1-task stage has no peers to
	// lag behind). Default 3.
	MinStragglerTasks int
}

func (o Options) withDefaults() Options {
	if o.StragglerK <= 0 {
		o.StragglerK = 2.0
	}
	if o.MinStragglerTasks <= 0 {
		o.MinStragglerTasks = 3
	}
	return o
}

// Straggler is a task flagged as abnormally slow for its stage.
type Straggler struct {
	Task     string        `json:"task"`  // span name, e.g. "task p3 a0"
	Track    string        `json:"track"` // executor node the task ran on
	Duration time.Duration `json:"duration_ns"`
	Median   time.Duration `json:"stage_median_ns"`
	Ratio    float64       `json:"ratio"` // Duration / Median
}

// StageStats summarizes one stage's task population.
type StageStats struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"` // earliest activity, relative to the recorder epoch
	// Wall is the driver-observed stage duration when the engine emitted a
	// stage span; otherwise the envelope of its task spans.
	Wall time.Duration `json:"wall_ns"`
	// Busy is the sum of task durations — Busy/Wall approximates the
	// stage's achieved parallelism.
	Busy       time.Duration `json:"busy_ns"`
	Tasks      int           `json:"tasks"`
	P50        time.Duration `json:"p50_ns"`
	P95        time.Duration `json:"p95_ns"`
	Max        time.Duration `json:"max_ns"`
	Stragglers []Straggler   `json:"stragglers,omitempty"`
}

// ShuffleStats summarizes the per-partition byte/record distribution of
// one shuffle, as recorded by the engine's labeled counters.
type ShuffleStats struct {
	Shuffle      string  `json:"shuffle"` // shuffle (plan) id label
	Partitions   int     `json:"partitions"`
	TotalBytes   int64   `json:"total_bytes"`
	TotalRecords int64   `json:"total_records"`
	MaxBytes     int64   `json:"max_bytes"`
	MeanBytes    float64 `json:"mean_bytes"`
	MaxPartition string  `json:"max_partition"` // partition label holding MaxBytes
	// Imbalance is MaxBytes/MeanBytes: 1.0 is perfectly balanced; a value
	// near the partition count means one partition holds everything.
	Imbalance float64 `json:"imbalance"`
}

// Report is the condensed observability view of one job run.
type Report struct {
	Job      string         `json:"job"`
	Wall     time.Duration  `json:"wall_ns"` // envelope of every span
	Spans    int            `json:"spans"`
	Stages   []StageStats   `json:"stages"`
	Shuffles []ShuffleStats `json:"shuffles,omitempty"`
}

// Build condenses spans and a metrics snapshot into a Report. Task spans
// (Category "task") are grouped into stages by their ArgStage arg — tasks
// without one land in a synthetic "(untagged)" stage. Stage spans
// (Category "stage") supply driver-side wall clocks. Shuffle skew comes
// from the snapshot's shuffle_partition_bytes/_records counter vectors.
func Build(job string, spans []trace.Span, snap metrics.Snapshot, opts Options) *Report {
	opts = opts.withDefaults()
	r := &Report{Job: job, Spans: len(spans)}

	// Job wall clock: envelope of everything recorded.
	var minStart, maxEnd time.Duration
	first := true
	for _, s := range spans {
		end := s.Start + s.Duration
		if first || s.Start < minStart {
			minStart = s.Start
		}
		if first || end > maxEnd {
			maxEnd = end
		}
		first = false
	}
	if !first {
		r.Wall = maxEnd - minStart
	}

	// Group task spans by stage; remember driver-side stage spans.
	taskByStage := map[string][]trace.Span{}
	stageSpan := map[string]trace.Span{}
	var order []string
	seen := map[string]bool{}
	note := func(name string) {
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	for _, s := range spans {
		switch s.Category {
		case CategoryStage:
			stageSpan[s.Name] = s
			note(s.Name)
		case CategoryTask:
			stage := s.Args[ArgStage]
			if stage == "" {
				stage = "(untagged)"
			}
			taskByStage[stage] = append(taskByStage[stage], s)
			note(stage)
		}
	}

	for _, name := range order {
		tasks := taskByStage[name]
		st := StageStats{Name: name, Tasks: len(tasks)}
		durs := make([]time.Duration, 0, len(tasks))
		var tMin, tMax time.Duration
		for i, t := range tasks {
			st.Busy += t.Duration
			durs = append(durs, t.Duration)
			end := t.Start + t.Duration
			if i == 0 || t.Start < tMin {
				tMin = t.Start
			}
			if i == 0 || end > tMax {
				tMax = end
			}
		}
		if ss, ok := stageSpan[name]; ok {
			st.Start, st.Wall = ss.Start, ss.Duration
		} else if len(tasks) > 0 {
			st.Start, st.Wall = tMin, tMax-tMin
		}
		if len(durs) > 0 {
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			st.P50 = percentile(durs, 0.50)
			st.P95 = percentile(durs, 0.95)
			st.Max = durs[len(durs)-1]
			if len(durs) >= opts.MinStragglerTasks && st.P50 > 0 {
				limit := time.Duration(float64(st.P50) * opts.StragglerK)
				for _, t := range tasks {
					if t.Duration > limit {
						st.Stragglers = append(st.Stragglers, Straggler{
							Task:     t.Name,
							Track:    t.Track,
							Duration: t.Duration,
							Median:   st.P50,
							Ratio:    float64(t.Duration) / float64(st.P50),
						})
					}
				}
				sort.Slice(st.Stragglers, func(i, j int) bool {
					return st.Stragglers[i].Duration > st.Stragglers[j].Duration
				})
			}
		}
		r.Stages = append(r.Stages, st)
	}
	sort.SliceStable(r.Stages, func(i, j int) bool { return r.Stages[i].Start < r.Stages[j].Start })

	r.Shuffles = shuffleSkew(snap)
	return r
}

// percentile returns the nearest-rank percentile of an ascending slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// shuffleSkew extracts per-shuffle partition distributions from the
// labeled shuffle_partition_bytes/_records counters.
func shuffleSkew(snap metrics.Snapshot) []ShuffleStats {
	type acc struct {
		bytes, records map[string]int64 // partition label -> value
	}
	byShuffle := map[string]*acc{}
	get := func(shuffle string) *acc {
		a, ok := byShuffle[shuffle]
		if !ok {
			a = &acc{bytes: map[string]int64{}, records: map[string]int64{}}
			byShuffle[shuffle] = a
		}
		return a
	}
	for _, s := range snap.Counters {
		if s.Name != MetricPartitionBytes && s.Name != MetricPartitionRecords {
			continue
		}
		var shuffle, partition string
		for _, l := range s.Labels {
			switch l.Key {
			case "shuffle":
				shuffle = l.Value
			case "partition":
				partition = l.Value
			}
		}
		if shuffle == "" || partition == "" {
			continue
		}
		a := get(shuffle)
		if s.Name == MetricPartitionBytes {
			a.bytes[partition] += s.Value
		} else {
			a.records[partition] += s.Value
		}
	}

	ids := make([]string, 0, len(byShuffle))
	for id := range byShuffle {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []ShuffleStats
	for _, id := range ids {
		a := byShuffle[id]
		ss := ShuffleStats{Shuffle: id, Partitions: len(a.bytes)}
		parts := make([]string, 0, len(a.bytes))
		for p := range a.bytes {
			parts = append(parts, p)
		}
		sort.Strings(parts)
		for _, p := range parts {
			b := a.bytes[p]
			ss.TotalBytes += b
			if b > ss.MaxBytes {
				ss.MaxBytes = b
				ss.MaxPartition = p
			}
		}
		for _, v := range a.records {
			ss.TotalRecords += v
		}
		if ss.Partitions > 0 {
			ss.MeanBytes = float64(ss.TotalBytes) / float64(ss.Partitions)
			if ss.MeanBytes > 0 {
				ss.Imbalance = float64(ss.MaxBytes) / ss.MeanBytes
			}
		}
		out = append(out, ss)
	}
	return out
}

// String renders the report as a fixed-width table for terminal output.
func (r *Report) String() string {
	if r == nil {
		return "(no report)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "job %q: wall %v, %d stages, %d spans\n",
		r.Job, r.Wall.Round(time.Microsecond), len(r.Stages), r.Spans)
	if len(r.Stages) > 0 {
		fmt.Fprintf(&b, "  %-28s %6s %10s %10s %10s %10s %10s %5s\n",
			"stage", "tasks", "wall", "busy", "p50", "p95", "max", "strag")
		for _, st := range r.Stages {
			fmt.Fprintf(&b, "  %-28s %6d %10v %10v %10v %10v %10v %5d\n",
				st.Name, st.Tasks,
				st.Wall.Round(time.Microsecond), st.Busy.Round(time.Microsecond),
				st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond),
				st.Max.Round(time.Microsecond), len(st.Stragglers))
		}
	}
	for _, st := range r.Stages {
		for _, sg := range st.Stragglers {
			fmt.Fprintf(&b, "  straggler: %s on %s: %v (%.1fx stage median %v)\n",
				sg.Task, sg.Track, sg.Duration.Round(time.Microsecond),
				sg.Ratio, sg.Median.Round(time.Microsecond))
		}
	}
	for _, sh := range r.Shuffles {
		fmt.Fprintf(&b, "  shuffle %s: %d partitions, %d bytes, %d records, imbalance %.2f (max part %s: %d bytes, mean %.0f)\n",
			sh.Shuffle, sh.Partitions, sh.TotalBytes, sh.TotalRecords,
			sh.Imbalance, sh.MaxPartition, sh.MaxBytes, sh.MeanBytes)
	}
	return b.String()
}
