package obs

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ReportStore keeps the reports of completed jobs for the /debug/jobs
// endpoint. Safe for concurrent use; a nil store ignores Add and returns
// no reports, so callers can hold one unconditionally.
type ReportStore struct {
	mu      sync.Mutex
	reports []*Report
}

// NewReportStore returns an empty store.
func NewReportStore() *ReportStore { return &ReportStore{} }

// Add appends a completed job's report.
func (s *ReportStore) Add(r *Report) {
	if s == nil || r == nil {
		return
	}
	s.mu.Lock()
	s.reports = append(s.reports, r)
	s.mu.Unlock()
}

// Reports returns the stored reports, oldest first.
func (s *ReportStore) Reports() []*Report {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Report(nil), s.reports...)
}

// Last returns the most recently added report, or nil.
func (s *ReportStore) Last() *Report {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.reports) == 0 {
		return nil
	}
	return s.reports[len(s.reports)-1]
}

// NewMux assembles the debug surface:
//
//	/metrics      Prometheus text exposition of reg
//	/debug/trace  Chrome trace-event JSON from rec (load in Perfetto)
//	/debug/jobs   JSON array of stored job reports
//
// Any argument may be nil; the corresponding endpoint then serves an
// empty-but-valid document.
func NewMux(reg *metrics.Registry, rec *trace.Recorder, store *ReportStore) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = rec.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/jobs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reports := store.Reports()
		if reports == nil {
			reports = []*Report{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reports)
	})
	return mux
}
