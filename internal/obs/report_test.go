package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func taskSpan(name, track, stage string, start, dur time.Duration) trace.Span {
	return trace.Span{
		Name: name, Category: CategoryTask, Track: track,
		Start: start, Duration: dur,
		Args: map[string]string{ArgStage: stage},
	}
}

func TestBuildStageBreakdownAndStragglers(t *testing.T) {
	spans := []trace.Span{
		{Name: "map s1", Category: CategoryStage, Track: "driver", Start: 0, Duration: ms(40)},
		taskSpan("task p0 a0", "node-00", "map s1", ms(1), ms(10)),
		taskSpan("task p1 a0", "node-01", "map s1", ms(1), ms(10)),
		taskSpan("task p2 a0", "node-02", "map s1", ms(2), ms(11)),
		taskSpan("task p3 a0", "node-03", "map s1", ms(2), ms(38)), // straggler: 3.8x median
		{Name: "result", Category: CategoryStage, Track: "driver", Start: ms(41), Duration: ms(9)},
		taskSpan("task p0 a0", "node-00", "result", ms(42), ms(8)),
	}
	r := Build("wordcount", spans, metrics.Snapshot{}, Options{})
	if r.Job != "wordcount" || r.Spans != len(spans) {
		t.Fatalf("report header = %+v", r)
	}
	if r.Wall != ms(50) { // 0 .. 41+9
		t.Fatalf("wall = %v, want 50ms", r.Wall)
	}
	if len(r.Stages) != 2 {
		t.Fatalf("stages = %+v", r.Stages)
	}
	mapStage := r.Stages[0]
	if mapStage.Name != "map s1" || mapStage.Tasks != 4 {
		t.Fatalf("map stage = %+v", mapStage)
	}
	if mapStage.Wall != ms(40) { // driver-side stage span wins
		t.Fatalf("map wall = %v", mapStage.Wall)
	}
	if mapStage.Busy != ms(10+10+11+38) {
		t.Fatalf("map busy = %v", mapStage.Busy)
	}
	if mapStage.P50 != ms(10) || mapStage.Max != ms(38) {
		t.Fatalf("map p50=%v max=%v", mapStage.P50, mapStage.Max)
	}
	if len(mapStage.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v", mapStage.Stragglers)
	}
	sg := mapStage.Stragglers[0]
	if sg.Task != "task p3 a0" || sg.Track != "node-03" {
		t.Fatalf("straggler = %+v", sg)
	}
	if sg.Ratio < 3.7 || sg.Ratio > 3.9 {
		t.Fatalf("straggler ratio = %v", sg.Ratio)
	}
	// The 1-task result stage must not flag stragglers.
	if got := r.Stages[1]; got.Name != "result" || len(got.Stragglers) != 0 {
		t.Fatalf("result stage = %+v", got)
	}
	// Stage wall-clock sum is bounded by the job envelope with sequential stages.
	var sum time.Duration
	for _, st := range r.Stages {
		sum += st.Wall
	}
	if sum > r.Wall {
		t.Fatalf("stage wall sum %v exceeds job wall %v", sum, r.Wall)
	}
	if s := r.String(); !strings.Contains(s, "straggler: task p3 a0 on node-03") {
		t.Fatalf("String() missing straggler line:\n%s", s)
	}
}

func TestBuildUntaggedTasksAndNoStageSpan(t *testing.T) {
	spans := []trace.Span{
		{Name: "task p0 a0", Category: CategoryTask, Track: "node-00", Start: ms(5), Duration: ms(10)},
		{Name: "task p1 a0", Category: CategoryTask, Track: "node-01", Start: ms(7), Duration: ms(12)},
	}
	r := Build("legacy", spans, metrics.Snapshot{}, Options{})
	if len(r.Stages) != 1 || r.Stages[0].Name != "(untagged)" {
		t.Fatalf("stages = %+v", r.Stages)
	}
	// Without a driver span the stage wall is the task envelope: 5..19.
	if r.Stages[0].Start != ms(5) || r.Stages[0].Wall != ms(14) {
		t.Fatalf("stage envelope = %+v", r.Stages[0])
	}
}

func TestShuffleSkewFromSnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	bytesVec := reg.CounterVec(MetricPartitionBytes, "shuffle", "partition")
	recsVec := reg.CounterVec(MetricPartitionRecords, "shuffle", "partition")
	// Shuffle 1: heavily skewed — partition 0 holds 800 of 1000 bytes.
	bytesVec.With("1", "0").Add(800)
	bytesVec.With("1", "1").Add(100)
	bytesVec.With("1", "2").Add(100)
	recsVec.With("1", "0").Add(80)
	recsVec.With("1", "1").Add(10)
	recsVec.With("1", "2").Add(10)
	// Shuffle 2: perfectly balanced.
	bytesVec.With("2", "0").Add(50)
	bytesVec.With("2", "1").Add(50)

	r := Build("skewed", nil, reg.Snapshot(), Options{})
	if len(r.Shuffles) != 2 {
		t.Fatalf("shuffles = %+v", r.Shuffles)
	}
	s1 := r.Shuffles[0]
	if s1.Shuffle != "1" || s1.Partitions != 3 || s1.TotalBytes != 1000 || s1.TotalRecords != 100 {
		t.Fatalf("shuffle 1 = %+v", s1)
	}
	if s1.MaxPartition != "0" || s1.MaxBytes != 800 {
		t.Fatalf("shuffle 1 max = %+v", s1)
	}
	if s1.Imbalance < 2.39 || s1.Imbalance > 2.41 { // 800 / (1000/3)
		t.Fatalf("shuffle 1 imbalance = %v", s1.Imbalance)
	}
	if s2 := r.Shuffles[1]; s2.Imbalance != 1.0 {
		t.Fatalf("shuffle 2 imbalance = %v", s2.Imbalance)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	durs := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(100)}
	if p := percentile(durs, 0.5); p != ms(3) {
		t.Fatalf("p50 = %v", p)
	}
	if p := percentile(durs, 1); p != ms(100) {
		t.Fatalf("p100 = %v", p)
	}
	if p := percentile(durs, 0); p != ms(1) {
		t.Fatalf("p0 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty = %v", p)
	}
}

func TestReportStoreNilSafe(t *testing.T) {
	var s *ReportStore
	s.Add(&Report{Job: "x"}) // must not panic
	if s.Reports() != nil || s.Last() != nil {
		t.Fatal("nil store returned data")
	}
	st := NewReportStore()
	st.Add(nil) // ignored
	st.Add(&Report{Job: "a"})
	st.Add(&Report{Job: "b"})
	if got := st.Reports(); len(got) != 2 || got[0].Job != "a" {
		t.Fatalf("reports = %+v", got)
	}
	if st.Last().Job != "b" {
		t.Fatalf("last = %+v", st.Last())
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("tasks_launched").Add(3)
	rec := trace.New()
	rec.Add(trace.Span{Name: "task p0", Category: CategoryTask, Track: "node-00",
		Start: ms(1), Duration: ms(2)})
	store := NewReportStore()
	store.Add(Build("job-1", rec.Spans(), reg.Snapshot(), Options{}))

	srv := httptest.NewServer(NewMux(reg, rec, store))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "tasks_launched 3") {
		t.Fatalf("/metrics = %q", body)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(get("/debug/trace")), &events); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	if len(events) != 2 { // thread_name meta + one complete event
		t.Fatalf("trace events = %d", len(events))
	}
	var reports []Report
	if err := json.Unmarshal([]byte(get("/debug/jobs")), &reports); err != nil {
		t.Fatalf("/debug/jobs is not valid JSON: %v", err)
	}
	if len(reports) != 1 || reports[0].Job != "job-1" {
		t.Fatalf("jobs = %+v", reports)
	}
}

func TestMuxNilComponents(t *testing.T) {
	srv := httptest.NewServer(NewMux(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/trace", "/debug/jobs"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}
