package obs

// Degenerate-input coverage for report construction: stages with no
// tasks (a driver span for a stage whose work was all journal-resumed or
// deadline-aborted), single-task stages (straggler detection has no peer
// population), and shuffles whose partitions are all empty (a filter
// that dropped every record still registers the partition counters).

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestBuildZeroTaskStage(t *testing.T) {
	spans := []trace.Span{
		{Name: "map s1 (resumed)", Category: CategoryStage, Track: "driver", Start: 0, Duration: ms(4)},
	}
	r := Build("resumed", spans, metrics.Snapshot{}, Options{})
	if len(r.Stages) != 1 {
		t.Fatalf("stages = %+v", r.Stages)
	}
	st := r.Stages[0]
	if st.Tasks != 0 || st.Busy != 0 || len(st.Stragglers) != 0 {
		t.Fatalf("zero-task stage = %+v", st)
	}
	// The driver-side span still supplies the wall clock.
	if st.Wall != ms(4) {
		t.Fatalf("wall = %v, want 4ms", st.Wall)
	}
	if st.P50 != 0 || st.P95 != 0 || st.Max != 0 {
		t.Fatalf("percentiles of an empty population must be zero: %+v", st)
	}
	// Rendering must not divide by the zero task count.
	if out := r.String(); !strings.Contains(out, "map s1 (resumed)") {
		t.Fatalf("String() missing stage:\n%s", out)
	}
}

func TestBuildSingleTaskStage(t *testing.T) {
	spans := []trace.Span{
		{Name: "result", Category: CategoryStage, Track: "driver", Start: ms(1), Duration: ms(20)},
		taskSpan("task p0 a0", "node-03", "result", ms(2), ms(18)),
	}
	r := Build("tiny", spans, metrics.Snapshot{}, Options{})
	if len(r.Stages) != 1 {
		t.Fatalf("stages = %+v", r.Stages)
	}
	st := r.Stages[0]
	if st.Tasks != 1 || st.Busy != ms(18) {
		t.Fatalf("single-task stage = %+v", st)
	}
	// With one sample every percentile is that sample.
	if st.P50 != ms(18) || st.P95 != ms(18) || st.Max != ms(18) {
		t.Fatalf("percentiles = p50 %v p95 %v max %v", st.P50, st.P95, st.Max)
	}
	// One task has no peers to lag behind — never a straggler, even at an
	// aggressive threshold.
	if len(st.Stragglers) != 0 {
		t.Fatalf("stragglers = %+v", st.Stragglers)
	}
	r2 := Build("tiny", spans, metrics.Snapshot{}, Options{StragglerK: 1.01, MinStragglerTasks: 1})
	for _, sg := range r2.Stages[0].Stragglers {
		if sg.Ratio > 1.01 {
			t.Fatalf("single task flagged as straggler of itself: %+v", sg)
		}
	}
}

func TestShuffleSkewAllEmptyPartitions(t *testing.T) {
	reg := metrics.NewRegistry()
	bytesVec := reg.CounterVec(MetricPartitionBytes, "shuffle", "partition")
	recsVec := reg.CounterVec(MetricPartitionRecords, "shuffle", "partition")
	// Every partition registered, nothing written to any of them.
	for _, p := range []string{"0", "1", "2", "3"} {
		bytesVec.With("7", p).Add(0)
		recsVec.With("7", p).Add(0)
	}
	r := Build("empty-shuffle", nil, reg.Snapshot(), Options{})
	if len(r.Shuffles) != 1 {
		t.Fatalf("shuffles = %+v", r.Shuffles)
	}
	ss := r.Shuffles[0]
	if ss.Partitions != 4 || ss.TotalBytes != 0 || ss.TotalRecords != 0 || ss.MaxBytes != 0 {
		t.Fatalf("empty shuffle = %+v", ss)
	}
	// Zero mean must not produce an Inf/NaN imbalance.
	if ss.Imbalance != 0 {
		t.Fatalf("imbalance of an all-empty shuffle = %v, want 0", ss.Imbalance)
	}
	if out := r.String(); !strings.Contains(out, "empty-shuffle") {
		t.Fatalf("String():\n%s", out)
	}
}
