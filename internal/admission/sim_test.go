package admission

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/workload"
)

// waitSimGoroutines polls until the goroutine count falls back to the
// baseline — the sim's retry and shed paths hand work to goroutines that
// shut down asynchronously, so a plain count right after Run races the
// teardown.
func waitSimGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
}

// simTenants is the standard three-tenant YCSB A/B/C mix at the given
// aggregate offered rate.
func simTenants(totalRate float64) []workload.TenantSpec {
	mixes := []string{"A", "B", "C"}
	out := make([]workload.TenantSpec, 3)
	for i, m := range mixes {
		rf, _ := workload.YCSBMix(m)
		out[i] = workload.TenantSpec{
			ID:         fmt.Sprintf("ycsb-%s", m),
			RatePerSec: totalRate / 3,
			Weight:     1,
			Priority:   i, // A is the batch tier; C sheds last
			ReadFrac:   rf,
			Keys:       256,
			Skew:       0.99,
		}
	}
	return out
}

// fixedServe serves every op in `lat` of simulated time. With
// honorBudget it fast-fails (at zero cost) when the remaining virtual
// budget cannot cover the work — the deadline-propagation path; without,
// it models the legacy API that grinds on regardless.
func fixedServe(lat time.Duration, honorBudget bool) ServeFunc {
	return func(ctx context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error) {
		if honorBudget {
			if rem, ok := Budget(ctx); ok && rem < lat {
				return 0, fmt.Errorf("fixedServe: %w", ErrDeadline)
			}
		}
		return lat, nil
	}
}

// quotasWithBurst derives per-tenant admission quotas from a capacity
// estimate, with bucket depth sized to ~20ms of traffic so the initial
// full bucket cannot dump a deep queue on the server.
func quotasWithBurst(tenants []workload.TenantSpec, totalRate float64) []TenantQuota {
	ids := make([]string, len(tenants))
	weights := make([]float64, len(tenants))
	prios := make([]int, len(tenants))
	for i, t := range tenants {
		ids[i], weights[i], prios[i] = t.ID, t.Weight, t.Priority
	}
	qs := QuotasFor(ids, weights, prios, totalRate)
	for i := range qs {
		qs[i].Burst = qs[i].Rate * 0.02
	}
	return qs
}

func overloadConfig(mult float64, admissionOn bool, seed uint64) SimConfig {
	const capacity = 1000.0 // 1/serveLat
	cfg := SimConfig{
		Tenants:  simTenants(mult * capacity),
		Duration: 2 * time.Second,
		Seed:     seed,
		Deadline: 50 * time.Millisecond,
		Serve:    fixedServe(time.Millisecond, admissionOn),
	}
	if admissionOn {
		cfg.Admission = &Config{
			Tenants:  quotasWithBurst(cfg.Tenants, 0.95*capacity),
			Target:   2 * time.Millisecond,
			Interval: 20 * time.Millisecond,
			MaxQueue: 256,
		}
		cfg.RetryRatio = 0.1
	}
	return cfg
}

func TestSimDeterministic(t *testing.T) {
	baseline := runtime.NumGoroutine()
	defer waitSimGoroutines(t, baseline)
	for _, on := range []bool{true, false} {
		a := NewSim(overloadConfig(1.5, on, 42)).Run()
		b := NewSim(overloadConfig(1.5, on, 42)).Run()
		if a.Checksum != b.Checksum || a.Goodput != b.Goodput ||
			a.Offered != b.Offered || a.VirtualElapsed != b.VirtualElapsed ||
			a.ShedQuota != b.ShedQuota || a.ShedSojourn != b.ShedSojourn {
			t.Fatalf("admission=%v not deterministic:\n%+v\n%+v", on, a, b)
		}
		c := NewSim(overloadConfig(1.5, on, 43)).Run()
		if c.Checksum == a.Checksum {
			t.Fatalf("admission=%v: different seeds, identical checksum", on)
		}
	}
}

// TestSimFlatPastSaturation is the package-level version of the E-OVL
// headline: with the defense stack on, goodput at 2x saturation stays
// within 10% of peak and admitted p999 stays bounded; the undefended
// control run collapses.
func TestSimFlatPastSaturation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	defer waitSimGoroutines(t, baseline)
	peak := 0.0
	var at2x SimResult
	for _, mult := range []float64{0.5, 1.0, 1.5, 2.0} {
		res := NewSim(overloadConfig(mult, true, 7)).Run()
		if res.GoodputPerSec > peak {
			peak = res.GoodputPerSec
		}
		if mult == 2.0 {
			at2x = res
		}
	}
	if at2x.GoodputPerSec < 0.9*peak {
		t.Fatalf("goodput at 2x = %.0f/s, < 90%% of peak %.0f/s", at2x.GoodputPerSec, peak)
	}
	if p999 := time.Duration(at2x.AdmittedLatency.P999); p999 > 100*time.Millisecond {
		t.Fatalf("admitted p999 = %v, want bounded by 2x deadline", p999)
	}
	if at2x.ShedQuota == 0 {
		t.Fatal("2x overload shed nothing at the quota edge")
	}

	control := NewSim(overloadConfig(2.0, false, 7)).Run()
	if control.GoodputPerSec > 0.3*at2x.GoodputPerSec {
		t.Fatalf("control run did not collapse: %.0f/s vs defended %.0f/s",
			control.GoodputPerSec, at2x.GoodputPerSec)
	}
	// The collapse mechanism: the unbounded queue keeps the server busy
	// long past the arrival window, all of it wasted work.
	if control.VirtualElapsed < 3*time.Second {
		t.Fatalf("control run finished at %v; expected a drained backlog far past 2s", control.VirtualElapsed)
	}
	if control.Timeouts == 0 {
		t.Fatal("control run recorded no timeouts")
	}
}

func TestSimBreakerRoutesAroundBadNode(t *testing.T) {
	baseline := runtime.NumGoroutine()
	defer waitSimGoroutines(t, baseline)
	const bad = topology.NodeID(2)
	var badCalls int64
	serve := func(ctx context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error) {
		if coord == bad {
			badCalls++
			return 5 * time.Millisecond, fmt.Errorf("node %d: connection refused", coord)
		}
		return time.Millisecond, nil
	}
	cfg := overloadConfig(0.5, true, 11)
	cfg.Nodes = 4
	cfg.Serve = serve
	cfg.Breaker = BreakerConfig{Threshold: 3, Cooldown: 200 * time.Millisecond}
	res := NewSim(cfg).Run()
	if res.BreakerOpens == 0 {
		t.Fatal("failing node never tripped its breaker")
	}
	if res.Failures == 0 {
		t.Fatal("expected per-node failures")
	}
	// With the breaker routing around the bad node, calls to it are
	// bounded by trips+probes, a tiny fraction of total admitted.
	if badCalls*8 > res.Admitted {
		t.Fatalf("bad node took %d of %d calls despite breaker", badCalls, res.Admitted)
	}
	if res.GoodputPerSec < 0.8*0.5*1000/3*3 { // ~offered rate
		t.Fatalf("goodput %.0f/s collapsed despite routing around bad node", res.GoodputPerSec)
	}
}

func TestSimChaosHooks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	defer waitSimGoroutines(t, baseline)
	base := overloadConfig(0.5, true, 13)
	quiet := NewSim(base).Run()

	burst := overloadConfig(0.5, true, 13)
	var sim *Sim
	burst.Tick = func(step int64) {
		// Steps are 100ms of virtual time: burst 3x in [0.5s, 1.5s).
		switch step {
		case 5:
			sim.SetBurst(3)
			sim.SetTenantFlood(0, 2)
		case 15:
			sim.SetTenantFlood(0, 1)
			sim.SetBurst(1)
		}
	}
	sim = NewSim(burst)
	res := sim.Run()
	if res.Offered <= quiet.Offered+int64(float64(quiet.Offered)*0.2) {
		t.Fatalf("burst+flood offered %d, quiet %d: hooks had no effect", res.Offered, quiet.Offered)
	}
	// Same seed, same config, same hooks: still deterministic.
	var sim2 *Sim
	burst2 := overloadConfig(0.5, true, 13)
	burst2.Tick = func(step int64) {
		switch step {
		case 5:
			sim2.SetBurst(3)
			sim2.SetTenantFlood(0, 2)
		case 15:
			sim2.SetTenantFlood(0, 1)
			sim2.SetBurst(1)
		}
	}
	sim2 = NewSim(burst2)
	if res2 := sim2.Run(); res2.Checksum != res.Checksum {
		t.Fatal("chaos-driven run not deterministic")
	}
}
