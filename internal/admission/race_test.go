package admission

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/topology"
)

// waitGoroutines polls until the goroutine count returns to (or below)
// the baseline, failing the test on timeout — the leak check the ISSUE's
// race-test satellite asks for.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d alive, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestAdmissionConcurrent hammers the shared-state components (token
// buckets, controller, retry budget, breaker set) from many goroutines
// under -race, then verifies every goroutine drains.
func TestAdmissionConcurrent(t *testing.T) {
	baseline := runtime.NumGoroutine()

	c := NewController(Config{
		Tenants: []TenantQuota{
			{ID: "a", Weight: 2, Rate: 5000},
			{ID: "b", Weight: 1, Rate: 5000},
		},
		MaxQueue: 128,
	})
	budget := NewRetryBudget(0.1)
	breakers := NewBreakerSet(BreakerConfig{Threshold: 3})
	bucket := NewTokenBucket(10000, 100)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				now := time.Duration(w*500+i) * 100 * time.Microsecond
				_ = bucket.Allow(now, 1)
				if err := c.Offer(now, Request{Tenant: (w + i) % 2, Index: int64(w*500 + i)}); err == nil {
					budget.Deposit()
				} else {
					_ = budget.Withdraw()
				}
				if i%3 == 0 {
					if req, _, ok := c.Next(now); ok {
						node := topology.NodeID(req.Index % 4)
						if breakers.Allow(node) {
							if req.Index%17 == 0 {
								breakers.ReportFailure(node)
							} else {
								breakers.ReportSuccess(node)
							}
						}
					}
				}
				if i%50 == 0 {
					breakers.Tick()
					_ = c.Depth()
					_ = budget.Suppressed()
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain what's left so counters reconcile.
	for {
		if _, _, ok := c.Next(time.Hour); !ok {
			break
		}
	}
	if d := c.Depth(); d != 0 {
		t.Fatalf("queue depth %d after drain", d)
	}
	waitGoroutines(t, baseline)
}
