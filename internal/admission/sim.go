// The open-loop overload simulator: the harness behind the E-OVL
// experiment, the kv perf family's overload segment and the root
// acceptance test. It drives a multi-tenant Poisson arrival trace
// (workload.ArrivalGen) against a serving function on a single logical
// capacity, with the full client-side defense stack in the loop —
// admission controller, retry budget, virtual-deadline propagation and
// per-node circuit breakers — or with the stack disabled (the control
// run), which is how the metastable-failure collapse is demonstrated.
//
// Open-loop matters: a closed-loop client backs off naturally when the
// server slows (each in-flight request gates the next), so it can never
// overload anything. Real million-client traffic does not back off —
// arrivals keep coming at the offered rate no matter how the server is
// doing — and that is the regime SProBench's sustained-throughput
// methodology targets. Everything is virtual time, so a run is a pure
// function of its SimConfig and seed.
package admission

import (
	"container/heap"
	"context"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ServeFunc executes one operation against coordinator node coord and
// returns the simulated service latency. The context carries the
// remaining virtual-time budget (see WithBudget); a deadline-aware
// implementation fails fast with its typed deadline error when the
// simulated cost would exceed the budget, returning only the latency it
// actually spent. The kvstore GetCtx/PutCtx quorum ops wrapped over a
// ring are the canonical implementation.
type ServeFunc func(ctx context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error)

// SimConfig configures an overload run.
type SimConfig struct {
	// Tenants is the multi-tenant arrival mix (rates, weights,
	// priorities, YCSB read fractions). Required.
	Tenants []workload.TenantSpec
	// Duration is how long arrivals are generated (the run itself keeps
	// draining until queues and retries settle). Required.
	Duration time.Duration
	// Seed drives all randomness.
	Seed uint64
	// Serve executes admitted operations. Required.
	Serve ServeFunc
	// Nodes is how many coordinator nodes Serve round-robins over
	// (default 1). Each gets its own circuit breaker.
	Nodes int

	// Deadline is the end-to-end virtual budget per attempt; a request
	// completing later counts as a timeout, not goodput. Default 50ms.
	Deadline time.Duration
	// MaxAttempts caps total tries per logical request (default 3).
	MaxAttempts int
	// Backoff is the first retry delay, doubling per attempt. Default 5ms.
	Backoff time.Duration

	// Admission enables the defense stack: non-nil runs every arrival
	// through a Controller built from it; nil is the control run — an
	// unbounded FIFO with no quotas, no shedding and an unlimited retry
	// budget, i.e. the system as it stood before this subsystem.
	Admission *Config
	// RetryRatio > 0 enables a client retry budget with that deposit
	// ratio; <= 0 leaves retries unbudgeted.
	RetryRatio float64
	// Breaker configures the per-node circuit breakers (zero value =
	// defaults; breakers only matter when Serve can fail per-node).
	Breaker BreakerConfig

	// TickEvery fires the Tick hook each time virtual time crosses a
	// multiple of it (default 100ms) — the seam the chaos controller
	// ticks through, so burst/flood events land mid-run.
	TickEvery time.Duration
	// Tick receives the number of TickEvery boundaries crossed so far
	// (monotone), suitable for chaos.Controller.AdvanceTo.
	Tick func(step int64)

	// WindowWidth is the latency-trajectory window (default 250ms).
	WindowWidth time.Duration
	// Reg receives the admission counters when Admission is set.
	Reg *metrics.Registry
}

func (c *SimConfig) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = 50 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * time.Millisecond
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 100 * time.Millisecond
	}
	if c.WindowWidth <= 0 {
		c.WindowWidth = 250 * time.Millisecond
	}
}

// SimResult summarizes one overload run.
type SimResult struct {
	// Offered counts fresh (first-attempt) arrivals; Admitted counts
	// dequeues that reached Serve; Goodput counts logical requests that
	// completed successfully within their attempt deadline.
	Offered, Admitted, Goodput int64
	// Shed breakdown: quota = token-bucket edge rejections, queue =
	// bounded-queue overflow, sojourn = CoDel drops.
	ShedQuota, ShedQueue, ShedSojourn int64
	// Timeouts counts attempts that exceeded the deadline (fast-failed
	// or served too late); Failures counts non-timeout Serve errors.
	Timeouts, Failures int64
	// Retries counts attempts 2+; RetriesSuppressed counts retries the
	// budget refused.
	Retries, RetriesSuppressed int64
	// BreakerOpens counts circuit-breaker trips across nodes.
	BreakerOpens int64
	// VirtualElapsed is when the last work finished — for the control
	// run this runs far past Duration, which is the collapse.
	VirtualElapsed time.Duration
	// GoodputPerSec is Goodput over VirtualElapsed.
	GoodputPerSec float64
	// Admitted end-to-end latency distribution (per served attempt,
	// from that attempt's arrival) and its windowed trajectory.
	AdmittedLatency metrics.HistogramSnapshot
	Windows         []metrics.WindowSample
	// Checksum fingerprints the completed-request stream; identical
	// seeds and configs must produce identical checksums.
	Checksum uint64
}

// pendingOp is one logical request across its attempts.
type pendingOp struct {
	op      workload.Op
	tenant  int
	attempt int
	// arrive is the current attempt's arrival (deadline epoch).
	arrive time.Duration
}

// retryEvent is a scheduled retry in the sim's min-heap.
type retryEvent struct {
	at  time.Duration
	idx int64
}

type retryHeap []retryEvent

func (h retryHeap) Len() int { return len(h) }
func (h retryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].idx < h[j].idx
}
func (h retryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x interface{}) { *h = append(*h, x.(retryEvent)) }
func (h *retryHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Sim is one overload run in progress. It implements the chaos
// OverloadTarget hooks (SetBurst, SetTenantFlood), which the schedule's
// burst and tenant-flood events call from the Tick seam to scale arrival
// rates mid-run.
type Sim struct {
	cfg  SimConfig
	gens []*workload.ArrivalGen
	ctrl *Controller // nil for the control run
	fifo []Request   // control-run unbounded queue

	burst  float64
	floods map[int]float64

	budget   *RetryBudget
	breakers []*Breaker
	rrNode   int

	pend    map[int64]*pendingOp
	retries retryHeap
	nextIdx int64

	now, free time.Duration
	tickStep  int64
	hist      *metrics.WindowedHistogram
	sum       SimResult
	hash      uint64
}

// NewSim builds a run from cfg; Run executes it.
func NewSim(cfg SimConfig) *Sim {
	cfg.fill()
	if len(cfg.Tenants) == 0 {
		panic("admission: SimConfig.Tenants is required")
	}
	if cfg.Serve == nil {
		panic("admission: SimConfig.Serve is required")
	}
	s := &Sim{
		cfg:    cfg,
		gens:   make([]*workload.ArrivalGen, len(cfg.Tenants)),
		burst:  1,
		floods: map[int]float64{},
		pend:   map[int64]*pendingOp{},
		hist:   metrics.NewWindowedHistogram(cfg.WindowWidth),
		hash:   fnv.New64a().Sum64(),
	}
	for i, t := range cfg.Tenants {
		s.gens[i] = workload.NewArrivalGen(i, t, cfg.Seed)
	}
	if cfg.Admission != nil {
		ac := *cfg.Admission
		if ac.Reg == nil {
			ac.Reg = cfg.Reg
		}
		s.ctrl = NewController(ac)
	}
	if cfg.RetryRatio > 0 {
		s.budget = NewRetryBudget(cfg.RetryRatio)
	}
	s.breakers = make([]*Breaker, cfg.Nodes)
	for i := range s.breakers {
		s.breakers[i] = NewBreaker(cfg.Breaker)
	}
	return s
}

// SetBurst scales every tenant's arrival rate (traffic-burst chaos);
// factor 1 restores normal traffic.
func (s *Sim) SetBurst(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	s.burst = factor
	s.applyFactors()
}

// SetTenantFlood scales one tenant's arrival rate (tenant-flood chaos);
// factor 1 ends the flood.
func (s *Sim) SetTenantFlood(tenant int, factor float64) {
	if tenant < 0 || tenant >= len(s.gens) {
		return
	}
	if factor <= 0 {
		factor = 1
	}
	s.floods[tenant] = factor
	s.applyFactors()
}

func (s *Sim) applyFactors() {
	for i, g := range s.gens {
		f := s.burst
		if ff, ok := s.floods[i]; ok {
			f *= ff
		}
		g.SetFactor(f)
	}
}

const simFar = time.Duration(math.MaxInt64)

// Run executes the event loop to quiescence and returns the summary.
func (s *Sim) Run() SimResult {
	for {
		arrT, arrG := s.nextArrival()
		retT := simFar
		if len(s.retries) > 0 {
			retT = s.retries[0].at
		}
		srvT := simFar
		if s.depth() > 0 {
			srvT = s.free
			if s.now > srvT {
				srvT = s.now
			}
		}
		// Fixed precedence on ties keeps the trace deterministic:
		// serve, then arrival, then retry.
		switch {
		case srvT <= arrT && srvT <= retT:
			if srvT == simFar {
				return s.finish()
			}
			s.advance(srvT)
			s.serveOne()
		case arrT <= retT:
			s.advance(arrT)
			s.arrive(arrG)
		default:
			s.advance(retT)
			s.retryOne()
		}
	}
}

// advance moves virtual time to t, firing the Tick hook for every
// TickEvery boundary crossed (chaos events land here).
func (s *Sim) advance(t time.Duration) {
	if t > s.now {
		s.now = t
	}
	step := int64(s.now / s.cfg.TickEvery)
	if step > s.tickStep {
		s.tickStep = step
		if s.cfg.Tick != nil {
			s.cfg.Tick(step)
		}
	}
}

// nextArrival peeks the earliest in-window arrival across tenants; ties
// break on the lower tenant index.
func (s *Sim) nextArrival() (time.Duration, *workload.ArrivalGen) {
	at, best := simFar, (*workload.ArrivalGen)(nil)
	for _, g := range s.gens {
		if p := g.Peek(); p < s.cfg.Duration && p < at {
			at, best = p, g
		}
	}
	return at, best
}

func (s *Sim) depth() int {
	if s.ctrl != nil {
		return s.ctrl.Depth()
	}
	return len(s.fifo)
}

// arrive consumes one fresh arrival and offers it for admission.
func (s *Sim) arrive(g *workload.ArrivalGen) {
	a := g.Next()
	s.sum.Offered++
	s.budget.Deposit()
	idx := s.nextIdx
	s.nextIdx++
	s.pend[idx] = &pendingOp{op: a.Op, tenant: a.Tenant, attempt: 1, arrive: s.now}
	s.offer(Request{Tenant: a.Tenant, Attempt: 1, Index: idx})
}

// offer runs one attempt through the admission edge (or the control
// run's unbounded FIFO, which never refuses).
func (s *Sim) offer(req Request) {
	if s.ctrl == nil {
		req.Arrive = s.now
		s.fifo = append(s.fifo, req)
		return
	}
	switch err := s.ctrl.Offer(s.now, req); err {
	case nil:
	case ErrQuotaExceeded:
		s.sum.ShedQuota++
		s.maybeRetry(req.Index)
	case ErrQueueFull:
		s.sum.ShedQueue++
		s.maybeRetry(req.Index)
	default:
		panic(err) // unknown tenant: a sim wiring bug
	}
}

// serveOne dequeues the weighted-fair winner and executes it, charging
// the shared capacity its full simulated latency — even when the result
// arrives past the deadline, which is exactly the wasted-work spiral the
// defense stack exists to prevent.
func (s *Sim) serveOne() {
	var req Request
	if s.ctrl != nil {
		r, shed, ok := s.ctrl.Next(s.now)
		for _, sh := range shed {
			s.sum.ShedSojourn++
			s.maybeRetry(sh.Index)
		}
		if !ok {
			return
		}
		req = r
	} else {
		req = s.fifo[0]
		s.fifo = s.fifo[1:]
	}
	p := s.pend[req.Index]
	if p == nil {
		return
	}
	s.sum.Admitted++
	node := s.pickNode()

	remaining := s.cfg.Deadline - (s.now - p.arrive)
	ctx := WithBudget(context.Background(), remaining)
	lat, err := s.cfg.Serve(ctx, p.op, node)
	if lat < 0 {
		lat = 0
	}
	s.free = s.now + lat
	done := s.free
	e2e := done - p.arrive

	s.hist.ObserveDuration(done, e2e)
	switch {
	case err == nil && e2e <= s.cfg.Deadline:
		s.breakers[node].Success()
		s.sum.Goodput++
		s.record(p)
		delete(s.pend, req.Index)
	case err == nil: // served, but past deadline: wasted work
		s.sum.Timeouts++
		s.breakers[node].Failure(done)
		s.maybeRetry(req.Index)
	default:
		if IsDeadline(err) {
			s.sum.Timeouts++
		} else {
			s.sum.Failures++
		}
		s.breakers[node].Failure(done)
		s.maybeRetry(req.Index)
	}
}

// pickNode round-robins coordinators, skipping nodes whose breaker is
// open; if every breaker refuses, the first candidate is used anyway so
// the client can never wedge itself.
func (s *Sim) pickNode() topology.NodeID {
	start := s.rrNode
	s.rrNode = (s.rrNode + 1) % len(s.breakers)
	for i := 0; i < len(s.breakers); i++ {
		n := (start + i) % len(s.breakers)
		if s.breakers[n].Allow(s.now) {
			return topology.NodeID(n)
		}
	}
	return topology.NodeID(start)
}

// maybeRetry schedules the next attempt for a failed one, if attempts
// remain and the retry budget allows. The deadline resets per attempt —
// what the budget bounds is the *aggregate* retry traffic.
func (s *Sim) maybeRetry(idx int64) {
	p := s.pend[idx]
	if p == nil {
		return
	}
	if p.attempt >= s.cfg.MaxAttempts {
		delete(s.pend, idx)
		return
	}
	if !s.budget.Withdraw() {
		s.sum.RetriesSuppressed++
		delete(s.pend, idx)
		return
	}
	backoff := s.cfg.Backoff << uint(p.attempt-1)
	p.attempt++
	s.sum.Retries++
	heap.Push(&s.retries, retryEvent{at: s.now + backoff, idx: idx})
}

// retryOne re-offers the due retry as a new attempt.
func (s *Sim) retryOne() {
	ev := heap.Pop(&s.retries).(retryEvent)
	p := s.pend[ev.idx]
	if p == nil {
		return
	}
	p.arrive = s.now
	s.offer(Request{Tenant: p.tenant, Attempt: p.attempt, Index: ev.idx})
}

// record folds a completed request into the determinism checksum.
func (s *Sim) record(p *pendingOp) {
	h := fnv.New64a()
	h.Write([]byte(p.op.Key))
	var b [8]byte
	v := uint64(p.op.Kind)<<32 | uint64(uint16(p.tenant))<<8 | uint64(uint8(p.attempt))
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	s.hash = s.hash*0x100000001b3 ^ h.Sum64()
}

func (s *Sim) finish() SimResult {
	s.sum.VirtualElapsed = s.now
	if s.free > s.sum.VirtualElapsed {
		s.sum.VirtualElapsed = s.free
	}
	if s.sum.VirtualElapsed > 0 {
		s.sum.GoodputPerSec = float64(s.sum.Goodput) / s.sum.VirtualElapsed.Seconds()
	}
	if s.budget != nil {
		s.sum.RetriesSuppressed = s.budget.Suppressed()
	}
	for _, b := range s.breakers {
		s.sum.BreakerOpens += b.Opens()
	}
	s.sum.AdmittedLatency = s.hist.Total()
	s.sum.Windows = s.hist.Series()
	s.sum.Checksum = s.hash
	return s.sum
}
