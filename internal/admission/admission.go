// Package admission is the overload-defense layer for the serving paths:
// per-tenant token-bucket quotas with weighted-fair queueing at the
// admission edge, CoDel-style load shedding that drops on queue *sojourn
// time* rather than queue length (with priority tiers: the lowest tier
// sheds first), client-side retry budgets, virtual-deadline propagation
// through contexts, and per-downstream circuit breakers that compose with
// the dataflow engine's three-strike node quarantine.
//
// Everything here is driven by a caller-supplied virtual clock (a
// time.Duration from the run epoch), the same convention the netsim cost
// model and the perf KV family use, so an overload run is a pure function
// of its seed: the open-loop simulator (sim.go) produces bit-identical
// goodput trajectories run-to-run, which is what lets the E-OVL
// experiment and the perf baselines gate on them.
//
// Why retry budgets: under overload, naive client retries convert a
// transient latency excursion into a metastable failure — timeouts beget
// retries, retries raise offered load, which begets more timeouts — and
// the system stays collapsed even after the original trigger passes. A
// retry budget (retries may spend at most a fixed fraction of the credit
// deposited by fresh requests) caps the amplification factor at 1+ratio,
// so shedding plus budgets keeps goodput flat past saturation. DESIGN.md
// "Admission control and load shedding" walks the full argument.
package admission

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Typed admission failures. Callers use errors.Is to distinguish a cheap
// edge rejection (quota, full queue) from a sojourn-time shed.
var (
	// ErrQuotaExceeded: the tenant's token bucket is empty; the request
	// was rejected at the admission edge before queueing (cheapest shed).
	ErrQuotaExceeded = errors.New("admission: tenant quota exceeded")
	// ErrQueueFull: the bounded admission queue is at capacity.
	ErrQueueFull = errors.New("admission: queue full")
	// ErrShed: dropped by the CoDel controller on queue sojourn time.
	ErrShed = errors.New("admission: shed on queue sojourn")
)

// TokenBucket is a virtual-time token bucket. Safe for concurrent use.
// A nil bucket or a non-positive rate admits everything.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Duration
}

// NewTokenBucket builds a bucket refilled at rate tokens/sec with the
// given burst depth (<= 0 defaults to rate/4, minimum 1). The bucket
// starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst <= 0 {
		burst = rate / 4
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow withdraws cost tokens (<= 0 means 1) at virtual time now,
// reporting whether the bucket held enough. Time never runs backward; a
// stale now just skips the refill.
func (b *TokenBucket) Allow(now time.Duration, cost float64) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	if cost <= 0 {
		cost = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if now > b.last {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*(now-b.last).Seconds())
		b.last = now
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return true
	}
	return false
}

// TenantQuota configures one tenant at the admission edge.
type TenantQuota struct {
	// ID labels the tenant in metrics and traces.
	ID string
	// Weight is the tenant's weighted-fair-queueing share (default 1).
	Weight float64
	// Rate is the admission quota in requests/sec; <= 0 disables the
	// tenant's token bucket (no edge rejection).
	Rate float64
	// Burst is the bucket depth (default Rate/4, minimum 1).
	Burst float64
	// Priority is the shedding tier: when the CoDel controller must
	// drop, it drops from the lowest-priority tenant with queued work.
	Priority int
}

// QuotasFor splits totalRate into per-tenant admission quotas
// proportional to each tenant's weight, carrying priorities through —
// the standard way an experiment derives quotas from a measured
// saturation rate.
func QuotasFor(ids []string, weights []float64, priorities []int, totalRate float64) []TenantQuota {
	sum := 0.0
	for _, w := range weights {
		if w <= 0 {
			w = 1
		}
		sum += w
	}
	out := make([]TenantQuota, len(ids))
	for i, id := range ids {
		w := weights[i]
		if w <= 0 {
			w = 1
		}
		out[i] = TenantQuota{
			ID:       id,
			Weight:   w,
			Rate:     totalRate * w / sum,
			Priority: priorities[i],
		}
	}
	return out
}

// Request is one unit of admitted work. The queue orders requests by
// weighted-fair virtual finish time; Index is an opaque caller handle
// (the simulator keys its pending-operation table with it).
type Request struct {
	Tenant   int
	Priority int
	// Arrive is the request's virtual arrival time at the queue.
	Arrive time.Duration
	// Cost in quota tokens and WFQ service units (<= 0 means 1).
	Cost float64
	// Attempt is 1 for a fresh request, 2+ for retries.
	Attempt int
	// Index is an opaque caller handle carried through shed/serve.
	Index int64

	vfin float64 // WFQ virtual finish stamp, assigned by Offer
}

// Config configures a Controller.
type Config struct {
	// Tenants defines the quota, weight and shedding tier per tenant;
	// required (requests carry a tenant index into this slice).
	Tenants []TenantQuota
	// Target is the CoDel sojourn-time target: as long as queue delay
	// stays under it, nothing is shed. Default 5ms.
	Target time.Duration
	// Interval is the CoDel control interval: sojourn must stay above
	// Target for a full Interval before dropping starts, and successive
	// drops are paced by Interval/sqrt(dropCount). Default 100ms.
	Interval time.Duration
	// MaxQueue hard-caps the total queued requests across tenants
	// (the backstop behind the sojourn controller). Default 4096.
	MaxQueue int
	// Reg receives admission counters (admission_admitted,
	// admission_shed{reason}, admission_queue_depth); nil disables.
	Reg *metrics.Registry
}

// Controller is the admission edge: per-tenant token buckets, one
// weighted-fair queue per tenant, and a CoDel sojourn controller that
// sheds from the lowest priority tier. Safe for concurrent use; the
// deterministic simulators drive it from one goroutine with a virtual
// clock.
type Controller struct {
	mu      sync.Mutex
	cfg     Config
	buckets []*TokenBucket
	queues  [][]Request
	vtime   float64   // WFQ virtual time
	vfin    []float64 // per-tenant last assigned virtual finish
	queued  int

	// CoDel state (sojourn controller).
	firstAbove time.Duration // when sojourn may first trigger dropping; 0 = below target
	dropNext   time.Duration
	dropCount  int
	dropping   bool

	admitted *metrics.Counter
	shed     *metrics.CounterVec // admission_shed{reason}
	depth    *metrics.Gauge
}

// NewController builds a controller; see Config for defaults.
func NewController(cfg Config) *Controller {
	if len(cfg.Tenants) == 0 {
		panic("admission: Config.Tenants is required")
	}
	if cfg.Target <= 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4096
	}
	c := &Controller{
		cfg:     cfg,
		buckets: make([]*TokenBucket, len(cfg.Tenants)),
		queues:  make([][]Request, len(cfg.Tenants)),
		vfin:    make([]float64, len(cfg.Tenants)),
	}
	for i, t := range cfg.Tenants {
		if t.Rate > 0 {
			c.buckets[i] = NewTokenBucket(t.Rate, t.Burst)
		}
	}
	if cfg.Reg != nil {
		c.admitted = cfg.Reg.Counter("admission_admitted")
		c.shed = cfg.Reg.CounterVec("admission_shed", "reason")
		c.depth = cfg.Reg.Gauge("admission_queue_depth")
	}
	return c
}

// Offer presents a request at virtual time now. It returns nil when the
// request was queued, ErrQuotaExceeded when the tenant bucket rejected
// it, or ErrQueueFull when the bounded queue is at capacity.
func (c *Controller) Offer(now time.Duration, req Request) error {
	if req.Tenant < 0 || req.Tenant >= len(c.queues) {
		return fmt.Errorf("admission: unknown tenant %d", req.Tenant)
	}
	if req.Cost <= 0 {
		req.Cost = 1
	}
	req.Arrive = now
	req.Priority = c.cfg.Tenants[req.Tenant].Priority
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.buckets[req.Tenant].Allow(now, req.Cost) {
		c.shed.With("quota").Inc()
		return ErrQuotaExceeded
	}
	if c.queued >= c.cfg.MaxQueue {
		c.shed.With("full").Inc()
		return ErrQueueFull
	}
	w := c.cfg.Tenants[req.Tenant].Weight
	if w <= 0 {
		w = 1
	}
	start := math.Max(c.vtime, c.vfin[req.Tenant])
	req.vfin = start + req.Cost/w
	c.vfin[req.Tenant] = req.vfin
	c.queues[req.Tenant] = append(c.queues[req.Tenant], req)
	c.queued++
	c.depth.Set(int64(c.queued))
	return nil
}

// Next dequeues the weighted-fair winner at virtual time now. Requests
// the CoDel controller sheds on the way (sojourn above Target for a full
// Interval, paced by the control law, pulled from the lowest priority
// tier) are returned in shed so the caller can account for them and
// consult its retry budget. ok is false when the queue is drained.
func (c *Controller) Next(now time.Duration) (req Request, shed []Request, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		t := c.minVfinTenant()
		if t < 0 {
			// Idle queue: the sojourn controller resets.
			c.firstAbove = 0
			c.dropping = false
			return Request{}, shed, false
		}
		head := c.queues[t][0]
		if c.codelDrop(now, now-head.Arrive) {
			victim := c.lowestPriorityTenant()
			shed = append(shed, c.popHead(victim))
			c.shed.With("sojourn").Inc()
			continue
		}
		c.vtime = head.vfin
		c.popHead(t)
		c.admitted.Inc()
		return head, shed, true
	}
}

// Depth returns the total queued request count.
func (c *Controller) Depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// minVfinTenant returns the tenant whose head request has the smallest
// virtual finish time, or -1 when every queue is empty. Ties break on
// the lower tenant index, keeping dequeue order deterministic.
func (c *Controller) minVfinTenant() int {
	best := -1
	var bestFin float64
	for t, q := range c.queues {
		if len(q) == 0 {
			continue
		}
		if best < 0 || q[0].vfin < bestFin {
			best, bestFin = t, q[0].vfin
		}
	}
	return best
}

// lowestPriorityTenant picks the shedding victim: the non-empty queue in
// the lowest priority tier; within the tier, the one whose head has
// waited longest (the request most likely past usefulness anyway).
func (c *Controller) lowestPriorityTenant() int {
	type cand struct {
		tenant, prio int
		arrive       time.Duration
	}
	var cands []cand
	for t, q := range c.queues {
		if len(q) == 0 {
			continue
		}
		cands = append(cands, cand{t, c.cfg.Tenants[t].Priority, q[0].Arrive})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].prio != cands[j].prio {
			return cands[i].prio < cands[j].prio
		}
		if cands[i].arrive != cands[j].arrive {
			return cands[i].arrive < cands[j].arrive
		}
		return cands[i].tenant < cands[j].tenant
	})
	return cands[0].tenant
}

func (c *Controller) popHead(t int) Request {
	req := c.queues[t][0]
	c.queues[t] = c.queues[t][1:]
	c.queued--
	c.depth.Set(int64(c.queued))
	return req
}

// codelDrop is the CoDel decision for a dequeue at virtual time now with
// the given head sojourn. Below target (or with a single queued request)
// the controller stays or returns to the quiescent state; above target
// for a full interval it enters dropping, pacing successive drops at
// Interval/sqrt(dropCount).
func (c *Controller) codelDrop(now, sojourn time.Duration) bool {
	if sojourn < c.cfg.Target || c.queued <= 1 {
		c.firstAbove = 0
		c.dropping = false
		return false
	}
	if !c.dropping {
		if c.firstAbove == 0 {
			c.firstAbove = now + c.cfg.Interval
			return false
		}
		if now < c.firstAbove {
			return false
		}
		c.dropping = true
		c.dropCount = 1
		c.dropNext = c.controlLaw(now)
		return true
	}
	if now >= c.dropNext {
		c.dropCount++
		c.dropNext = c.controlLaw(c.dropNext)
		return true
	}
	return false
}

func (c *Controller) controlLaw(t time.Duration) time.Duration {
	return t + time.Duration(float64(c.cfg.Interval)/math.Sqrt(float64(c.dropCount)))
}
