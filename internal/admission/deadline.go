// Virtual-deadline propagation and client-side retry budgets. Deadlines
// here are *budgets of simulated time*: the serving paths (kvstore quorum
// ops, stream sources) compute their latency from the netsim cost model,
// so a wall-clock context deadline is meaningless — instead the remaining
// virtual budget rides the context, each layer subtracts what it spends,
// and an operation whose simulated cost exceeds the budget fails with the
// callee's typed deadline error instead of queueing uselessly.
package admission

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// ErrDeadline is the one shared deadline sentinel: every layer's typed
// deadline error wraps it (kvstore.ErrDeadlineExceeded,
// stream.ErrRunDeadline, core.ErrDeadlineExceeded), so callers can
// errors.Is a timeout apart from a quorum failure regardless of which
// layer gave up first.
var ErrDeadline = errors.New("admission: virtual deadline exceeded")

// IsDeadline reports whether err is (or wraps) a virtual-deadline
// overrun from any layer.
func IsDeadline(err error) bool { return errors.Is(err, ErrDeadline) }

type budgetKey struct{}

// WithBudget attaches the remaining virtual-time budget to ctx. A layer
// that spends simulated time d passes WithBudget(ctx, remaining-d) down;
// a layer whose own simulated cost exceeds the budget must fail with its
// typed deadline error rather than doing the work.
func WithBudget(ctx context.Context, remaining time.Duration) context.Context {
	return context.WithValue(ctx, budgetKey{}, remaining)
}

// Budget returns the remaining virtual-time budget carried by ctx, and
// whether one was set.
func Budget(ctx context.Context) (time.Duration, bool) {
	d, ok := ctx.Value(budgetKey{}).(time.Duration)
	return d, ok
}

// RetryBudget caps client retries at a fixed fraction of fresh traffic:
// every first-attempt request deposits `ratio` credits (up to a cap) and
// every retry withdraws one whole credit. Under overload the deposit
// stream shrinks as requests fail, so the retry stream shrinks with it —
// the amplification factor is bounded by 1+ratio and a latency excursion
// cannot feed itself into metastable collapse. A nil *RetryBudget allows
// every retry (the control-run behaviour). Safe for concurrent use.
type RetryBudget struct {
	mu         sync.Mutex
	ratio      float64
	cap        float64
	credit     float64
	suppressed int64
}

// NewRetryBudget builds a budget allowing retries for ratio of fresh
// requests (e.g. 0.1 = 10%). The credit cap is max(10, 100*ratio), so a
// quiet period cannot bank an unbounded retry burst. Starts with one
// credit so an isolated failure may always retry once.
func NewRetryBudget(ratio float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	c := math.Max(10, 100*ratio)
	return &RetryBudget{ratio: ratio, cap: c, credit: 1}
}

// Deposit records one fresh (first-attempt) request.
func (b *RetryBudget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.credit = math.Min(b.cap, b.credit+b.ratio)
	b.mu.Unlock()
}

// Withdraw spends one retry credit, reporting whether the retry may
// proceed. A nil budget always allows.
func (b *RetryBudget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.credit >= 1 {
		b.credit--
		return true
	}
	b.suppressed++
	return false
}

// Suppressed returns how many retries the budget refused.
func (b *RetryBudget) Suppressed() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.suppressed
}
