package admission

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTokenBucket(t *testing.T) {
	b := NewTokenBucket(100, 10) // 100/s, depth 10, starts full
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		if !b.Allow(now, 1) {
			t.Fatalf("initial burst token %d refused", i)
		}
	}
	if b.Allow(now, 1) {
		t.Fatal("empty bucket admitted a request")
	}
	// 50ms at 100/s refills 5 tokens.
	now = 50 * time.Millisecond
	for i := 0; i < 5; i++ {
		if !b.Allow(now, 1) {
			t.Fatalf("refilled token %d refused", i)
		}
	}
	if b.Allow(now, 1) {
		t.Fatal("bucket over-refilled")
	}
	// Time running backward must not mint tokens.
	if b.Allow(now-40*time.Millisecond, 1) {
		t.Fatal("stale clock minted tokens")
	}
	var nilBucket *TokenBucket
	if !nilBucket.Allow(0, 1) {
		t.Fatal("nil bucket must admit everything")
	}
}

func TestQuotasFor(t *testing.T) {
	q := QuotasFor([]string{"a", "b", "c"}, []float64{2, 1, 1}, []int{1, 0, 0}, 1000)
	if q[0].Rate != 500 || q[1].Rate != 250 || q[2].Rate != 250 {
		t.Fatalf("weighted split wrong: %+v", q)
	}
	if q[0].Priority != 1 || q[1].Priority != 0 {
		t.Fatalf("priorities not carried: %+v", q)
	}
}

func TestWFQWeightedShare(t *testing.T) {
	c := NewController(Config{Tenants: []TenantQuota{
		{ID: "heavy", Weight: 2},
		{ID: "light", Weight: 1},
	}})
	for i := 0; i < 30; i++ {
		for tenant := 0; tenant < 2; tenant++ {
			if err := c.Offer(0, Request{Tenant: tenant}); err != nil {
				t.Fatalf("offer: %v", err)
			}
		}
	}
	counts := [2]int{}
	for i := 0; i < 15; i++ {
		req, shed, ok := c.Next(time.Millisecond)
		if !ok || len(shed) != 0 {
			t.Fatalf("dequeue %d: ok=%v shed=%d", i, ok, len(shed))
		}
		counts[req.Tenant]++
	}
	// Weight 2:1 over a backlogged queue must yield a 2:1 service split.
	if counts[0] != 10 || counts[1] != 5 {
		t.Fatalf("WFQ split = %v, want [10 5]", counts)
	}
}

func TestQueueFullBackstop(t *testing.T) {
	c := NewController(Config{
		Tenants:  []TenantQuota{{ID: "t"}},
		MaxQueue: 4,
	})
	for i := 0; i < 4; i++ {
		if err := c.Offer(0, Request{}); err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
	}
	if err := c.Offer(0, Request{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("5th offer: got %v, want ErrQueueFull", err)
	}
	if err := c.Offer(0, Request{Tenant: 7}); err == nil {
		t.Fatal("unknown tenant admitted")
	}
}

func TestCoDelShedsOnSojourn(t *testing.T) {
	c := NewController(Config{
		Tenants:  []TenantQuota{{ID: "t"}},
		Target:   5 * time.Millisecond,
		Interval: 20 * time.Millisecond,
	})
	// Arrivals at 1/ms, drain at 1/2ms: sojourn grows without bound
	// unless the controller sheds.
	var admitted, shed int
	now := time.Duration(0)
	for i := 0; i < 400; i++ {
		now = time.Duration(i) * time.Millisecond
		if err := c.Offer(now, Request{Index: int64(i)}); err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
		if i%2 == 1 {
			_, sh, ok := c.Next(now)
			if ok {
				admitted++
			}
			shed += len(sh)
		}
	}
	if shed == 0 {
		t.Fatal("overloaded queue shed nothing")
	}
	if admitted == 0 {
		t.Fatal("controller shed everything")
	}

	// Under-loaded traffic (drain faster than arrivals) sheds nothing.
	c2 := NewController(Config{Tenants: []TenantQuota{{ID: "t"}}})
	for i := 0; i < 200; i++ {
		now := time.Duration(i) * time.Millisecond
		if err := c2.Offer(now, Request{}); err != nil {
			t.Fatalf("offer: %v", err)
		}
		if _, sh, _ := c2.Next(now + time.Millisecond); len(sh) != 0 {
			t.Fatalf("under-loaded queue shed %d at %v", len(sh), now)
		}
	}
}

func TestShedsLowestPriorityFirst(t *testing.T) {
	c := NewController(Config{
		Tenants: []TenantQuota{
			{ID: "batch", Priority: 0},
			{ID: "interactive", Priority: 1},
		},
		Target:   2 * time.Millisecond,
		Interval: 10 * time.Millisecond,
	})
	for i := 0; i < 50; i++ {
		now := time.Duration(i) * time.Millisecond
		if err := c.Offer(now, Request{Tenant: i % 2}); err != nil {
			t.Fatalf("offer: %v", err)
		}
	}
	// Dequeue far in the future: sojourn is way above target, so the
	// controller enters dropping and victims must all be tier-0 while
	// the batch tenant still has queued work.
	var sheds []Request
	batchQueued := 25
	for i := 0; i < 20; i++ {
		now := 200*time.Millisecond + time.Duration(i)*5*time.Millisecond
		req, sh, ok := c.Next(now)
		if ok && req.Tenant == 0 {
			batchQueued--
		}
		for _, s := range sh {
			if s.Tenant == 0 {
				batchQueued--
			}
			sheds = append(sheds, s)
		}
	}
	if len(sheds) == 0 {
		t.Fatal("expected sojourn sheds")
	}
	for _, s := range sheds {
		if s.Tenant != 0 && batchQueued > 0 {
			t.Fatalf("shed tenant %d (priority %d) while batch work was queued", s.Tenant, s.Priority)
		}
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(0.1)
	// Starts with one credit: a single isolated failure may retry.
	if !b.Withdraw() {
		t.Fatal("initial credit missing")
	}
	if b.Withdraw() {
		t.Fatal("empty budget allowed a retry")
	}
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	allowed := 0
	for i := 0; i < 50; i++ {
		if b.Withdraw() {
			allowed++
		}
	}
	// 100 deposits at ratio 0.1 bank ~10 credits (float accumulation
	// may round one off).
	if allowed < 9 || allowed > 10 {
		t.Fatalf("100 deposits allowed %d retries, want ~10", allowed)
	}
	if got := b.Suppressed(); got != int64(50-allowed)+1 {
		t.Fatalf("suppressed = %d, want %d", got, 50-allowed+1)
	}
	// The cap bounds banked credit from a quiet period.
	for i := 0; i < 10000; i++ {
		b.Deposit()
	}
	burst := 0
	for b.Withdraw() {
		burst++
	}
	if burst > 10 {
		t.Fatalf("cap leak: %d retries from banked credit", burst)
	}
	var nilBudget *RetryBudget
	if !nilBudget.Withdraw() {
		t.Fatal("nil budget must always allow")
	}
	nilBudget.Deposit() // must not panic
}

func TestBudgetContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := Budget(ctx); ok {
		t.Fatal("bare context reported a budget")
	}
	ctx = WithBudget(ctx, 30*time.Millisecond)
	d, ok := Budget(ctx)
	if !ok || d != 30*time.Millisecond {
		t.Fatalf("Budget = %v,%v", d, ok)
	}
	wrapped := fmt.Errorf("kvstore: get: %w", ErrDeadline)
	if !IsDeadline(wrapped) {
		t.Fatal("IsDeadline missed a wrapped sentinel")
	}
	if IsDeadline(errors.New("other")) {
		t.Fatal("IsDeadline false positive")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 100 * time.Millisecond})
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		b.Failure(now)
	}
	if b.State() != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.Success()
	b.Failure(now) // success must have cleared the strike count
	b.Failure(now)
	if b.State() != BreakerClosed {
		t.Fatal("strikes not cleared by success")
	}
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatal("did not trip at threshold")
	}
	if b.Allow(50 * time.Millisecond) {
		t.Fatal("open breaker admitted during cooldown")
	}
	// Cooldown expiry: exactly one probe.
	if !b.Allow(100 * time.Millisecond) {
		t.Fatal("half-open refused the probe")
	}
	if b.Allow(100 * time.Millisecond) {
		t.Fatal("half-open admitted a second concurrent probe")
	}
	b.Failure(100 * time.Millisecond) // probe fails: re-open immediately
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	if !b.Allow(200 * time.Millisecond) {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow(200*time.Millisecond) {
		t.Fatal("successful probe did not close")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

func TestBreakerSet(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{Threshold: 2, CooldownTicks: 3})
	for i := 0; i < 2; i++ {
		s.ReportFailure(4)
	}
	if s.Allow(4) {
		t.Fatal("node 4 admitted after trip")
	}
	if !s.Allow(7) {
		t.Fatal("unrelated node refused")
	}
	if s.NodeState(4) != BreakerOpen {
		t.Fatalf("node 4 state = %v", s.NodeState(4))
	}
	for i := 0; i < 3; i++ {
		s.Tick()
	}
	if !s.Allow(4) {
		t.Fatal("cooled-down node refused the probe")
	}
	s.ReportSuccess(4)
	if s.NodeState(4) != BreakerClosed {
		t.Fatal("probe success did not close")
	}
	if s.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", s.Opens())
	}
}
