// Circuit breakers for per-node downstream calls. Two granularities:
// Breaker is a single virtual-time breaker (the overload simulator keeps
// one per KV coordinator node); BreakerSet is a wave-ticked per-node set
// implementing the dataflow engine's core.NodeBreaker hook, where it
// composes with the three-strike quarantine — the breaker reacts within
// a wave and recovers through half-open probes, while quarantine is the
// slower wave-count sentence for repeat offenders. Both layers consult
// the same success/failure stream, so a node that trips the breaker and
// keeps failing its probes accumulates quarantine strikes too.
package admission

import (
	"sync"
	"time"

	"repro/internal/topology"
)

// BreakerState is the classic three-state breaker lifecycle.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: calls flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are refused until the cooldown expires.
	BreakerOpen
	// BreakerHalfOpen: one probe call is allowed through; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig configures a Breaker or BreakerSet.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip the breaker.
	// Default 5.
	Threshold int
	// Cooldown is how long an open breaker refuses calls before
	// half-opening (virtual time for Breaker; ignored by BreakerSet,
	// which uses CooldownTicks). Default 100ms.
	Cooldown time.Duration
	// CooldownTicks is the BreakerSet cooldown in Tick calls (scheduling
	// waves). Default 8, matching the engine's QuarantineWaves default.
	CooldownTicks int64
}

func (c *BreakerConfig) fill() {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 8
	}
}

// Breaker is a virtual-time circuit breaker. Safe for concurrent use;
// the deterministic simulators drive it from one goroutine.
type Breaker struct {
	mu      sync.Mutex
	cfg     BreakerConfig
	state   BreakerState
	fails   int
	until   time.Duration // open expiry (virtual)
	probing bool
	opens   int64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fill()
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed at virtual time now. An open
// breaker half-opens once its cooldown expires, admitting exactly one
// probe until Success or Failure settles it.
func (b *Breaker) Allow(now time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now < b.until {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = false
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// Success records a successful call: the breaker closes and strikes
// clear.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed (or timed-out) call at virtual time now. A
// half-open probe failure re-opens immediately; a closed breaker trips
// after Threshold consecutive failures.
func (b *Breaker) Failure(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.trip(now)
		return
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.cfg.Threshold {
		b.trip(now)
	}
}

func (b *Breaker) trip(now time.Duration) {
	b.state = BreakerOpen
	b.until = now + b.cfg.Cooldown
	b.fails = 0
	b.probing = false
	b.opens++
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// BreakerSet is a per-node breaker set paced by Tick calls (the engine
// ticks it once per scheduling wave). It implements core.NodeBreaker:
// placement skips nodes whose breaker is open, task outcomes feed the
// breakers, and the engine's quarantine remains the outer, slower layer.
// Safe for concurrent use.
type BreakerSet struct {
	mu    sync.Mutex
	cfg   BreakerConfig
	tick  int64
	nodes map[topology.NodeID]*nodeBreaker
	opens int64
}

type nodeBreaker struct {
	state   BreakerState
	fails   int
	until   int64 // open expiry tick
	probing bool
}

// NewBreakerSet builds an empty set; node breakers materialize on first
// report.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	cfg.fill()
	return &BreakerSet{cfg: cfg, nodes: map[topology.NodeID]*nodeBreaker{}}
}

// Tick advances breaker time by one scheduling wave.
func (s *BreakerSet) Tick() {
	s.mu.Lock()
	s.tick++
	s.mu.Unlock()
}

func (s *BreakerSet) node(n topology.NodeID) *nodeBreaker {
	nb := s.nodes[n]
	if nb == nil {
		nb = &nodeBreaker{}
		s.nodes[n] = nb
	}
	return nb
}

// Allow implements core.NodeBreaker: whether placement may use node n.
func (s *BreakerSet) Allow(n topology.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	nb := s.node(n)
	switch nb.state {
	case BreakerOpen:
		if s.tick < nb.until {
			return false
		}
		nb.state = BreakerHalfOpen
		nb.probing = false
		fallthrough
	case BreakerHalfOpen:
		if nb.probing {
			return false
		}
		nb.probing = true
		return true
	default:
		return true
	}
}

// ReportSuccess implements core.NodeBreaker.
func (s *BreakerSet) ReportSuccess(n topology.NodeID) {
	s.mu.Lock()
	nb := s.node(n)
	nb.state = BreakerClosed
	nb.fails = 0
	nb.probing = false
	s.mu.Unlock()
}

// ReportFailure implements core.NodeBreaker.
func (s *BreakerSet) ReportFailure(n topology.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nb := s.node(n)
	if nb.state == BreakerHalfOpen {
		s.tripLocked(nb)
		return
	}
	nb.fails++
	if nb.state == BreakerClosed && nb.fails >= s.cfg.Threshold {
		s.tripLocked(nb)
	}
}

func (s *BreakerSet) tripLocked(nb *nodeBreaker) {
	nb.state = BreakerOpen
	nb.until = s.tick + s.cfg.CooldownTicks
	nb.fails = 0
	nb.probing = false
	s.opens++
}

// Opens returns how many node breakers have tripped in total.
func (s *BreakerSet) Opens() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opens
}

// NodeState returns node n's breaker state (closed for unseen nodes).
func (s *BreakerSet) NodeState(n topology.NodeID) BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nb := s.nodes[n]; nb != nil {
		return nb.state
	}
	return BreakerClosed
}
