package consensus

import (
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count returns to (or below) the
// baseline, failing the test on timeout — the leak check following the
// admission/stream race-test pattern. Raft nodes are single-threaded by
// design; this guards against helpers accidentally growing goroutines.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d alive, baseline %d", runtime.NumGoroutine(), baseline)
}

// isolateInbound blocks every link toward victim while leaving the
// victim's outbound links open — the classic gray failure: the node hears
// nothing, but its (increasingly desperate) campaigns still get out.
func isolateInbound(c *Cluster, victim, n int) {
	for i := 0; i < n; i++ {
		if i != victim {
			c.CutLink(i, victim)
		}
	}
}

// TestOneWayCutLivelockControl documents the failure mode the hardening
// exists for: under vanilla Raft, a node with only its inbound links cut
// keeps campaigning at ever higher terms, and each campaign that escapes
// deposes the healthy leader even though a connected 4/5 majority exists
// the whole time.
func TestOneWayCutLivelockControl(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := NewCluster(5, 1)
	if l := c.RunUntilLeader(200); l < 0 {
		t.Fatal("no initial leader")
	}
	if !c.TransferLeadership(0, 50) {
		t.Fatal("could not rig leader to node 0")
	}
	bootTerm := c.MaxTerm()
	isolateInbound(c, 4, 5)

	depositions := 0
	failed := 0
	for i := 0; i < 300; i++ {
		c.Tick()
		if !c.HasConnectedMajority() {
			t.Fatal("one-way cut must leave a connected majority")
		}
		if !c.Propose([]byte{byte(i)}) {
			failed++
		}
		if c.Node(0).State() != Leader {
			depositions++
		}
	}
	if c.MaxTerm() < bootTerm+5 {
		t.Fatalf("control must show term inflation: boot %d, now %d", bootTerm, c.MaxTerm())
	}
	if depositions == 0 && failed == 0 {
		t.Fatal("control must show leader depositions or failed proposals")
	}
	waitGoroutines(t, baseline)
}

// TestOneWayCutDefended runs the identical fault against the hardened
// cluster: PreVote keeps the isolated node from inflating terms, the
// leader is never deposed, and every proposal commits.
func TestOneWayCutDefended(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := NewHardenedCluster(5, 1)
	if l := c.RunUntilLeader(200); l < 0 {
		t.Fatal("no initial leader")
	}
	if !c.TransferLeadership(0, 50) {
		t.Fatal("could not rig leader to node 0")
	}
	bootTerm := c.MaxTerm()
	isolateInbound(c, 4, 5)

	for i := 0; i < 300; i++ {
		c.Tick()
		if c.Node(0).State() != Leader {
			t.Fatalf("tick %d: hardened leader deposed by isolated node", i)
		}
		if !c.Propose([]byte{byte(i)}) {
			t.Fatalf("tick %d: proposal failed despite connected majority", i)
		}
	}
	if got := c.MaxTerm(); got > bootTerm+1 {
		t.Fatalf("PreVote must bound terms: boot %d, now %d", bootTerm, got)
	}
	// Heal: the isolated node rejoins without deposing anyone.
	c.Heal()
	for i := 0; i < 50; i++ {
		c.Tick()
		if c.Node(0).State() != Leader {
			t.Fatalf("rejoin tick %d: healed node deposed the leader", i)
		}
	}
	if c.Node(4).Leader() != 0 {
		t.Fatal("healed node must re-adopt the leader")
	}
	waitGoroutines(t, baseline)
}

// TestCheckQuorumStepDown cuts a leader off from the majority (keeping one
// follower — a partial partition, not a clean split) and requires the
// stale leader to abdicate within a CheckQuorum window while the majority
// side elects a usable replacement.
func TestCheckQuorumStepDown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := NewHardenedCluster(5, 7)
	if l := c.RunUntilLeader(200); l < 0 {
		t.Fatal("no initial leader")
	}
	if !c.TransferLeadership(0, 50) {
		t.Fatal("could not rig leader to node 0")
	}
	bootTerm := c.MaxTerm()
	// Leader 0 keeps follower 1, but the {0,1} island is cut from the
	// {2,3,4} majority in both directions. No higher-term message can ever
	// reach node 0, so CheckQuorum is the only mechanism that can stop it
	// serving stale leader reads.
	for _, inside := range []int{0, 1} {
		for _, outside := range []int{2, 3, 4} {
			c.CutLink(inside, outside)
			c.CutLink(outside, inside)
		}
	}
	if len(c.StaleLeaders()) != 1 {
		t.Fatalf("node 0 must be a stale leader, got %v", c.StaleLeaders())
	}

	steppedDownAt := -1
	for i := 0; i < 200; i++ {
		c.Tick()
		if steppedDownAt < 0 && c.Node(0).State() != Leader {
			steppedDownAt = i
		}
	}
	if steppedDownAt < 0 {
		t.Fatal("stale leader never stepped down")
	}
	if steppedDownAt > 30 {
		t.Fatalf("step-down took %d ticks; must land within ~2 CheckQuorum windows", steppedDownAt)
	}
	if c.Node(0).StepDowns() != 1 {
		t.Fatalf("StepDowns = %d, want 1", c.Node(0).StepDowns())
	}
	// The minority island cannot reach prevote quorum: no term inflation.
	if c.Node(0).Term() != bootTerm || c.Node(1).Term() != bootTerm {
		t.Fatalf("island inflated terms: node0 %d node1 %d, boot %d",
			c.Node(0).Term(), c.Node(1).Term(), bootTerm)
	}
	if len(c.StaleLeaders()) != 0 {
		t.Fatalf("stale leaders remain: %v", c.StaleLeaders())
	}
	l := c.Leader()
	if l < 1 {
		t.Fatalf("majority side must have a leader, got %d", l)
	}
	if !c.Propose([]byte("after-stepdown")) {
		t.Fatal("majority-side leader must accept proposals")
	}
	// Heal: old leader rejoins as follower of the new leader.
	c.Heal()
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if c.Node(0).State() == Leader {
		t.Fatal("deposed leader must not reclaim leadership on heal")
	}
	waitGoroutines(t, baseline)
}

// TestForceTransferPiercesLease: deliberate leadership transfer must keep
// working on a hardened cluster — TimeoutNow campaigns carry Force, which
// bypasses PreVote and the followers' leader leases.
func TestForceTransferPiercesLease(t *testing.T) {
	c := NewHardenedCluster(5, 42)
	if l := c.RunUntilLeader(200); l < 0 {
		t.Fatal("no initial leader")
	}
	for _, target := range []int{2, 0, 3} {
		if !c.TransferLeadership(target, 50) {
			t.Fatalf("transfer to %d failed under hardening", target)
		}
		if !c.Propose([]byte("x")) {
			t.Fatalf("proposal after transfer to %d failed", target)
		}
	}
}

// TestConnectivityProbes covers the availability bookkeeping helpers.
func TestConnectivityProbes(t *testing.T) {
	c := NewCluster(5, 3)
	if !c.HasConnectedMajority() {
		t.Fatal("clean cluster has a connected majority")
	}
	// Pairwise cuts leaving no node with bidirectional quorum links:
	// split {0,1} vs {2,3,4} and cut 2<->3, 2<->4, 3<->4 — every node
	// ends with at most one bidirectional peer.
	c.Partition([]int{0, 1}, []int{2, 3, 4})
	c.CutLink(2, 3)
	c.CutLink(3, 2)
	c.CutLink(2, 4)
	c.CutLink(4, 2)
	c.CutLink(3, 4)
	c.CutLink(4, 3)
	if c.HasConnectedMajority() {
		t.Fatal("no quorum should be connected")
	}
	c.Heal()
	if !c.HasConnectedMajority() {
		t.Fatal("heal must restore the connected majority")
	}
	// A one-way cut alone does not break the majority.
	c.CutLink(0, 1)
	if !c.HasConnectedMajority() {
		t.Fatal("single directed cut must not break the majority")
	}
	c.HealLink(0, 1)
	if c.cut != nil {
		t.Fatal("HealLink must clear the empty cut set")
	}
}

// TestDeterministicGrayReplay: the same (faults, seed) must produce
// bit-identical trajectories — the property every E-GRAY verdict and the
// avail perf family lean on.
func TestDeterministicGrayReplay(t *testing.T) {
	run := func() (uint64, uint64, int) {
		c := NewHardenedCluster(5, 11)
		c.RunUntilLeader(200)
		c.TransferLeadership(0, 50)
		isolateInbound(c, 4, 5)
		ok := 0
		for i := 0; i < 150; i++ {
			c.Tick()
			if c.Propose([]byte{byte(i)}) {
				ok++
			}
		}
		return c.MaxTerm(), c.StepDowns(), ok
	}
	t1, s1, ok1 := run()
	t2, s2, ok2 := run()
	if t1 != t2 || s1 != s2 || ok1 != ok2 {
		t.Fatalf("replay diverged: (%d,%d,%d) vs (%d,%d,%d)", t1, s1, ok1, t2, s2, ok2)
	}
}
