package consensus

import (
	"testing"

	"repro/internal/metrics"
)

// A single-node cluster exercises the whole counter set deterministically:
// it wins its election immediately, commits proposals alone, and can
// compact its own log.
func TestMetricsSingleNodeLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	n := NewNode(Config{ID: 0, Peers: []int{0}, Seed: 3, Metrics: reg})

	for i := 0; i < 100 && n.State() != Leader; i++ {
		n.Tick()
	}
	if n.State() != Leader {
		t.Fatal("single node never won its election")
	}
	if got := reg.Counter("raft_elections_started").Value(); got != 1 {
		t.Fatalf("elections counter = %d, want 1", got)
	}
	if got := reg.Counter("raft_leaderships_won").Value(); got != 1 {
		t.Fatalf("leaderships counter = %d, want 1", got)
	}
	if got := reg.Gauge("raft_term").Value(); got != int64(n.Term()) {
		t.Fatalf("term gauge = %d, want %d", got, n.Term())
	}

	idx, _, ok := n.Propose([]byte("x"))
	if !ok {
		t.Fatal("leader rejected proposal")
	}
	committed := n.CommittedEntries()
	if len(committed) != 1 {
		t.Fatalf("committed %d entries, want 1", len(committed))
	}
	if got := reg.Counter("raft_entries_committed").Value(); got != 1 {
		t.Fatalf("committed counter = %d, want 1", got)
	}

	if err := n.Compact(idx, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("raft_compactions").Value(); got != 1 {
		t.Fatalf("compactions counter = %d, want 1", got)
	}
}

func TestSnapshotInstallCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	follower := NewNode(Config{ID: 1, Peers: []int{0, 1}, Metrics: reg})
	follower.Step(Message{
		Type: MsgSnap, From: 0, To: 1, Term: 1,
		SnapIndex: 5, SnapTerm: 1, SnapData: []byte("state"),
	})
	if got := reg.Counter("raft_snapshots_installed").Value(); got != 1 {
		t.Fatalf("snapshots counter = %d, want 1", got)
	}
}
