package consensus

import (
	"sort"
)

// Cluster is a deterministic in-process test/measurement harness: it owns a
// set of nodes, carries their messages, and can crash nodes or partition
// the network. Message delivery happens in "rounds": each round every
// in-flight message is handed to its destination and the responses join the
// next round. Rounds map directly onto network round trips, which is how
// experiment E12 converts protocol behaviour into commit latency under a
// transport model.
type Cluster struct {
	nodes   map[int]*Node
	crashed map[int]bool
	inbox   []Message
	applied map[int][]Entry

	// partition: nil means fully connected; otherwise group index per node,
	// and messages cross groups only if allowed.
	group map[int]int

	// cut holds directed {from, to} link cuts — the gray-failure layer:
	// one-way cuts and non-transitive partial partitions that the group
	// partition above cannot express.
	cut map[[2]int]bool

	// Rounds counts delivery rounds executed (for latency accounting).
	Rounds int
	// MessagesDelivered counts total messages handed to nodes.
	MessagesDelivered int
}

// NewCluster builds n nodes with IDs 0..n-1 running vanilla Raft (no
// PreVote/CheckQuorum) — the experimental control for gray-failure runs.
func NewCluster(n int, seed uint64) *Cluster {
	return newCluster(n, seed, false)
}

// NewHardenedCluster builds n nodes with the liveness hardening enabled:
// PreVote, CheckQuorum leases and randomized election backoff.
func NewHardenedCluster(n int, seed uint64) *Cluster {
	return newCluster(n, seed, true)
}

func newCluster(n int, seed uint64, hardened bool) *Cluster {
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	c := &Cluster{
		nodes:   map[int]*Node{},
		crashed: map[int]bool{},
		applied: map[int][]Entry{},
	}
	for i := 0; i < n; i++ {
		c.nodes[i] = NewNode(Config{
			ID: i, Peers: peers, Seed: seed,
			PreVote: hardened, CheckQuorum: hardened,
		})
	}
	return c
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Applied returns the entries node id has applied, in order.
func (c *Cluster) Applied(id int) []Entry { return c.applied[id] }

// ids returns node IDs in deterministic order.
func (c *Cluster) ids() []int {
	out := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// blocked reports whether a message from -> to is currently undeliverable.
// Directed cuts and group partitions compose: either layer blocks.
func (c *Cluster) blocked(from, to int) bool {
	if c.crashed[from] || c.crashed[to] {
		return true
	}
	if c.cut != nil && c.cut[[2]int{from, to}] {
		return true
	}
	if c.group == nil {
		return false
	}
	return c.group[from] != c.group[to]
}

// send enqueues messages for the next delivery round.
func (c *Cluster) send(msgs []Message) {
	c.inbox = append(c.inbox, msgs...)
}

// Tick advances logical time one unit on every live node, then runs
// delivery rounds until the network is quiet.
func (c *Cluster) Tick() {
	for _, id := range c.ids() {
		if c.crashed[id] {
			continue
		}
		c.send(c.nodes[id].Tick())
	}
	c.drain()
}

// drain delivers message rounds until no messages remain in flight.
func (c *Cluster) drain() {
	for len(c.inbox) > 0 {
		c.DeliverRound()
	}
}

// DeliverRound delivers every currently in-flight message (one network
// round trip) and collects responses for the next round.
func (c *Cluster) DeliverRound() {
	batch := c.inbox
	c.inbox = nil
	if len(batch) == 0 {
		return
	}
	c.Rounds++
	for _, m := range batch {
		if c.blocked(m.From, m.To) {
			continue
		}
		c.MessagesDelivered++
		c.send(c.nodes[m.To].Step(m))
	}
	c.collectApplied()
}

func (c *Cluster) collectApplied() {
	for _, id := range c.ids() {
		if c.crashed[id] {
			continue
		}
		if ents := c.nodes[id].CommittedEntries(); len(ents) > 0 {
			c.applied[id] = append(c.applied[id], ents...)
		}
	}
}

// Leader returns the unique live leader at the highest term, or -1 when
// there is none (or more than one at that term, which would be a bug that
// tests assert against separately).
func (c *Cluster) Leader() int {
	leader := -1
	var topTerm uint64
	for _, id := range c.ids() {
		if c.crashed[id] {
			continue
		}
		n := c.nodes[id]
		if n.State() == Leader && n.Term() >= topTerm {
			topTerm = n.Term()
			leader = id
		}
	}
	return leader
}

// RunUntilLeader ticks until a leader emerges, up to maxTicks. It returns
// the leader ID, or -1 on timeout.
func (c *Cluster) RunUntilLeader(maxTicks int) int {
	for i := 0; i < maxTicks; i++ {
		if l := c.Leader(); l >= 0 {
			return l
		}
		c.Tick()
	}
	return c.Leader()
}

// Propose submits data through the current leader. It returns false when no
// leader is available. Messages are drained, so on return the entry is
// usually committed cluster-wide (absent partitions).
func (c *Cluster) Propose(data []byte) bool {
	l := c.Leader()
	if l < 0 {
		return false
	}
	_, msgs, ok := c.nodes[l].Propose(data)
	if !ok {
		return false
	}
	c.send(msgs)
	c.drain()
	return true
}

// ProposeAndCountRounds proposes through the leader and returns the number
// of delivery rounds until the leader's commit index covers the entry —
// the protocol-level commit latency in round trips. ok is false without a
// leader.
func (c *Cluster) ProposeAndCountRounds(data []byte) (rounds int, ok bool) {
	l := c.Leader()
	if l < 0 {
		return 0, false
	}
	idx, msgs, ok := c.nodes[l].Propose(data)
	if !ok {
		return 0, false
	}
	c.send(msgs)
	for rounds = 0; len(c.inbox) > 0; {
		c.DeliverRound()
		rounds++
		if c.nodes[l].commit >= idx {
			c.drain()
			return rounds, true
		}
	}
	return rounds, c.nodes[l].commit >= idx
}

// TransferLeadership moves leadership from the current leader to `to`,
// catching the target up first if needed. It reports success within
// maxRounds attempts.
func (c *Cluster) TransferLeadership(to, maxRounds int) bool {
	for i := 0; i < maxRounds; i++ {
		l := c.Leader()
		if l == to {
			return true
		}
		if l < 0 {
			c.Tick()
			continue
		}
		msgs, _ := c.nodes[l].TransferLeadership(to)
		if len(msgs) == 0 {
			return false // invalid target
		}
		c.send(msgs)
		c.drain()
		c.Tick()
	}
	return c.Leader() == to
}

// Crash stops a node: it receives nothing and sends nothing until Restart.
// Its durable state (term, vote, log) survives, per Raft's persistence
// assumption.
func (c *Cluster) Crash(id int) { c.crashed[id] = true }

// Restart revives a crashed node with its durable state intact.
func (c *Cluster) Restart(id int) { delete(c.crashed, id) }

// Partition splits the cluster into the given groups; nodes not mentioned
// are isolated in their own group.
func (c *Cluster) Partition(groups ...[]int) {
	c.group = map[int]int{}
	next := 0
	for gi, g := range groups {
		for _, id := range g {
			c.group[id] = gi
		}
		next = gi + 1
	}
	for id := range c.nodes {
		if _, ok := c.group[id]; !ok {
			c.group[id] = next
			next++
		}
	}
}

// Heal removes all partitions and directed link cuts.
func (c *Cluster) Heal() {
	c.group = nil
	c.cut = nil
}

// CutLink blocks messages in the from -> to direction only; to -> from
// keeps flowing. Idempotent.
func (c *Cluster) CutLink(from, to int) {
	if from == to {
		return
	}
	if c.cut == nil {
		c.cut = map[[2]int]bool{}
	}
	c.cut[[2]int{from, to}] = true
}

// HealLink removes a directed from -> to cut; a no-op when not cut.
func (c *Cluster) HealLink(from, to int) {
	delete(c.cut, [2]int{from, to})
	if len(c.cut) == 0 {
		c.cut = nil
	}
}

// HasConnectedMajority reports whether some live node has bidirectional
// links to a quorum of the cluster (counting itself) — i.e. whether the
// current fault pattern still admits a functioning leader. Availability
// accounting uses this to separate excusable unavailability (no quorum
// exists) from liveness failures (a quorum exists but the protocol cannot
// use it).
func (c *Cluster) HasConnectedMajority() bool {
	n := len(c.nodes)
	for _, l := range c.ids() {
		if c.crashed[l] {
			continue
		}
		count := 1
		for _, f := range c.ids() {
			if f == l || c.crashed[f] {
				continue
			}
			if !c.blocked(l, f) && !c.blocked(f, l) {
				count++
			}
		}
		if count*2 > n {
			return true
		}
	}
	return false
}

// StaleLeaders returns the IDs of live nodes that believe they are leader
// but lack bidirectional connectivity to a quorum — leaders that would
// serve stale reads. CheckQuorum exists to drive this to zero within an
// election timeout.
func (c *Cluster) StaleLeaders() []int {
	n := len(c.nodes)
	var out []int
	for _, l := range c.ids() {
		if c.crashed[l] || c.nodes[l].State() != Leader {
			continue
		}
		count := 1
		for _, f := range c.ids() {
			if f == l || c.crashed[f] {
				continue
			}
			if !c.blocked(l, f) && !c.blocked(f, l) {
				count++
			}
		}
		if count*2 <= n {
			out = append(out, l)
		}
	}
	return out
}

// MaxTerm returns the highest term across live nodes — the livelock
// telltale: unbounded growth means dueling candidates or a partially
// isolated node inflating terms.
func (c *Cluster) MaxTerm() uint64 {
	var top uint64
	for _, id := range c.ids() {
		if c.crashed[id] {
			continue
		}
		if t := c.nodes[id].Term(); t > top {
			top = t
		}
	}
	return top
}

// StepDowns sums CheckQuorum abdications across all nodes.
func (c *Cluster) StepDowns() uint64 {
	var total uint64
	for _, id := range c.ids() {
		total += c.nodes[id].StepDowns()
	}
	return total
}
