package consensus

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSingleNodeBecomesLeader(t *testing.T) {
	c := NewCluster(1, 1)
	if l := c.RunUntilLeader(100); l != 0 {
		t.Fatalf("leader = %d", l)
	}
}

func TestElectionThreeNodes(t *testing.T) {
	c := NewCluster(3, 1)
	l := c.RunUntilLeader(200)
	if l < 0 {
		t.Fatal("no leader elected in 200 ticks")
	}
	// Exactly one leader at the top term.
	leaders := 0
	for id := 0; id < 3; id++ {
		if c.Node(id).State() == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders", leaders)
	}
}

func TestElectionVariousSizes(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7, 9} {
		c := NewCluster(n, uint64(n))
		if l := c.RunUntilLeader(500); l < 0 {
			t.Fatalf("size %d: no leader", n)
		}
	}
}

func TestReplicationReachesAllNodes(t *testing.T) {
	c := NewCluster(3, 2)
	c.RunUntilLeader(200)
	for i := 0; i < 10; i++ {
		if !c.Propose([]byte(fmt.Sprintf("cmd-%d", i))) {
			t.Fatalf("propose %d failed", i)
		}
	}
	c.Tick() // commit index propagates on next heartbeat
	for id := 0; id < 3; id++ {
		got := c.Applied(id)
		if len(got) != 10 {
			t.Fatalf("node %d applied %d entries, want 10", id, len(got))
		}
		for i, e := range got {
			if string(e.Data) != fmt.Sprintf("cmd-%d", i) {
				t.Fatalf("node %d entry %d = %q", id, i, e.Data)
			}
		}
	}
}

func TestAppliedLogsAreConsistentPrefixes(t *testing.T) {
	c := NewCluster(5, 3)
	c.RunUntilLeader(200)
	for i := 0; i < 20; i++ {
		c.Propose([]byte{byte(i)})
	}
	c.Tick()
	// Every pair of applied sequences must be prefix-consistent.
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			ea, eb := c.Applied(a), c.Applied(b)
			n := len(ea)
			if len(eb) < n {
				n = len(eb)
			}
			for i := 0; i < n; i++ {
				if ea[i].Index != eb[i].Index || !bytes.Equal(ea[i].Data, eb[i].Data) {
					t.Fatalf("nodes %d/%d diverge at applied position %d", a, b, i)
				}
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := NewCluster(3, 4)
	l1 := c.RunUntilLeader(200)
	c.Propose([]byte("before-crash"))
	c.Crash(l1)
	l2 := -1
	for i := 0; i < 500 && (l2 < 0 || l2 == l1); i++ {
		c.Tick()
		l2 = c.Leader()
	}
	if l2 < 0 || l2 == l1 {
		t.Fatal("no new leader after crash")
	}
	if !c.Propose([]byte("after-crash")) {
		t.Fatal("propose after failover failed")
	}
	c.Tick()
	for _, id := range []int{l2} {
		got := c.Applied(id)
		if len(got) != 2 || string(got[0].Data) != "before-crash" || string(got[1].Data) != "after-crash" {
			t.Fatalf("node %d applied %v", id, got)
		}
	}
}

func TestCrashedFollowerCatchesUp(t *testing.T) {
	c := NewCluster(3, 5)
	l := c.RunUntilLeader(200)
	follower := (l + 1) % 3
	c.Crash(follower)
	for i := 0; i < 10; i++ {
		c.Propose([]byte{byte(i)})
	}
	c.Restart(follower)
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if got := len(c.Applied(follower)); got != 10 {
		t.Fatalf("restarted follower applied %d/10 entries", got)
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	c := NewCluster(5, 6)
	l := c.RunUntilLeader(200)
	// Isolate the leader with one follower (minority).
	buddy := (l + 1) % 5
	var majority []int
	for id := 0; id < 5; id++ {
		if id != l && id != buddy {
			majority = append(majority, id)
		}
	}
	c.Partition([]int{l, buddy}, majority)

	// Old leader can still append locally but must not commit.
	before := c.Node(l).commit
	_, msgs, _ := c.Node(l).Propose([]byte("doomed"))
	c.send(msgs)
	c.drain()
	if c.Node(l).commit != before {
		t.Fatal("minority leader advanced commit index")
	}

	// The majority elects a fresh leader and commits.
	var l2 int = -1
	for i := 0; i < 500; i++ {
		c.Tick()
		l2 = c.Leader()
		inMaj := false
		for _, id := range majority {
			if l2 == id {
				inMaj = true
			}
		}
		if inMaj {
			break
		}
	}
	found := false
	for _, id := range majority {
		if l2 == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("majority did not elect its own leader (leader=%d)", l2)
	}
	if !c.Propose([]byte("survives")) {
		t.Fatal("majority propose failed")
	}

	// Heal: the doomed entry must be overwritten everywhere.
	c.Heal()
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	for id := 0; id < 5; id++ {
		for _, e := range c.Applied(id) {
			if string(e.Data) == "doomed" {
				t.Fatalf("node %d applied an uncommitted minority entry", id)
			}
		}
	}
}

func TestAtMostOneLeaderPerTerm(t *testing.T) {
	// Run many seeds; in every tick, at most one live leader may exist per
	// term (Election Safety).
	for seed := uint64(0); seed < 10; seed++ {
		c := NewCluster(5, seed)
		for tick := 0; tick < 300; tick++ {
			c.Tick()
			leadersByTerm := map[uint64][]int{}
			for id := 0; id < 5; id++ {
				n := c.Node(id)
				if n.State() == Leader {
					leadersByTerm[n.Term()] = append(leadersByTerm[n.Term()], id)
				}
			}
			for term, ls := range leadersByTerm {
				if len(ls) > 1 {
					t.Fatalf("seed %d tick %d: term %d has leaders %v", seed, tick, term, ls)
				}
			}
		}
	}
}

func TestSnapshotCatchUp(t *testing.T) {
	c := NewCluster(3, 7)
	l := c.RunUntilLeader(200)
	follower := (l + 1) % 3
	c.Crash(follower)
	for i := 0; i < 30; i++ {
		c.Propose([]byte{byte(i)})
	}
	// Leader compacts away everything the dead follower would need.
	leader := c.Node(l)
	if err := leader.Compact(leader.applied, []byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	if leader.LogLen() != 0 {
		t.Fatalf("leader log not compacted: %d entries", leader.LogLen())
	}
	c.Restart(follower)
	for i := 0; i < 30; i++ {
		c.Tick()
	}
	idx, data := c.Node(follower).Snapshot()
	if idx == 0 || string(data) != "snapshot-state" {
		t.Fatalf("follower snapshot = (%d, %q)", idx, data)
	}
	// New proposals still replicate to the snapshotted follower.
	c.Propose([]byte("post-snap"))
	c.Tick()
	applied := c.Applied(follower)
	if len(applied) == 0 || string(applied[len(applied)-1].Data) != "post-snap" {
		t.Fatal("follower did not receive post-snapshot entries")
	}
}

func TestCompactRejectsUnapplied(t *testing.T) {
	c := NewCluster(1, 8)
	c.RunUntilLeader(50)
	c.Propose([]byte("x"))
	n := c.Node(0)
	if err := n.Compact(n.applied+5, nil); err == nil {
		t.Fatal("compacting unapplied index succeeded")
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	c := NewCluster(3, 9)
	l := c.RunUntilLeader(200)
	follower := (l + 1) % 3
	if _, _, ok := c.Node(follower).Propose([]byte("x")); ok {
		t.Fatal("follower accepted a proposal")
	}
}

func TestCommitRoundsSmall(t *testing.T) {
	// A healthy cluster commits in one round trip (append out, acks back).
	c := NewCluster(5, 10)
	c.RunUntilLeader(200)
	c.Propose([]byte("warm"))
	rounds, ok := c.ProposeAndCountRounds([]byte("measured"))
	if !ok {
		t.Fatal("proposal did not commit")
	}
	if rounds > 2 {
		t.Fatalf("commit took %d rounds, want <= 2", rounds)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() (int, uint64) {
		c := NewCluster(5, 42)
		l := c.RunUntilLeader(300)
		return l, c.Node(l).Term()
	}
	l1, t1 := run()
	l2, t2 := run()
	if l1 != l2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", l1, t1, l2, t2)
	}
}

func BenchmarkProposeCommit(b *testing.B) {
	c := NewCluster(5, 1)
	c.RunUntilLeader(300)
	payload := []byte("benchmark-entry")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Propose(payload) {
			b.Fatal("propose failed")
		}
	}
}
