// Package consensus implements Raft — leader election, log replication,
// commitment and snapshot-based log compaction — as a deterministic,
// tick-driven state machine. Nodes exchange messages through a harness (see
// cluster.go) that can delay, drop and partition traffic, so every safety
// and liveness test is reproducible. The framework uses Raft for cloud
// control-plane metadata, and experiment E12 measures commit latency versus
// cluster size and transport model.
package consensus

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/rng"
)

// StateType is a node's role.
type StateType int

// Raft roles.
const (
	Follower StateType = iota
	Candidate
	Leader
)

func (s StateType) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	default:
		return "leader"
	}
}

// Entry is one log slot.
type Entry struct {
	Term  uint64
	Index uint64
	Data  []byte
}

// MsgType discriminates protocol messages.
type MsgType int

// Protocol message kinds.
const (
	MsgVoteReq MsgType = iota
	MsgVoteResp
	MsgApp // AppendEntries (also heartbeat when Entries is empty)
	MsgAppResp
	MsgSnap       // InstallSnapshot
	MsgTimeoutNow // leadership transfer: recipient campaigns immediately
	// PreVote (§9.6): a would-be candidate probes for term+1 support
	// without incrementing any term, so a node cut off from the cluster
	// (one-way link, minority side of a partial partition) cannot inflate
	// terms and depose a healthy leader when its messages get through.
	MsgPreVote
	MsgPreVoteResp
)

// Message is a Raft RPC. One struct covers all kinds; unused fields are
// zero.
type Message struct {
	Type     MsgType
	From, To int
	Term     uint64

	// Vote fields.
	LastLogIndex, LastLogTerm uint64
	Granted                   bool
	// Force marks a vote request from a deliberate leadership transfer
	// (TimeoutNow): receivers skip PreVote/CheckQuorum lease checks that
	// would otherwise protect the current leader.
	Force bool

	// Append fields.
	PrevIndex, PrevTerm uint64
	Entries             []Entry
	Commit              uint64
	Index               uint64 // resp: match index on success, retry hint on reject
	Success             bool

	// Snapshot fields.
	SnapIndex, SnapTerm uint64
	SnapData            []byte
}

// Config configures a node.
type Config struct {
	// ID is this node's identity; Peers lists every member including self.
	ID    int
	Peers []int
	// ElectionTicks is the base election timeout in ticks (randomized to
	// [ElectionTicks, 2*ElectionTicks)). Default 10.
	ElectionTicks int
	// HeartbeatTicks is the leader heartbeat interval. Default 1.
	HeartbeatTicks int
	// Seed drives election timeout randomization.
	Seed uint64
	// MaxEntriesPerApp bounds entries per AppendEntries. Default 64.
	MaxEntriesPerApp int
	// PreVote enables the two-phase election probe (§9.6): campaign for
	// real only after a quorum signals it would grant the vote. Stops
	// partially-isolated nodes from inflating terms. Default off to keep
	// vanilla Raft available as the experimental control.
	PreVote bool
	// CheckQuorum makes a leader step down after a full election timeout
	// without contact from a quorum (it may be serving stale reads on the
	// minority side of a partial partition), and makes followers ignore
	// vote requests while they have a live leader (the §9.6 lease), so a
	// rejoining node cannot depose a healthy leader. Default off.
	CheckQuorum bool
	// Metrics, when non-nil, receives protocol counters (elections,
	// leaderships won, entries committed, snapshots, compactions) and a
	// raft_term gauge. Counters are per-node; give each node its own
	// registry or accept cluster-wide aggregation. Optional.
	Metrics *metrics.Registry
}

// nodeMetrics holds the optional counters; nil fields are no-ops.
type nodeMetrics struct {
	elections          *metrics.Counter
	leaderships        *metrics.Counter
	stepdowns          *metrics.Counter
	entriesCommitted   *metrics.Counter
	snapshotsInstalled *metrics.Counter
	compactions        *metrics.Counter
	term               *metrics.Gauge
}

// Node is a single Raft participant. Not safe for concurrent use: drive it
// from one goroutine (the cluster harness does).
type Node struct {
	cfg   Config
	state StateType

	term     uint64
	votedFor int // -1 = none
	leader   int // -1 = unknown

	// Log with snapshot-based compaction: entries[0] has index offset+1.
	entries  []Entry
	offset   uint64 // index of the last compacted entry (0 = nothing compacted)
	snapTerm uint64
	snapData []byte
	commit   uint64
	applied  uint64

	// Leader state.
	nextIndex  map[int]uint64
	matchIndex map[int]uint64

	// Candidate state.
	votes map[int]bool

	// Liveness-hardening state.
	preVotes      map[int]bool // outstanding PreVote grants (nil = no probe)
	recentActive  map[int]bool // peers heard from in the current CheckQuorum window
	leaderElapsed int          // ticks of leadership since the last quorum check
	backoff       int          // consecutive failed campaigns (widens election timeout)
	stepDowns     uint64       // CheckQuorum abdications

	elapsed         int
	electionTimeout int
	rand            *rng.RNG
	m               nodeMetrics
}

// NewNode builds a follower with an empty log.
func NewNode(cfg Config) *Node {
	if cfg.ElectionTicks <= 0 {
		cfg.ElectionTicks = 10
	}
	if cfg.HeartbeatTicks <= 0 {
		cfg.HeartbeatTicks = 1
	}
	if cfg.MaxEntriesPerApp <= 0 {
		cfg.MaxEntriesPerApp = 64
	}
	n := &Node{
		cfg:      cfg,
		votedFor: -1,
		leader:   -1,
		rand:     rng.New(cfg.Seed + uint64(cfg.ID)*0x9e37),
	}
	if reg := cfg.Metrics; reg != nil {
		n.m = nodeMetrics{
			elections:          reg.Counter("raft_elections_started"),
			leaderships:        reg.Counter("raft_leaderships_won"),
			stepdowns:          reg.Counter("raft_stepdowns"),
			entriesCommitted:   reg.Counter("raft_entries_committed"),
			snapshotsInstalled: reg.Counter("raft_snapshots_installed"),
			compactions:        reg.Counter("raft_compactions"),
			term:               reg.Gauge("raft_term"),
		}
	}
	n.resetElectionTimeout()
	return n
}

// State returns the node's role.
func (n *Node) State() StateType { return n.state }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the known leader's ID, or -1.
func (n *Node) Leader() int { return n.leader }

// StepDowns returns how many times this node abdicated leadership after a
// CheckQuorum window passed without contact from a quorum.
func (n *Node) StepDowns() uint64 { return n.stepDowns }

// lastIndex returns the index of the final log entry (compacted or live).
func (n *Node) lastIndex() uint64 {
	if len(n.entries) == 0 {
		return n.offset
	}
	return n.entries[len(n.entries)-1].Index
}

func (n *Node) termAt(index uint64) (uint64, bool) {
	if index == 0 {
		return 0, true
	}
	if index == n.offset {
		return n.snapTerm, true
	}
	if index < n.offset || index > n.lastIndex() {
		return 0, false
	}
	return n.entries[index-n.offset-1].Term, true
}

func (n *Node) entriesFrom(index uint64, max int) []Entry {
	if index <= n.offset || index > n.lastIndex() {
		return nil
	}
	out := n.entries[index-n.offset-1:]
	if len(out) > max {
		out = out[:max]
	}
	// Copy so the harness can't alias internal state.
	cp := make([]Entry, len(out))
	copy(cp, out)
	return cp
}

func (n *Node) resetElectionTimeout() {
	n.elapsed = 0
	// Randomized exponential backoff: each consecutive failed campaign
	// widens the timeout spread, de-synchronizing dueling candidates under
	// flapping links. backoff stays 0 unless hardening is enabled, so the
	// vanilla control keeps the classic [ET, 2ET) window.
	spread := n.cfg.ElectionTicks * (1 + n.backoff)
	if max := 6 * n.cfg.ElectionTicks; spread > max {
		spread = max
	}
	n.electionTimeout = n.cfg.ElectionTicks + n.rand.Intn(spread)
}

// Tick advances logical time by one unit and returns messages to send:
// election timeouts fire for followers/candidates; heartbeats for leaders.
func (n *Node) Tick() []Message {
	n.elapsed++
	switch n.state {
	case Leader:
		n.leaderElapsed++
		if n.cfg.CheckQuorum && n.leaderElapsed >= n.cfg.ElectionTicks {
			n.leaderElapsed = 0
			if !n.quorumActive() {
				// Cut off from the majority: stop serving (possibly stale)
				// leader reads and let the connected side elect freely.
				n.stepDowns++
				n.m.stepdowns.Inc()
				n.becomeFollower(n.term, -1)
				return nil
			}
		}
		if n.elapsed >= n.cfg.HeartbeatTicks {
			n.elapsed = 0
			return n.broadcastAppend()
		}
	default:
		if n.elapsed >= n.electionTimeout {
			return n.campaign()
		}
	}
	return nil
}

// quorumActive reports whether a quorum (counting self) sent us anything
// during the closing CheckQuorum window, and opens the next window.
func (n *Node) quorumActive() bool {
	active := 1
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID && n.recentActive[p] {
			active++
		}
	}
	n.recentActive = map[int]bool{}
	return n.quorum(active)
}

// campaign is the election-timeout path: grow the backoff window, then
// either probe via PreVote or (vanilla) campaign for real immediately.
func (n *Node) campaign() []Message {
	if n.cfg.PreVote || n.cfg.CheckQuorum {
		if n.backoff < 5 {
			n.backoff++
		}
	}
	if n.cfg.PreVote {
		return n.startPreVote()
	}
	return n.startElection(false)
}

// startPreVote asks every peer whether a campaign at term+1 would win,
// without touching term, votedFor, or role.
func (n *Node) startPreVote() []Message {
	n.preVotes = map[int]bool{n.cfg.ID: true}
	n.resetElectionTimeout()
	if n.quorum(len(n.preVotes)) {
		// Single-node cluster: no probe needed.
		n.preVotes = nil
		return n.startElection(false)
	}
	lastTerm, _ := n.termAt(n.lastIndex())
	var msgs []Message
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		msgs = append(msgs, Message{
			Type: MsgPreVote, From: n.cfg.ID, To: p, Term: n.term + 1,
			LastLogIndex: n.lastIndex(), LastLogTerm: lastTerm,
		})
	}
	return msgs
}

func (n *Node) startElection(force bool) []Message {
	n.state = Candidate
	n.term++
	n.m.elections.Inc()
	n.m.term.Set(int64(n.term))
	n.votedFor = n.cfg.ID
	n.leader = -1
	n.votes = map[int]bool{n.cfg.ID: true}
	n.preVotes = nil
	n.resetElectionTimeout()
	lastTerm, _ := n.termAt(n.lastIndex())
	var msgs []Message
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		msgs = append(msgs, Message{
			Type: MsgVoteReq, From: n.cfg.ID, To: p, Term: n.term,
			LastLogIndex: n.lastIndex(), LastLogTerm: lastTerm, Force: force,
		})
	}
	if n.quorum(len(n.votes)) {
		// Single-node cluster: win immediately.
		return append(msgs, n.becomeLeader()...)
	}
	return msgs
}

func (n *Node) quorum(count int) bool { return count*2 > len(n.cfg.Peers) }

func (n *Node) becomeLeader() []Message {
	n.state = Leader
	n.leader = n.cfg.ID
	n.m.leaderships.Inc()
	n.elapsed = 0
	n.leaderElapsed = 0
	n.recentActive = map[int]bool{}
	n.backoff = 0
	n.nextIndex = map[int]uint64{}
	n.matchIndex = map[int]uint64{}
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = n.lastIndex() + 1
		n.matchIndex[p] = 0
	}
	// Append a no-op entry so prior-term entries (and the commit index)
	// become committable in the new term immediately (§5.4.2 / the
	// dissertation's leadership-change liveness fix). CommittedEntries
	// filters no-ops out of what the state machine sees.
	noop := Entry{Term: n.term, Index: n.lastIndex() + 1}
	n.entries = append(n.entries, noop)
	n.matchIndex[n.cfg.ID] = n.lastIndex()
	n.maybeCommit()
	return n.broadcastAppend()
}

func (n *Node) becomeFollower(term uint64, leader int) {
	n.state = Follower
	n.term = term
	n.m.term.Set(int64(n.term))
	n.leader = leader
	n.votedFor = -1
	n.votes = nil
	n.preVotes = nil
	n.resetElectionTimeout()
}

// Propose appends data to the leader's log, returning its index. ok is
// false when this node is not the leader.
func (n *Node) Propose(data []byte) (index uint64, msgs []Message, ok bool) {
	if n.state != Leader {
		return 0, nil, false
	}
	e := Entry{Term: n.term, Index: n.lastIndex() + 1, Data: data}
	n.entries = append(n.entries, e)
	n.matchIndex[n.cfg.ID] = e.Index
	n.maybeCommit()
	return e.Index, n.broadcastAppend(), true
}

func (n *Node) broadcastAppend() []Message {
	var msgs []Message
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		msgs = append(msgs, n.appendTo(p))
	}
	return msgs
}

// appendTo builds the AppendEntries (or InstallSnapshot) for one follower.
func (n *Node) appendTo(p int) Message {
	next := n.nextIndex[p]
	if next <= n.offset {
		// Follower needs entries we compacted away: ship the snapshot.
		return Message{
			Type: MsgSnap, From: n.cfg.ID, To: p, Term: n.term,
			SnapIndex: n.offset, SnapTerm: n.snapTerm, SnapData: n.snapData,
		}
	}
	prev := next - 1
	prevTerm, _ := n.termAt(prev)
	return Message{
		Type: MsgApp, From: n.cfg.ID, To: p, Term: n.term,
		PrevIndex: prev, PrevTerm: prevTerm,
		Entries: n.entriesFrom(next, n.cfg.MaxEntriesPerApp),
		Commit:  n.commit,
	}
}

// leaseActive reports whether this node should ignore campaigns because it
// has a live leader: it IS the leader (CheckQuorum guarantees it abdicates
// when cut off), or it heard from one within the last election timeout.
// Force (deliberate leadership transfer) always pierces the lease.
func (n *Node) leaseActive(force bool) bool {
	if force || !n.cfg.CheckQuorum {
		return false
	}
	if n.state == Leader {
		return true
	}
	return n.state == Follower && n.leader >= 0 && n.elapsed < n.cfg.ElectionTicks
}

// Step processes one inbound message and returns messages to send.
func (n *Node) Step(m Message) []Message {
	// Any inbound traffic proves the peer->us link for CheckQuorum.
	if n.state == Leader && m.From != n.cfg.ID {
		if n.recentActive == nil {
			n.recentActive = map[int]bool{}
		}
		n.recentActive[m.From] = true
	}
	// Lease check (§9.6) BEFORE term handling: a higher-term vote request
	// must not depose anything while we have a live leader, so drop it
	// before the newer-term conversion below can touch our state.
	if m.Type == MsgVoteReq && n.leaseActive(m.Force) {
		return nil
	}
	// Term handling: newer term always converts us to follower first.
	// PreVote traffic is exempt by design — probes carry term+1 without
	// anyone having incremented a real term.
	if m.Term > n.term && m.Type != MsgPreVote && m.Type != MsgPreVoteResp {
		leader := -1
		if m.Type == MsgApp || m.Type == MsgSnap {
			leader = m.From
		}
		n.becomeFollower(m.Term, leader)
	}
	switch m.Type {
	case MsgVoteReq:
		return n.handleVoteReq(m)
	case MsgVoteResp:
		return n.handleVoteResp(m)
	case MsgApp:
		return n.handleApp(m)
	case MsgAppResp:
		return n.handleAppResp(m)
	case MsgSnap:
		return n.handleSnap(m)
	case MsgPreVote:
		return n.handlePreVote(m)
	case MsgPreVoteResp:
		return n.handlePreVoteResp(m)
	case MsgTimeoutNow:
		// Leadership transfer: campaign immediately, skipping the election
		// timeout (and, via Force, the peers' leases), provided the request
		// is current.
		if m.Term >= n.term && n.state != Leader {
			return n.startElection(true)
		}
		return nil
	default:
		panic(fmt.Sprintf("consensus: unknown message type %d", m.Type))
	}
}

// handlePreVote answers a PreVote probe without mutating any local state:
// grant only if the probed term beats ours, the candidate's log is
// up-to-date, and we are not under a leader lease.
func (n *Node) handlePreVote(m Message) []Message {
	resp := Message{Type: MsgPreVoteResp, From: n.cfg.ID, To: m.From, Term: n.term}
	lastTerm, _ := n.termAt(n.lastIndex())
	upToDate := m.LastLogTerm > lastTerm ||
		(m.LastLogTerm == lastTerm && m.LastLogIndex >= n.lastIndex())
	if m.Term > n.term && upToDate && !n.leaseActive(m.Force) {
		resp.Granted = true
		resp.Term = m.Term
	}
	return []Message{resp}
}

func (n *Node) handlePreVoteResp(m Message) []Message {
	if !m.Granted {
		// A rejection carrying a newer term means we are behind: catch up
		// now (we provably have connectivity to the rejecting peer).
		if m.Term > n.term {
			n.becomeFollower(m.Term, -1)
		}
		return nil
	}
	if n.state == Leader || n.preVotes == nil || m.Term != n.term+1 {
		return nil
	}
	n.preVotes[m.From] = true
	if n.quorum(len(n.preVotes)) {
		n.preVotes = nil
		return n.startElection(false)
	}
	return nil
}

// TransferLeadership begins moving leadership to peer `to`. Per the Raft
// dissertation (§3.10): bring the target's log up to date, then tell it to
// time out immediately so it wins the next election. It returns the
// messages to send and whether the TimeoutNow was issued (false means the
// target still needs log entries — the caller delivers the returned
// append and calls again).
func (n *Node) TransferLeadership(to int) (msgs []Message, issued bool) {
	if n.state != Leader || to == n.cfg.ID {
		return nil, false
	}
	known := false
	for _, p := range n.cfg.Peers {
		if p == to {
			known = true
		}
	}
	if !known {
		return nil, false
	}
	if n.matchIndex[to] < n.lastIndex() {
		return []Message{n.appendTo(to)}, false
	}
	return []Message{{Type: MsgTimeoutNow, From: n.cfg.ID, To: to, Term: n.term}}, true
}

func (n *Node) handleVoteReq(m Message) []Message {
	granted := false
	if m.Term >= n.term && (n.votedFor == -1 || n.votedFor == m.From) {
		// Up-to-date check (§5.4.1): candidate's log must not be behind.
		lastTerm, _ := n.termAt(n.lastIndex())
		upToDate := m.LastLogTerm > lastTerm ||
			(m.LastLogTerm == lastTerm && m.LastLogIndex >= n.lastIndex())
		if upToDate {
			granted = true
			n.votedFor = m.From
			n.resetElectionTimeout()
		}
	}
	return []Message{{
		Type: MsgVoteResp, From: n.cfg.ID, To: m.From, Term: n.term, Granted: granted,
	}}
}

func (n *Node) handleVoteResp(m Message) []Message {
	if n.state != Candidate || m.Term != n.term || !m.Granted {
		return nil
	}
	n.votes[m.From] = true
	if n.quorum(len(n.votes)) {
		return n.becomeLeader()
	}
	return nil
}

func (n *Node) handleApp(m Message) []Message {
	reject := Message{Type: MsgAppResp, From: n.cfg.ID, To: m.From, Term: n.term, Success: false}
	if m.Term < n.term {
		return []Message{reject}
	}
	// Valid leader for our term.
	n.state = Follower
	n.leader = m.From
	n.backoff = 0
	n.resetElectionTimeout()

	prevTerm, ok := n.termAt(m.PrevIndex)
	if !ok || prevTerm != m.PrevTerm {
		// Log mismatch: hint the leader to back off to our log end (the
		// "fast backoff" optimization).
		hint := n.lastIndex()
		if m.PrevIndex < hint {
			hint = m.PrevIndex
		}
		if hint > 0 {
			hint--
		}
		reject.Index = hint
		return []Message{reject}
	}
	// Append, truncating conflicts.
	for _, e := range m.Entries {
		if t, ok := n.termAt(e.Index); ok && t == e.Term {
			continue // already have it
		}
		if e.Index <= n.offset {
			continue // covered by snapshot
		}
		// Truncate from e.Index on, then append.
		n.entries = n.entries[:e.Index-n.offset-1]
		n.entries = append(n.entries, e)
	}
	if m.Commit > n.commit {
		last := n.lastIndex()
		if m.Commit < last {
			n.commit = m.Commit
		} else {
			n.commit = last
		}
	}
	match := m.PrevIndex + uint64(len(m.Entries))
	return []Message{{
		Type: MsgAppResp, From: n.cfg.ID, To: m.From, Term: n.term,
		Success: true, Index: match,
	}}
}

func (n *Node) handleAppResp(m Message) []Message {
	if n.state != Leader || m.Term != n.term {
		return nil
	}
	if m.Success {
		if m.Index > n.matchIndex[m.From] {
			n.matchIndex[m.From] = m.Index
		}
		if m.Index+1 > n.nextIndex[m.From] {
			n.nextIndex[m.From] = m.Index + 1
		}
		n.maybeCommit()
		// Keep streaming if the follower is still behind.
		if n.nextIndex[m.From] <= n.lastIndex() {
			return []Message{n.appendTo(m.From)}
		}
		return nil
	}
	// Rejected: back off using the follower's hint and retry.
	next := m.Index + 1
	if next < 1 {
		next = 1
	}
	if next < n.nextIndex[m.From] {
		n.nextIndex[m.From] = next
	} else if n.nextIndex[m.From] > 1 {
		n.nextIndex[m.From]--
	}
	return []Message{n.appendTo(m.From)}
}

func (n *Node) handleSnap(m Message) []Message {
	if m.Term < n.term {
		return []Message{{Type: MsgAppResp, From: n.cfg.ID, To: m.From, Term: n.term, Success: false}}
	}
	n.state = Follower
	n.leader = m.From
	n.backoff = 0
	n.resetElectionTimeout()
	if m.SnapIndex > n.lastIndex() {
		// Replace our whole log with the snapshot.
		n.m.snapshotsInstalled.Inc()
		n.entries = nil
		n.offset = m.SnapIndex
		n.snapTerm = m.SnapTerm
		n.snapData = m.SnapData
		if m.SnapIndex > n.commit {
			n.commit = m.SnapIndex
		}
		if m.SnapIndex > n.applied {
			n.applied = m.SnapIndex
		}
	}
	return []Message{{
		Type: MsgAppResp, From: n.cfg.ID, To: m.From, Term: n.term,
		Success: true, Index: n.lastIndex(),
	}}
}

// maybeCommit advances commitIndex to the highest index replicated on a
// quorum whose entry is from the current term (§5.4.2).
func (n *Node) maybeCommit() {
	for idx := n.lastIndex(); idx > n.commit; idx-- {
		t, ok := n.termAt(idx)
		if !ok || t != n.term {
			continue
		}
		count := 0
		for _, p := range n.cfg.Peers {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if n.quorum(count) {
			n.commit = idx
			return
		}
	}
}

// CommittedEntries returns entries newly committed since the last call, in
// order, excluding leader-change no-ops. The state machine applies them.
func (n *Node) CommittedEntries() []Entry {
	if n.applied >= n.commit {
		return nil
	}
	raw := n.entriesFrom(n.applied+1, int(n.commit-n.applied))
	n.applied = n.commit
	out := raw[:0]
	for _, e := range raw {
		if e.Data != nil {
			out = append(out, e)
		}
	}
	n.m.entriesCommitted.Add(int64(len(out)))
	return out
}

// CommittedSince returns the committed entries with index > from (capped
// at the compaction offset — entries compacted away are only available
// through Snapshot), excluding leader-change no-ops. Unlike
// CommittedEntries it does not advance the applied cursor: hosts use it to
// rebuild a state-machine replica from the durable log after a restart.
func (n *Node) CommittedSince(from uint64) []Entry {
	if from < n.offset {
		from = n.offset
	}
	if n.commit <= from {
		return nil
	}
	raw := n.entriesFrom(from+1, int(n.commit-from))
	out := raw[:0]
	for _, e := range raw {
		if e.Data != nil {
			out = append(out, e)
		}
	}
	return out
}

// Compact discards log entries up to and including index, recording the
// state machine snapshot. Index must be applied already.
func (n *Node) Compact(index uint64, snapshot []byte) error {
	if index > n.applied {
		return fmt.Errorf("consensus: cannot compact unapplied index %d (applied %d)", index, n.applied)
	}
	if index <= n.offset {
		return nil // already compacted
	}
	t, _ := n.termAt(index)
	n.entries = append([]Entry(nil), n.entries[index-n.offset:]...)
	n.offset = index
	n.snapTerm = t
	n.snapData = snapshot
	n.m.compactions.Inc()
	return nil
}

// LogLen returns the number of live (uncompacted) log entries.
func (n *Node) LogLen() int { return len(n.entries) }

// Snapshot returns the latest compaction state: last included index and data.
func (n *Node) Snapshot() (uint64, []byte) { return n.offset, n.snapData }
