package consensus

import (
	"testing"
)

// TestTransferDuringPartitionFails exercises leadership transfer while a
// partition is active: the TimeoutNow can never reach the isolated
// target, so the handoff must not complete, the incumbent must keep
// leading its majority, and after healing the transfer goes through
// with no committed entry lost.
func TestTransferDuringPartitionFails(t *testing.T) {
	c := NewCluster(5, 31)
	l := c.RunUntilLeader(300)
	for i := 0; i < 5; i++ {
		if !c.Propose([]byte{byte(i)}) {
			t.Fatalf("propose %d failed", i)
		}
	}
	// Isolate the transfer target; the leader keeps a 4-node majority.
	target := (l + 1) % 5
	var majority []int
	for id := 0; id < 5; id++ {
		if id != target {
			majority = append(majority, id)
		}
	}
	c.Partition(majority, []int{target})
	if c.TransferLeadership(target, 30) {
		t.Fatal("transfer to an unreachable target reported success")
	}
	if c.Leader() != l {
		t.Fatalf("leader = %d after failed transfer, want incumbent %d", c.Leader(), l)
	}
	// The abandoned transfer must not wedge the leader: the majority side
	// still commits.
	if !c.Propose([]byte("during-partition")) {
		t.Fatal("majority could not commit during the partition")
	}
	c.Heal()
	// With the partition healed the same transfer succeeds, and the new
	// leader holds every committed entry.
	if !c.TransferLeadership(target, 100) {
		t.Fatal("transfer after heal failed")
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	applied := c.Applied(target)
	if len(applied) != 6 {
		t.Fatalf("new leader applied %d entries, want 6", len(applied))
	}
	for i := 0; i < 5; i++ {
		if applied[i].Data[0] != byte(i) {
			t.Fatalf("entry %d corrupted across partition + transfer", i)
		}
	}
	if string(applied[5].Data) != "during-partition" {
		t.Fatalf("entry 5 = %q, want the mid-partition commit", applied[5].Data)
	}
}

// TestSnapshotInstallMidFailover rejoins a compacted-away follower while
// the cluster is electing a replacement leader: every live node has
// compacted past the follower's log, the old leader is gone, and the
// new leader must bring the rejoiner up to date via snapshot install.
func TestSnapshotInstallMidFailover(t *testing.T) {
	c := NewCluster(5, 32)
	l := c.RunUntilLeader(300)
	follower := (l + 1) % 5
	c.Crash(follower)
	for i := 0; i < 40; i++ {
		if !c.Propose([]byte{byte(i)}) {
			t.Fatalf("propose %d failed", i)
		}
	}
	// Let lagging followers finish applying, then every live node compacts
	// its whole applied log, so nothing short of a snapshot can catch the
	// dead follower up.
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	for id := 0; id < 5; id++ {
		if id == follower {
			continue
		}
		n := c.Node(id)
		if err := n.Compact(n.applied, []byte("compacted-state")); err != nil {
			t.Fatalf("compact node %d: %v", id, err)
		}
		if n.LogLen() != 0 {
			t.Fatalf("node %d log not empty after compact", id)
		}
	}
	// Kill the leader and rejoin the stale follower mid-failover: the
	// remaining nodes are electing a new leader at this very moment.
	c.Crash(l)
	c.Restart(follower)
	newLeader := -1
	for i := 0; i < 300 && newLeader < 0; i++ {
		c.Tick()
		for id := 0; id < 5; id++ {
			if id != l && c.Node(id).State() == Leader {
				newLeader = id
			}
		}
	}
	if newLeader < 0 {
		t.Fatal("no new leader elected after crash")
	}
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	// The rejoiner was caught up by snapshot, not log replay.
	idx, data := c.Node(follower).Snapshot()
	if idx == 0 || string(data) != "compacted-state" {
		t.Fatalf("follower snapshot = (%d, %q), want a compacted-state install", idx, data)
	}
	// And it keeps receiving post-snapshot entries from the new leader.
	if !c.Propose([]byte("post-failover")) {
		t.Fatal("propose under new leader failed")
	}
	c.Tick()
	applied := c.Applied(follower)
	if len(applied) == 0 || string(applied[len(applied)-1].Data) != "post-failover" {
		t.Fatal("rejoined follower did not apply post-failover entries")
	}
}

// TestCommittedSince covers the replica-rebuild read path: committed
// entries after a given index, no cursor movement, no-ops excluded,
// compaction capping.
func TestCommittedSince(t *testing.T) {
	c := NewCluster(3, 33)
	l := c.RunUntilLeader(300)
	for i := 0; i < 6; i++ {
		if !c.Propose([]byte{byte(i)}) {
			t.Fatalf("propose %d failed", i)
		}
	}
	n := c.Node(l)
	all := n.CommittedSince(0)
	if len(all) != 6 {
		t.Fatalf("CommittedSince(0) = %d entries, want 6 (no-ops must be excluded)", len(all))
	}
	for i, e := range all {
		if e.Data[0] != byte(i) {
			t.Fatalf("entry %d has data %v", i, e.Data)
		}
	}
	// Reading is side-effect free: a second call sees the same entries.
	if again := n.CommittedSince(0); len(again) != len(all) {
		t.Fatalf("second CommittedSince(0) = %d entries, want %d", len(again), len(all))
	}
	// A mid-log cursor returns the strict suffix.
	mid := all[2].Index
	suffix := n.CommittedSince(mid)
	if len(suffix) != 3 || suffix[0].Index != all[3].Index {
		t.Fatalf("CommittedSince(%d) = %d entries starting at %d", mid, len(suffix), suffix[0].Index)
	}
	// Compaction caps the range: entries folded into the snapshot are no
	// longer returned (hosts must restore from Snapshot first).
	if err := n.Compact(all[3].Index, []byte("s")); err != nil {
		t.Fatal(err)
	}
	tail := n.CommittedSince(0)
	if len(tail) != 2 || tail[0].Index != all[4].Index {
		t.Fatalf("post-compact CommittedSince(0) = %d entries starting at %d, want the 2 surviving entries", len(tail), tail[0].Index)
	}
}
