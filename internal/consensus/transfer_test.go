package consensus

import (
	"fmt"
	"testing"
)

func TestLeadershipTransfer(t *testing.T) {
	c := NewCluster(5, 21)
	l := c.RunUntilLeader(300)
	for i := 0; i < 5; i++ {
		c.Propose([]byte(fmt.Sprintf("entry-%d", i)))
	}
	target := (l + 1) % 5
	if !c.TransferLeadership(target, 50) {
		t.Fatalf("transfer from %d to %d failed", l, target)
	}
	if c.Leader() != target {
		t.Fatalf("leader = %d, want %d", c.Leader(), target)
	}
	// Old leader stepped down.
	if c.Node(l).State() == Leader {
		t.Fatal("old leader did not step down")
	}
	// The new leader can commit.
	if !c.Propose([]byte("after-transfer")) {
		t.Fatal("propose after transfer failed")
	}
	c.Tick()
	applied := c.Applied(target)
	if len(applied) != 6 || string(applied[5].Data) != "after-transfer" {
		t.Fatalf("new leader applied %d entries", len(applied))
	}
}

func TestTransferCatchesUpLaggingTarget(t *testing.T) {
	c := NewCluster(3, 22)
	l := c.RunUntilLeader(300)
	target := (l + 1) % 3
	// Crash the target, commit entries it misses, restart it lagging.
	c.Crash(target)
	for i := 0; i < 10; i++ {
		c.Propose([]byte{byte(i)})
	}
	c.Restart(target)
	// Transfer must first replicate the missing entries, then hand off.
	if !c.TransferLeadership(target, 100) {
		t.Fatal("transfer to lagging follower failed")
	}
	// No committed entries may be lost across the transfer.
	c.Propose([]byte("post"))
	c.Tick()
	if got := len(c.Applied(target)); got != 11 {
		t.Fatalf("new leader applied %d entries, want 11", got)
	}
}

func TestTransferToSelfOrUnknownRejected(t *testing.T) {
	c := NewCluster(3, 23)
	l := c.RunUntilLeader(300)
	if msgs, ok := c.Node(l).TransferLeadership(l); ok || msgs != nil {
		t.Fatal("transfer to self accepted")
	}
	if msgs, ok := c.Node(l).TransferLeadership(99); ok || msgs != nil {
		t.Fatal("transfer to unknown peer accepted")
	}
	follower := (l + 1) % 3
	if msgs, ok := c.Node(follower).TransferLeadership(l); ok || msgs != nil {
		t.Fatal("non-leader issued a transfer")
	}
}

func TestTransferSafetyEntriesSurvive(t *testing.T) {
	// Repeated transfers around the ring never lose committed entries.
	c := NewCluster(5, 24)
	c.RunUntilLeader(300)
	total := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if !c.Propose([]byte{byte(total)}) {
				t.Fatalf("propose %d failed", total)
			}
			total++
		}
		target := (c.Leader() + 1) % 5
		if !c.TransferLeadership(target, 100) {
			t.Fatalf("round %d transfer failed", round)
		}
	}
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	for id := 0; id < 5; id++ {
		applied := c.Applied(id)
		if len(applied) != total {
			t.Fatalf("node %d applied %d/%d entries", id, len(applied), total)
		}
		for i, e := range applied {
			if e.Data[0] != byte(i) {
				t.Fatalf("node %d entry %d corrupted", id, i)
			}
		}
	}
}
